//! Golden PISA-cell suite: the SearchCell runtime must be a pure
//! performance refactor.
//!
//! `tests/golden_pisa_cells.csv` records the bit pattern of the best ratio
//! (and the initial ratio and evaluation count) of a battery of
//! quick-config adversarial searches — general pairwise cells, Section VII
//! application cells, metric-objective cells, and ablation-strategy cells —
//! captured on the **pre-refactor** drivers (fresh `SchedContext` per cell,
//! clone-per-iteration annealing, per-call allocation in the perturbation
//! operators, no pooling). Every cell's seed comes from the engine's
//! `derive_seed(BASE_SEED, cell index)` stream, exactly as the cells below
//! assign them, so any divergence introduced by context borrowing, scratch
//! reuse, in-place perturbation undo, the kernel's selective table refresh,
//! incremental delta-evaluation (dirty-region table refresh + recorded-run
//! prefix replay, the default path since PR 5 — force it off with
//! `SAGA_NO_INCREMENTAL=1` to check the full-rebuild path against the same
//! bits, as CI does), or engine sharding flips bits here and fails the
//! suite.
//!
//! Regenerate (only when a behavior change is *intended* and reviewed):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_pisa_cells -- --ignored
//! ```

use saga::pisa::ablation::Strategy;
use saga::pisa::annealer::PisaConfig;
use saga::pisa::metric::Objective;
use saga::pisa::SearchCell;
use saga_experiments::engine::{derive_seed, BatchEngine, CellCheckpoint};

/// Base seed every cell's stream is derived from.
const BASE_SEED: u64 = 0x415A;

fn pair_config(seed: u64) -> PisaConfig {
    PisaConfig {
        i_max: 120,
        restarts: 2,
        seed,
        ..PisaConfig::default()
    }
}

fn short_config(seed: u64) -> PisaConfig {
    PisaConfig {
        i_max: 100,
        restarts: 1,
        seed,
        ..PisaConfig::default()
    }
}

fn ablation_config(seed: u64) -> PisaConfig {
    PisaConfig {
        i_max: 100,
        restarts: 2,
        seed,
        ..PisaConfig::default()
    }
}

/// The battery, as `SearchCell`s, in the fixed fixture order; cell `k`
/// (over the whole battery) runs on `derive_seed(BASE_SEED, k)` — the exact
/// seeds the pre-refactor recording used.
fn battery_cells() -> Vec<SearchCell> {
    let mut cells = Vec::new();
    let mut idx = 0u64;
    let seed = |idx: &mut u64| {
        let s = derive_seed(BASE_SEED, *idx);
        *idx += 1;
        s
    };

    // general pairwise cells over a 4-scheduler roster (baseline-major,
    // diagonal skipped — `pairwise_cells` order)
    let roster = ["HEFT", "CPoP", "FastestNode", "MinMin"];
    for bname in roster {
        for tname in roster {
            if bname == tname {
                continue;
            }
            cells.push(SearchCell::pair(tname, bname, pair_config(seed(&mut idx))));
        }
    }
    // Section VII application cells: rigid structure, trace-scaled weights
    for (workflow, ccr) in [("blast", 0.5), ("seismology", 1.0)] {
        for (tname, bname) in [("CPoP", "FastestNode"), ("MinMin", "CPoP")] {
            cells.push(SearchCell::app(
                workflow,
                ccr,
                tname,
                bname,
                short_config(seed(&mut idx)),
            ));
        }
    }
    // metric-objective cells (HEFT vs FastestNode under all four metrics)
    for obj in [
        Objective::Makespan,
        Objective::Energy {
            idle_fraction: 0.2,
            comm_energy_per_unit: 1.0,
        },
        Objective::RentalCost,
        Objective::Throughput,
    ] {
        cells.push(SearchCell::metric(
            obj,
            "HEFT",
            "FastestNode",
            short_config(seed(&mut idx)),
        ));
    }
    // ablation-strategy cells (HEFT vs CPoP under all three strategies)
    for strategy in Strategy::ALL {
        cells.push(SearchCell::ablation(
            strategy,
            "HEFT",
            "CPoP",
            ablation_config(seed(&mut idx)),
        ));
    }
    cells
}

/// One `label,ratio_bits,initial_bits,evaluations` line per battery cell,
/// produced by the pooled engine runtime (`BatchEngine::run_cells`).
fn current_lines() -> Vec<String> {
    let cells = battery_cells();
    let engine = BatchEngine::new();
    let results = engine.run_cells(&cells, None, None).unwrap();
    cells
        .iter()
        .zip(&results)
        .map(|(cell, res)| {
            format!(
                "{},{:016x},{:016x},{}",
                cell.label,
                res.ratio.to_bits(),
                res.initial_ratio.to_bits(),
                res.evaluations
            )
        })
        .collect()
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_pisa_cells.csv")
}

#[test]
fn pisa_cells_match_golden_bits() {
    let golden = std::fs::read_to_string(golden_path())
        .expect("tests/golden_pisa_cells.csv missing — run the regen command in this file's docs");
    let golden: Vec<&str> = golden.lines().collect();
    let current = current_lines();
    assert_eq!(
        golden.len(),
        current.len(),
        "golden file has {} entries, battery produces {}",
        golden.len(),
        current.len()
    );
    let mut mismatches = Vec::new();
    for (g, c) in golden.iter().zip(&current) {
        if g != c {
            mismatches.push(format!("golden: {g}\n   now: {c}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} PISA cells changed value:\n{}",
        mismatches.len(),
        current.len(),
        mismatches.join("\n")
    );
}

#[test]
fn checkpointed_battery_replays_identically() {
    // the same battery through a write-then-resume checkpoint cycle: the
    // replayed results (parsed back from JSONL) must reproduce the fixture
    // bits too — resume cannot perturb a paper-scale run's output
    let cells = battery_cells();
    let engine = BatchEngine::new();
    let path = std::env::temp_dir().join(format!("saga_golden_cells_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let ck = CellCheckpoint::open(&path, false).unwrap();
    let fresh = engine.run_cells(&cells, None, Some(&ck)).unwrap();
    drop(ck);
    let ck = CellCheckpoint::open(&path, true).unwrap();
    assert_eq!(ck.loaded(), cells.len());
    let replayed = engine.run_cells(&cells, None, Some(&ck)).unwrap();
    for ((cell, a), b) in cells.iter().zip(&fresh).zip(&replayed) {
        assert_eq!(a.ratio.to_bits(), b.ratio.to_bits(), "{}", cell.label);
        assert_eq!(a.evaluations, b.evaluations, "{}", cell.label);
        assert_eq!(a.instance.to_json(), b.instance.to_json(), "{}", cell.label);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
#[ignore = "writes the golden fixture; run with GOLDEN_REGEN=1 when a behavior change is intended"]
fn regenerate_golden_pisa_cells() {
    assert_eq!(
        std::env::var("GOLDEN_REGEN").as_deref(),
        Ok("1"),
        "set GOLDEN_REGEN=1 to confirm overwriting the PISA-cell golden fixture"
    );
    let lines = current_lines();
    std::fs::write(golden_path(), lines.join("\n") + "\n").expect("write golden fixture");
    println!(
        "wrote {} entries to {}",
        lines.len(),
        golden_path().display()
    );
}
