//! Property suite for lockstep batch execution (PR 7).
//!
//! The cell planners now pack eligible pairwise cells into lockstep lane
//! groups: every restart of every grouped cell anneals as one lane of a
//! [`BatchedSchedContext`], with per-lane RNG streams, per-lane
//! accept/reject, and masked retirement when a lane's schedule ends early.
//! The whole point of the batch path is that it is *unobservable* — every
//! ratio, witness instance, evaluation count, and checkpoint record must
//! come out bit-identical to the scalar `SearchCell::run` path, for any
//! grouping the planner picks. This suite drives heterogeneous groups
//! (mixed scheduler pairs, seeds, restart counts and budgets — so lanes
//! retire at different steps), ragged planner remainders, and the
//! engine's checkpoint files, asserting bit-identity against per-cell
//! scalar runs throughout. CI additionally re-runs the golden suites with
//! `SAGA_NO_BATCH=1` (scalar everything) and diffs.

use proptest::prelude::*;
use saga::core::{BatchedSchedContext, SchedContext};
use saga::pisa::annealer::AnnealScratch;
use saga::pisa::{
    cell_config, lockstep, run_cells_pooled, PisaConfig, PisaResult, SearchCell, LANE_BUDGET,
};

/// A handful of roster schedulers with different replay behaviors (list
/// schedulers, clustering, duplication-free greedy).
const NAMES: &[&str] = &["HEFT", "CPoP", "ETF", "MinMin", "FastestNode", "MCT"];

fn cfg(i_max: usize, restarts: usize, seed: u64) -> PisaConfig {
    PisaConfig {
        i_max,
        restarts,
        seed,
        ..PisaConfig::default()
    }
}

/// Scalar ground truth: each cell run alone through `SearchCell::run`.
fn scalar(cells: &[SearchCell]) -> Vec<PisaResult> {
    let mut ctx = SchedContext::new();
    let mut scratch = AnnealScratch::default();
    cells
        .iter()
        .map(|c| c.run(&mut ctx, &mut scratch))
        .collect()
}

fn assert_identical(cells: &[SearchCell], got: &[PisaResult], want: &[PisaResult]) {
    assert_eq!(got.len(), want.len());
    for ((cell, g), w) in cells.iter().zip(got).zip(want) {
        assert_eq!(g.ratio.to_bits(), w.ratio.to_bits(), "{} ratio", cell.label);
        assert_eq!(
            g.initial_ratio.to_bits(),
            w.initial_ratio.to_bits(),
            "{} initial ratio",
            cell.label
        );
        assert_eq!(g.evaluations, w.evaluations, "{} evaluations", cell.label);
        assert_eq!(
            g.instance.to_json(),
            w.instance.to_json(),
            "{} witness",
            cell.label
        );
    }
}

#[test]
fn heterogeneous_lockstep_group_matches_scalar() {
    // one group, lanes with different pairs, seeds, restart counts AND
    // iteration budgets — lanes retire at different lockstep steps, so the
    // masked sweep must keep retired lanes frozen while others anneal on
    let cells = vec![
        SearchCell::pair("HEFT", "CPoP", cell_config(cfg(120, 2, 0xB0), 0)),
        SearchCell::pair("MinMin", "FastestNode", cell_config(cfg(15, 3, 0xB0), 1)),
        SearchCell::pair("ETF", "HEFT", cell_config(cfg(60, 1, 0xB0), 2)),
        SearchCell::pair("MCT", "ETF", cell_config(cfg(250, 2, 0xB0), 3)),
    ];
    let refs: Vec<&SearchCell> = cells.iter().collect();
    let mut batch = BatchedSchedContext::default();
    let got = lockstep::run_cells_lockstep(&mut batch, &refs);
    assert_identical(&cells, &got, &scalar(&cells));
}

#[test]
fn early_lane_retirement_by_temperature_floor() {
    // a lane whose cooling schedule (not iteration cap) ends first: t_max
    // close to t_min retires after a few coolings while its groupmates run
    // the full 250 iterations
    let mut hot = cfg(250, 2, 0xC0);
    let mut cold = cfg(250, 2, 0xC1);
    cold.t_max = cold.t_min * 1.05; // retires after ~5 coolings at alpha 0.99
    hot.t_max = 10.0;
    let cells = vec![
        SearchCell::pair("HEFT", "CPoP", cold),
        SearchCell::pair("CPoP", "HEFT", hot),
    ];
    let refs: Vec<&SearchCell> = cells.iter().collect();
    let mut batch = BatchedSchedContext::default();
    let got = lockstep::run_cells_lockstep(&mut batch, &refs);
    assert_identical(&cells, &got, &scalar(&cells));
}

#[test]
fn ragged_remainder_and_fallback_cells_cover_exactly() {
    // a grid that cannot pack evenly: single-restart cells against the lane
    // budget leave a ragged remainder group, a metric cell forces a scalar
    // fallback mid-grid, and an oversized cell exceeds the budget entirely
    let mut cells: Vec<SearchCell> = (0..5)
        .map(|i| {
            SearchCell::pair(
                NAMES[i % NAMES.len()],
                NAMES[(i + 1) % NAMES.len()],
                cell_config(cfg(40, 1, 0xD0), i as u64),
            )
        })
        .collect();
    cells.insert(
        2,
        SearchCell::metric(
            saga::pisa::metric::Objective::RentalCost,
            "HEFT",
            "CPoP",
            cell_config(cfg(40, 2, 0xD0), 7),
        ),
    );
    cells.push(SearchCell::pair(
        "HEFT",
        "MCT",
        cell_config(cfg(40, LANE_BUDGET + 1, 0xD0), 8),
    ));
    let units = lockstep::plan_units(&cells, |_, _| true);
    let mut covered: Vec<usize> = units.iter().flat_map(|u| u.indices().to_vec()).collect();
    covered.sort_unstable();
    assert_eq!(
        covered,
        (0..cells.len()).collect::<Vec<_>>(),
        "every cell exactly once"
    );
    for u in &units {
        if let lockstep::ExecUnit::Lockstep(idxs) = u {
            let lanes: usize = idxs.iter().map(|&i| cells[i].config.restarts).sum();
            assert!(lanes <= LANE_BUDGET, "group exceeds the lane budget");
        }
    }
    // and the planned execution is bit-identical to all-scalar
    assert_identical(&cells, &run_cells_pooled(&cells), &scalar(&cells));
}

#[test]
fn checkpoint_bytes_are_path_independent() {
    use saga_experiments::engine::{BatchEngine, CellCheckpoint};
    let cells = vec![
        SearchCell::pair("HEFT", "CPoP", cell_config(cfg(60, 2, 0xE0), 0)),
        SearchCell::pair("ETF", "MinMin", cell_config(cfg(60, 2, 0xE0), 1)),
        SearchCell::app(
            "blast",
            0.5,
            "CPoP",
            "FastestNode",
            cell_config(cfg(60, 2, 0xE0), 2),
        ),
        SearchCell::pair("MCT", "HEFT", cell_config(cfg(60, 2, 0xE0), 3)),
    ];
    let engine = BatchEngine::new();
    let dir = std::env::temp_dir();
    let path_a = dir.join(format!("saga_batched_eval_{}_a.jsonl", std::process::id()));
    let path_b = dir.join(format!("saga_batched_eval_{}_b.jsonl", std::process::id()));
    let ck = CellCheckpoint::open(&path_a, false).unwrap();
    let batched = engine.run_cells(&cells, None, Some(&ck)).unwrap();
    drop(ck);
    let ck = CellCheckpoint::open(&path_b, false).unwrap();
    let again = engine.run_cells(&cells, None, Some(&ck)).unwrap();
    drop(ck);
    assert_identical(&cells, &batched, &again);
    assert_identical(&cells, &batched, &scalar(&cells));

    // records land in completion order (thread-dependent), but the *set* of
    // checkpoint lines must be byte-identical run to run — and each line's
    // bits must encode exactly the scalar result
    let lines = |p: &std::path::Path| -> Vec<String> {
        let mut v: Vec<String> = std::fs::read_to_string(p)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        v.sort();
        v
    };
    assert_eq!(lines(&path_a), lines(&path_b), "checkpoint bytes diverged");
    let want = scalar(&cells);
    for line in lines(&path_a) {
        let rec: serde_json::Value = serde_json::from_str(&line).unwrap();
        let field = |name: &str| rec.get(name).and_then(|v| v.as_str()).unwrap().to_string();
        let key = field("key");
        let (cell, res) = cells
            .iter()
            .zip(&want)
            .find(|(c, _)| c.key() == key)
            .expect("checkpoint key matches a cell");
        assert_eq!(
            field("ratio_bits"),
            format!("{:016x}", res.ratio.to_bits()),
            "{}",
            cell.label
        );
        assert_eq!(
            field("initial_bits"),
            format!("{:016x}", res.initial_ratio.to_bits()),
            "{}",
            cell.label
        );
        assert_eq!(
            rec.get("evaluations").and_then(|v| v.as_f64()).unwrap() as usize,
            res.evaluations,
            "{}",
            cell.label
        );
    }
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn resume_replays_batched_records_without_rerunning() {
    use saga_experiments::engine::{BatchEngine, CellCheckpoint};
    let cells: Vec<SearchCell> = (0..4)
        .map(|i| {
            SearchCell::pair(
                NAMES[i % 3],
                NAMES[3 + (i % 3)],
                cell_config(cfg(50, 2, 0xF0), i as u64),
            )
        })
        .collect();
    let engine = BatchEngine::new();
    let path = std::env::temp_dir().join(format!(
        "saga_batched_eval_{}_resume.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let ck = CellCheckpoint::open(&path, false).unwrap();
    // first run records only half the grid
    let first = engine.run_cells(&cells[..2], None, Some(&ck)).unwrap();
    drop(ck);
    let ck = CellCheckpoint::open(&path, true).unwrap();
    assert_eq!(ck.loaded(), 2);
    // the resumed run replays the stored cells (now planner-ineligible) and
    // batches the remainder; everything must still match scalar
    let resumed = engine.run_cells(&cells, None, Some(&ck)).unwrap();
    drop(ck);
    assert_identical(&cells[..2], &resumed[..2], &first);
    assert_identical(&cells, &resumed, &scalar(&cells));
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary small grids — random pairs, seeds, restart counts and
    /// budgets — agree bit-for-bit between one lockstep group and the
    /// scalar path.
    #[test]
    fn arbitrary_groups_match_scalar(
        specs in proptest::collection::vec(
            (0usize..NAMES.len(), 0usize..NAMES.len(), 1usize..=3, 10usize..=60, 0u64..1000),
            1..=4,
        )
    ) {
        let cells: Vec<SearchCell> = specs
            .iter()
            .enumerate()
            .map(|(i, &(t, b, restarts, i_max, seed))| {
                SearchCell::pair(
                    NAMES[t],
                    NAMES[(t + 1 + b % (NAMES.len() - 1)) % NAMES.len()], // distinct from target
                    cell_config(cfg(i_max, restarts, seed), i as u64),
                )
            })
            .collect();
        let refs: Vec<&SearchCell> = cells.iter().collect();
        let mut batch = BatchedSchedContext::default();
        let got = lockstep::run_cells_lockstep(&mut batch, &refs);
        assert_identical(&cells, &got, &scalar(&cells));
    }
}
