//! Golden-determinism suite: the scheduling kernel must be a pure
//! performance refactor.
//!
//! `tests/golden_makespans.csv` records the bit pattern of every scheduler's
//! makespan on a fixed battery of instances — the paper-figure smoke set
//! plus 20 seeded random instances of varied shape — captured on the
//! pre-kernel `ScheduleBuilder` implementation. Any change to scheduler
//! decisions (tie-breaking, float evaluation order, ready-set ordering)
//! flips bits here and fails the suite.
//!
//! Regenerate (only when a behavior change is *intended* and reviewed):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_determinism -- --ignored
//! ```

use saga::core::Instance;
use saga::schedulers::util::fixtures;
use saga::schedulers::{self, Scheduler};

/// The instance battery: `(label, instance, tiny)`; exact solvers run only
/// on `tiny` instances.
fn battery() -> Vec<(String, Instance, bool)> {
    let mut v: Vec<(String, Instance, bool)> = Vec::new();
    for (i, inst) in fixtures::smoke_instances().into_iter().enumerate() {
        v.push((format!("smoke{i}"), inst, false));
    }
    // 20 seeded random instances spanning sizes 10..=50 tasks, 2..=5 nodes
    let tasks = [10, 20, 30, 40, 50];
    let nodes = [2, 3, 4, 5];
    let p_edge = [0.1, 0.2, 0.3];
    for k in 0..20usize {
        let seed = 1000 + k as u64;
        let t = tasks[k % tasks.len()];
        let n = nodes[k % nodes.len()];
        let p = p_edge[k % p_edge.len()];
        v.push((
            format!("rand_s{seed}_t{t}_n{n}"),
            fixtures::random_instance(seed, t, n, p),
            false,
        ));
    }
    // tiny instances for the exponential reference solvers
    for seed in 1..=4u64 {
        v.push((
            format!("tiny_s{seed}"),
            fixtures::random_instance(seed, 5, 2, 0.4),
            true,
        ));
    }
    v
}

fn roster() -> Vec<Box<dyn Scheduler>> {
    let mut all = schedulers::benchmark_schedulers();
    all.extend(schedulers::historical_schedulers());
    all
}

/// Larger instances (150–250 tasks) exercising the frontier-sweep ports of
/// the PR 3 refactor: wide ready sets and deep predecessor fans are where
/// cached data-ready rows could plausibly diverge from the direct queries.
/// Recorded on the pre-port implementations of ERT/GDL/WBA/FLB (and the
/// rest of the roster, for free).
fn large_battery() -> Vec<(String, Instance)> {
    let shapes = [
        (150usize, 4usize, 0.05f64),
        (150, 8, 0.10),
        (200, 5, 0.03),
        (200, 6, 0.08),
        (250, 4, 0.02),
        (250, 8, 0.05),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(k, &(t, n, p))| {
            let seed = 7000 + k as u64;
            (
                format!("large_s{seed}_t{t}_n{n}"),
                fixtures::random_instance(seed, t, n, p),
            )
        })
        .collect()
}

/// One `scheduler,instance,bits` line per (roster scheduler, large
/// instance), in a fixed order.
fn current_large_lines() -> Vec<String> {
    let battery = large_battery();
    let mut lines = Vec::new();
    for s in roster() {
        for (label, inst) in &battery {
            let m = s.schedule(inst).makespan();
            lines.push(format!("{},{},{:016x}", s.name(), label, m.to_bits()));
        }
    }
    lines
}

fn golden_large_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_makespans_large.csv")
}

/// One `scheduler,instance,bits` line per measurement, in a fixed order.
fn current_lines() -> Vec<String> {
    let battery = battery();
    let mut lines = Vec::new();
    for s in roster() {
        for (label, inst, _) in &battery {
            let m = s.schedule(inst).makespan();
            lines.push(format!("{},{},{:016x}", s.name(), label, m.to_bits()));
        }
    }
    for s in schedulers::exact_schedulers() {
        for (label, inst, tiny) in &battery {
            if !tiny {
                continue;
            }
            let m = s.schedule(inst).makespan();
            lines.push(format!("{},{},{:016x}", s.name(), label, m.to_bits()));
        }
    }
    lines
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_makespans.csv")
}

#[test]
fn makespans_match_golden_bits() {
    let golden = std::fs::read_to_string(golden_path())
        .expect("tests/golden_makespans.csv missing — run the regen command in this file's docs");
    let golden: Vec<&str> = golden.lines().collect();
    let current = current_lines();
    assert_eq!(
        golden.len(),
        current.len(),
        "golden file has {} entries, battery produces {}",
        golden.len(),
        current.len()
    );
    let mut mismatches = Vec::new();
    for (g, c) in golden.iter().zip(&current) {
        if g != c {
            mismatches.push(format!("golden: {g}\n   now: {c}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} makespans changed bit pattern:\n{}",
        mismatches.len(),
        current.len(),
        mismatches.join("\n")
    );
}

#[test]
fn large_makespans_match_golden_bits() {
    let golden = std::fs::read_to_string(golden_large_path()).expect(
        "tests/golden_makespans_large.csv missing — run the regen command in this file's docs",
    );
    let golden: Vec<&str> = golden.lines().collect();
    let current = current_large_lines();
    assert_eq!(
        golden.len(),
        current.len(),
        "large golden file has {} entries, battery produces {}",
        golden.len(),
        current.len()
    );
    let mut mismatches = Vec::new();
    for (g, c) in golden.iter().zip(&current) {
        if g != c {
            mismatches.push(format!("golden: {g}\n   now: {c}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} large-instance makespans changed bit pattern:\n{}",
        mismatches.len(),
        current.len(),
        mismatches.join("\n")
    );
}

#[test]
#[ignore = "writes the golden fixture; run with GOLDEN_REGEN=1 when a behavior change is intended"]
fn regenerate_golden_large() {
    assert_eq!(
        std::env::var("GOLDEN_REGEN").as_deref(),
        Ok("1"),
        "set GOLDEN_REGEN=1 to confirm overwriting the large golden fixture"
    );
    let lines = current_large_lines();
    std::fs::write(golden_large_path(), lines.join("\n") + "\n").expect("write golden fixture");
    println!(
        "wrote {} entries to {}",
        lines.len(),
        golden_large_path().display()
    );
}

#[test]
#[ignore = "writes the golden fixture; run with GOLDEN_REGEN=1 when a behavior change is intended"]
fn regenerate_golden() {
    assert_eq!(
        std::env::var("GOLDEN_REGEN").as_deref(),
        Ok("1"),
        "set GOLDEN_REGEN=1 to confirm overwriting the golden fixture"
    );
    let lines = current_lines();
    std::fs::write(golden_path(), lines.join("\n") + "\n").expect("write golden fixture");
    println!(
        "wrote {} entries to {}",
        lines.len(),
        golden_path().display()
    );
}
