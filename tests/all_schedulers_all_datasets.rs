//! Cross-crate integration: every polynomial scheduler must produce a valid
//! schedule on instances from every dataset generator — the combination the
//! paper's Fig. 2 exercises 15 x 16 times.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga::schedulers::Scheduler;

#[test]
fn every_scheduler_is_valid_on_every_dataset() {
    let schedulers = saga::schedulers::benchmark_schedulers();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for gen in saga::datasets::all_generators() {
        for k in 0..2 {
            let inst = gen.sample(&mut rng);
            for s in &schedulers {
                let sched = s.schedule(&inst);
                sched.verify(&inst).unwrap_or_else(|e| {
                    panic!("{} invalid on {} sample {k}: {e}", s.name(), gen.name)
                });
                assert!(
                    sched.makespan() > 0.0,
                    "{} zero makespan on {}",
                    s.name(),
                    gen.name
                );
            }
        }
    }
}

#[test]
fn exact_solvers_are_valid_and_lower_bound_heuristics_on_tiny_instances() {
    let mut rng = StdRng::seed_from_u64(7);
    let gen = saga::datasets::by_name("chains").unwrap();
    // shrink: chains instances can have up to 27 tasks; find small samples
    let mut checked = 0;
    while checked < 2 {
        let inst = gen.sample(&mut rng);
        if inst.graph.task_count() > 7 || inst.network.node_count() > 3 {
            continue;
        }
        checked += 1;
        let opt = saga::schedulers::BruteForce::default().schedule(&inst);
        opt.verify(&inst).unwrap();
        for s in saga::schedulers::benchmark_schedulers() {
            let m = s.schedule(&inst).makespan();
            assert!(
                opt.makespan() <= m + 1e-9,
                "BruteForce {} > {} {}",
                opt.makespan(),
                s.name(),
                m
            );
        }
    }
}

#[test]
fn makespan_ratio_one_is_always_achieved_by_someone() {
    let schedulers = saga::schedulers::benchmark_schedulers();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for gen in saga::datasets::all_generators() {
        let inst = gen.sample(&mut rng);
        let ms: Vec<f64> = schedulers
            .iter()
            .map(|s| s.schedule(&inst).makespan())
            .collect();
        let best = ms.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(best.is_finite(), "someone must finish on {}", gen.name);
    }
}

#[test]
fn schedulers_are_deterministic_across_calls() {
    // WBA is seeded; everything else is purely deterministic — two calls on
    // the same instance must agree exactly.
    let mut rng = StdRng::seed_from_u64(0xDE7);
    let gen = saga::datasets::by_name("montage").unwrap();
    let inst = gen.sample(&mut rng);
    for s in saga::schedulers::benchmark_schedulers() {
        let a = s.schedule(&inst);
        let b = s.schedule(&inst);
        assert_eq!(a.makespan(), b.makespan(), "{} nondeterministic", s.name());
        for t in inst.graph.tasks() {
            assert_eq!(a.assignment(t).node, b.assignment(t).node);
            assert_eq!(a.assignment(t).start, b.assignment(t).start);
        }
    }
}
