//! Property-based tests over the core invariants:
//!
//! * every scheduler produces a Section-II-valid schedule on arbitrary DAG
//!   instances (including zero weights);
//! * the reported makespan equals the maximum assignment finish time;
//! * task-graph mutations preserve acyclicity and pred/succ symmetry;
//! * JSON round-trips are lossless, including infinite link strengths.

use proptest::prelude::*;
use saga::core::{Instance, Network, NodeId, TaskGraph};
use saga::schedulers::Scheduler;

/// Strategy: a random DAG instance with up to 8 tasks and 4 nodes. Forward
/// edges only, so acyclic by construction; weights may be zero (the paper's
/// clipping floor) to exercise infinite-time paths.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        2usize..=8,                                      // tasks
        1usize..=4,                                      // nodes
        proptest::collection::vec(0.0f64..=2.0, 8),      // task costs (prefix used)
        proptest::collection::vec(0.0f64..=2.0, 8 * 8),  // dep costs
        proptest::collection::vec(any::<bool>(), 8 * 8), // edge mask
        proptest::collection::vec(0.0f64..=2.0, 4),      // speeds
        proptest::collection::vec(0.0f64..=2.0, 4 * 4),  // links
    )
        .prop_map(|(nt, nv, costs, dep_costs, mask, speeds, links)| {
            let mut g = TaskGraph::new();
            let ids: Vec<_> = (0..nt)
                .map(|i| g.add_task(format!("t{i}"), costs[i]))
                .collect();
            for i in 0..nt {
                for j in (i + 1)..nt {
                    if mask[i * 8 + j] {
                        g.add_dependency(ids[i], ids[j], dep_costs[i * 8 + j])
                            .unwrap();
                    }
                }
            }
            let mut net = Network::complete(&speeds[..nv], 1.0);
            for u in 0..nv {
                for v in (u + 1)..nv {
                    net.set_link(NodeId(u as u32), NodeId(v as u32), links[u * 4 + v]);
                }
            }
            Instance::new(net, g)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_schedulers_valid_on_arbitrary_instances(inst in arb_instance()) {
        for s in saga::schedulers::benchmark_schedulers() {
            let sched = s.schedule(&inst);
            prop_assert!(
                sched.verify(&inst).is_ok(),
                "{} invalid: {:?}",
                s.name(),
                sched.verify(&inst)
            );
        }
    }

    #[test]
    fn makespan_equals_max_finish(inst in arb_instance()) {
        let sched = saga::schedulers::Heft.schedule(&inst);
        let max_finish = sched
            .assignments()
            .iter()
            .map(|a| a.finish)
            .fold(0.0f64, f64::max);
        prop_assert_eq!(sched.makespan(), max_finish);
    }

    #[test]
    fn json_round_trip_is_lossless(inst in arb_instance()) {
        let back = Instance::from_json(&inst.to_json()).unwrap();
        prop_assert_eq!(inst.graph.task_count(), back.graph.task_count());
        prop_assert_eq!(inst.graph.dependency_count(), back.graph.dependency_count());
        prop_assert_eq!(inst.network.node_count(), back.network.node_count());
        for t in inst.graph.tasks() {
            prop_assert_eq!(inst.graph.cost(t), back.graph.cost(t));
        }
        for (a, b, c) in inst.graph.dependencies() {
            prop_assert_eq!(back.graph.dependency_cost(a, b), Some(c));
        }
        for u in inst.network.nodes() {
            prop_assert_eq!(inst.network.speed(u), back.network.speed(u));
            for v in inst.network.nodes() {
                let x = inst.network.link(u, v);
                let y = back.network.link(u, v);
                prop_assert!(x == y || (x.is_infinite() && y.is_infinite()));
            }
        }
    }

    #[test]
    fn upward_rank_decreases_along_edges(inst in arb_instance()) {
        // a predecessor's upward rank strictly dominates each successor's
        // (>= plus its own positive avg exec; with zero weights only >=)
        let rank = saga::core::ranking::upward_rank(&inst);
        for (a, b, _) in inst.graph.dependencies() {
            if rank[b.index()].is_finite() {
                prop_assert!(rank[a.index()] >= rank[b.index()] - 1e-12);
            }
        }
    }

    #[test]
    fn duplex_never_worse_than_components(inst in arb_instance()) {
        use saga::schedulers::Scheduler;
        let d = saga::schedulers::Duplex.schedule(&inst).makespan();
        let a = saga::schedulers::MinMin.schedule(&inst).makespan();
        let b = saga::schedulers::MaxMin.schedule(&inst).makespan();
        if d.is_finite() {
            prop_assert!(d <= a + 1e-9 && d <= b + 1e-9);
        } else {
            prop_assert!(!a.is_finite() && !b.is_finite());
        }
    }

    #[test]
    fn graph_mutations_preserve_symmetry(
        nt in 2usize..6,
        edges in proptest::collection::vec((0usize..6, 0usize..6, 0.0f64..1.0), 0..12),
        removals in proptest::collection::vec(0usize..12, 0..6),
    ) {
        let mut g = TaskGraph::new();
        for i in 0..nt {
            g.add_task(format!("t{i}"), 1.0);
        }
        for (a, b, c) in &edges {
            let (a, b) = (*a % nt, *b % nt);
            let _ = g.add_dependency(
                saga::core::TaskId(a as u32),
                saga::core::TaskId(b as u32),
                *c,
            );
        }
        let deps: Vec<_> = g.dependencies().map(|(a, b, _)| (a, b)).collect();
        for r in &removals {
            if !deps.is_empty() {
                let (a, b) = deps[r % deps.len()];
                let _ = g.remove_dependency(a, b);
            }
        }
        // acyclic and symmetric after arbitrary mutation
        prop_assert_eq!(g.topological_order().len(), g.task_count());
        for t in g.tasks() {
            for e in g.successors(t) {
                prop_assert!(g.predecessors(e.task).iter().any(|p| p.task == t));
            }
            for e in g.predecessors(t) {
                prop_assert!(g.successors(e.task).iter().any(|s| s.task == t));
            }
        }
    }
}
