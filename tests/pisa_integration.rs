//! Integration tests for the adversarial pipeline: PISA end-to-end against
//! real schedulers, the pairwise driver, and the Section VII
//! application-specific variant.

use saga::pisa::annealer::{Pisa, PisaConfig};
use saga::pisa::app_specific::AppSpecific;
use saga::pisa::perturb::{initial_instance, GeneralPerturber};
use saga::pisa::{pairwise_matrix, Perturber};
use saga::schedulers::Scheduler;

fn quick(seed: u64) -> PisaConfig {
    PisaConfig {
        i_max: 200,
        restarts: 2,
        seed,
        ..PisaConfig::default()
    }
}

#[test]
fn pisa_beats_benchmarking_for_heft_vs_fastest_node() {
    // The paper's most striking single claim: PISA finds instances where
    // HEFT badly trails the serial FastestNode baseline (4.34x in Fig. 4),
    // even though FastestNode looks terrible in benchmarks.
    let perturber = GeneralPerturber::default();
    let pisa = Pisa {
        target: &saga::schedulers::Heft,
        baseline: &saga::schedulers::FastestNode,
        perturber: &perturber,
        config: quick(11),
    };
    let res = pisa.run(&|rng| initial_instance(rng));
    assert!(
        res.ratio > 1.3,
        "expected HEFT to over-parallelize somewhere, got {}",
        res.ratio
    );
    // the witness is a real, verifiable instance
    let h = saga::schedulers::Heft.schedule(&res.instance);
    let f = saga::schedulers::FastestNode.schedule(&res.instance);
    h.verify(&res.instance).unwrap();
    f.verify(&res.instance).unwrap();
    assert!(h.makespan() > f.makespan());
}

#[test]
fn pairwise_matrix_on_app_subset_finds_mutual_weaknesses() {
    let m = pairwise_matrix(&saga::schedulers::app_specific_schedulers(), quick(5));
    assert_eq!(m.names.len(), 6);
    // at least one pair is adversarial in both directions
    let n = m.names.len();
    let mut mutual = false;
    for i in 0..n {
        for j in (i + 1)..n {
            if m.ratios[i][j] > 1.05 && m.ratios[j][i] > 1.05 {
                mutual = true;
            }
        }
    }
    assert!(mutual, "no mutually adversarial pair found");
    // every witness revalidates to its recorded ratio
    for i in 0..n {
        for j in 0..n {
            if let Some(inst) = &m.witnesses[i][j] {
                let a = saga::schedulers::by_name(&m.names[j]).unwrap();
                let b = saga::schedulers::by_name(&m.names[i]).unwrap();
                let r = saga::pisa::makespan_ratio(
                    a.schedule(inst).makespan(),
                    b.schedule(inst).makespan(),
                );
                let recorded = m.ratios[i][j];
                assert!(
                    (r - recorded).abs() < 1e-9 || (r.is_infinite() && recorded.is_infinite()),
                    "witness mismatch {} vs {}: {r} != {recorded}",
                    m.names[j],
                    m.names[i]
                );
            }
        }
    }
}

#[test]
fn app_specific_search_stays_in_family() {
    let app = AppSpecific::new("seismology", 1.0).unwrap();
    let res = app.run_pair(
        &saga::schedulers::MinMin,
        &saga::schedulers::Cpop,
        quick(23),
    );
    // the witness still has seismology's star shape: one sink fed by all
    let g = &res.instance.graph;
    let sinks = g.sinks();
    assert_eq!(sinks.len(), 1);
    assert_eq!(g.predecessors(sinks[0]).len(), g.task_count() - 1);
    // and weights stayed in the trace ranges
    let sp = app.spec;
    for t in g.tasks() {
        assert!(g.cost(t) >= sp.runtime_range.0 && g.cost(t) <= sp.runtime_range.1);
    }
}

#[test]
fn perturber_composes_with_all_schedulers() {
    // fuzz-ish: schedulers stay valid along a perturbation trajectory
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let mut inst = initial_instance(&mut rng);
    let p = GeneralPerturber::default();
    let schedulers = saga::schedulers::benchmark_schedulers();
    for step in 0..30 {
        p.perturb(&mut inst, &mut rng);
        for s in &schedulers {
            let sched = s.schedule(&inst);
            sched
                .verify(&inst)
                .unwrap_or_else(|e| panic!("{} invalid at step {step}: {e}", s.name()));
        }
    }
}
