//! Integration tests for the future-work extensions: stochastic instances,
//! alternative metrics, the witness library, the ensemble scheduler, and
//! the historical comparator baselines — all exercised across crates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga::core::stochastic::{simulate_fixed, StochasticInstance};
use saga::core::{metrics, Instance};
use saga::schedulers::Scheduler;

#[test]
fn stochastic_plans_execute_validly_on_all_app_schedulers() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    let gen = saga::datasets::by_name("soykb").unwrap();
    let inst = gen.sample(&mut rng);
    let stoch = StochasticInstance::jittered(&inst, 0.25);
    for s in saga::schedulers::app_specific_schedulers() {
        let plan = s.schedule(&stoch.expected_instance());
        for k in 0..5 {
            let reality = stoch.realize(&mut rng);
            let executed = simulate_fixed(&plan, &reality);
            executed
                .verify(&reality)
                .unwrap_or_else(|e| panic!("{} plan invalid under realization {k}: {e}", s.name()));
        }
    }
}

#[test]
fn fixed_plan_regret_is_nonnegative_under_slowdown_only() {
    // if every speed/link can only degrade (jitter clipped below mean),
    // a re-timed plan can never beat its promise
    let mut rng = StdRng::seed_from_u64(0xE2);
    let gen = saga::datasets::by_name("montage").unwrap();
    let base = gen.sample(&mut rng);
    // build a degraded-only stochastic wrapper manually: costs can only grow
    use saga::core::stochastic::Dist;
    let task_costs = base
        .graph
        .tasks()
        .map(|t| Dist::Uniform {
            lo: base.graph.cost(t),
            hi: base.graph.cost(t) * 1.5,
        })
        .collect();
    let dep_costs = base
        .graph
        .dependencies()
        .map(|(a, b, c)| (a, b, Dist::Fixed(c)))
        .collect();
    let speeds = base
        .network
        .nodes()
        .map(|v| Dist::Fixed(base.network.speed(v)))
        .collect();
    let stoch = StochasticInstance::new(base.clone(), task_costs, dep_costs, speeds, vec![]);
    let plan = saga::schedulers::Heft.schedule(&stoch.expected_instance());
    // expected instance has mean costs (1.25x base), but plan promise is on
    // that same instance; realizations in [1, 1.5]x can beat the mean —
    // compare against the *base* instead: every realization >= base costs
    let base_exec = simulate_fixed(&plan, &base).makespan();
    for _ in 0..10 {
        let reality = stoch.realize(&mut rng);
        let executed = simulate_fixed(&plan, &reality);
        assert!(executed.makespan() >= base_exec - 1e-9);
    }
}

#[test]
fn metrics_are_consistent_across_schedulers() {
    let mut rng = StdRng::seed_from_u64(0xE3);
    let gen = saga::datasets::by_name("stats").unwrap();
    let inst = gen.sample(&mut rng);
    for s in saga::schedulers::benchmark_schedulers() {
        let sched = s.schedule(&inst);
        let model = metrics::EnergyModel::speed_proportional(&inst, 0.1, 0.5);
        let e = metrics::energy(&inst, &sched, &model);
        let u = metrics::utilization(&inst, &sched);
        let thr = metrics::throughput(&inst, &sched);
        assert!(e > 0.0, "{} zero energy", s.name());
        assert!(
            (0.0..=1.0 + 1e-9).contains(&u),
            "{} utilization {u}",
            s.name()
        );
        assert!(thr > 0.0, "{} zero throughput", s.name());
        let price = vec![1.0; inst.network.node_count()];
        let cost = metrics::rental_cost(&inst, &sched, &price);
        // occupied spans sum is at most |V| * makespan and at least the
        // total busy time
        assert!(cost <= inst.network.node_count() as f64 * sched.makespan() + 1e-9);
    }
}

#[test]
fn serial_schedule_minimizes_idle_energy_among_singletons() {
    // FastestNode never idles its (single) busy node between tasks when
    // dependencies are local, so its utilization on that node is 1
    let mut rng = StdRng::seed_from_u64(0xE4);
    let gen = saga::datasets::by_name("chains").unwrap();
    let inst = gen.sample(&mut rng);
    let sched = saga::schedulers::FastestNode.schedule(&inst);
    let fast = inst.network.fastest_node();
    let busy: f64 = sched
        .node_tasks(fast)
        .iter()
        .map(|&t| {
            let a = sched.assignment(t);
            a.finish - a.start
        })
        .sum();
    assert!(
        (busy - sched.makespan()).abs() < 1e-9,
        "gaps in serial schedule"
    );
}

#[test]
fn ensemble_beats_members_on_family_instances() {
    let mut rng = StdRng::seed_from_u64(0xE5);
    let e = saga::schedulers::Ensemble::default_portfolio();
    for _ in 0..20 {
        let a = saga::datasets::families::heft_weak_instance(&mut rng);
        let b = saga::datasets::families::cpop_weak_instance(&mut rng);
        for inst in [a, b] {
            let em = e.schedule(&inst).makespan();
            let h = saga::schedulers::Heft.schedule(&inst).makespan();
            let c = saga::schedulers::Cpop.schedule(&inst).makespan();
            assert!(em <= h.min(c) + 1e-9);
            e.schedule(&inst).verify(&inst).unwrap();
        }
    }
}

#[test]
fn historical_baselines_are_valid_everywhere() {
    let mut rng = StdRng::seed_from_u64(0xE6);
    for gen in saga::datasets::all_generators() {
        let inst = gen.sample(&mut rng);
        for s in saga::schedulers::historical_schedulers() {
            s.schedule(&inst)
                .verify(&inst)
                .unwrap_or_else(|e| panic!("{} invalid on {}: {e}", s.name(), gen.name));
        }
    }
}

#[test]
fn witness_library_round_trips_through_disk_format() {
    use saga::pisa::library::WitnessLibrary;
    use saga::pisa::{pairwise_matrix, PisaConfig};
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(saga::schedulers::Heft),
        Box::new(saga::schedulers::Cpop),
        Box::new(saga::schedulers::FastestNode),
    ];
    let m = pairwise_matrix(
        &schedulers,
        PisaConfig {
            i_max: 60,
            restarts: 1,
            seed: 0xE7,
            ..PisaConfig::default()
        },
    );
    let lib = WitnessLibrary::from_matrix(&m);
    assert_eq!(lib.records.len(), 6);
    let back = WitnessLibrary::from_jsonl(&lib.to_jsonl()).unwrap();
    assert_eq!(back.revalidate(), 0);
    let rows = back.evaluate(&saga::schedulers::MinMin);
    assert_eq!(rows.len(), 6);
}

#[test]
fn metric_objectives_agree_with_direct_computation() {
    use saga::pisa::metric::Objective;
    let mut rng = StdRng::seed_from_u64(0xE8);
    let gen = saga::datasets::by_name("etl").unwrap();
    let inst: Instance = gen.sample(&mut rng);
    let heft = saga::schedulers::Heft.schedule(&inst);
    let obj = Objective::Energy {
        idle_fraction: 0.2,
        comm_energy_per_unit: 1.0,
    };
    let via_obj = obj.evaluate(&inst, &heft);
    let model = metrics::EnergyModel::speed_proportional(&inst, 0.2, 1.0);
    let direct = metrics::energy(&inst, &heft, &model);
    assert_eq!(via_obj, direct);
}
