//! Integration suite for the distributed shard-and-merge protocol (PR 9).
//!
//! `--shard i/N` partitions a grid's cells by `fnv1a(key) % N` — stateless,
//! thread-count independent, lockstep-planning independent — and
//! `saga-merge` unions the per-shard checkpoints back into one canonical
//! (key-sorted) file. The distributed run is only trustworthy if three
//! things hold, and this suite proves each:
//!
//! 1. **Exact cover** — every cell of an arbitrary grid lands in exactly
//!    one shard, for any shard count (proptest over grid shapes and seeds).
//! 2. **Byte-identity** — shards 0/3 + 1/3 + 2/3 of a quick fig4-class and
//!    a quick metric grid, merged, are byte-identical to the canonicalized
//!    1-host checkpoint, and a run resumed *from* the merged file replays
//!    bit-identical results.
//! 3. **Merge hygiene** — identical duplicate keys dedupe, conflicting
//!    duplicates are a hard error, torn lines are counted.

use proptest::prelude::*;
use saga::pisa::metric::Objective;
use saga::pisa::{cell_config, shard_cells, PisaConfig, SearchCell, ShardSpec};
use saga_experiments::engine::{BatchEngine, CellCheckpoint};
use saga_experiments::merge::{merge_files, MergeError};
use std::path::PathBuf;

const NAMES: &[&str] = &["HEFT", "CPoP", "ETF", "MinMin", "FastestNode", "MCT"];

fn cfg(i_max: usize, restarts: usize, seed: u64) -> PisaConfig {
    PisaConfig {
        i_max,
        restarts,
        seed,
        ..PisaConfig::default()
    }
}

/// A quick fig4-class grid: every ordered pair of a small roster.
fn pair_grid(i_max: usize, seed: u64) -> Vec<SearchCell> {
    let mut cells = Vec::new();
    for a in NAMES {
        for b in NAMES {
            if a != b {
                cells.push(SearchCell::pair(
                    a,
                    b,
                    cell_config(cfg(i_max, 1, seed), cells.len() as u64),
                ));
            }
        }
    }
    cells
}

/// A quick metric grid: pairs × objectives, like `metric_pisa --quick`.
fn metric_grid(i_max: usize, seed: u64) -> Vec<SearchCell> {
    let objectives = [
        Objective::Makespan,
        Objective::RentalCost,
        Objective::Throughput,
    ];
    let pairs = [("HEFT", "FastestNode"), ("CPoP", "HEFT")];
    let mut cells = Vec::new();
    for (a, b) in pairs {
        for obj in objectives {
            cells.push(SearchCell::metric(
                obj,
                a,
                b,
                cell_config(cfg(i_max, 1, seed), cells.len() as u64),
            ));
        }
    }
    cells
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "saga_shard_merge_{}_{tag}.jsonl",
        std::process::id()
    ))
}

/// Runs `cells` to a fresh checkpoint at `path` and returns the file text.
fn run_to_checkpoint(engine: &BatchEngine, cells: &[SearchCell], path: &PathBuf) -> String {
    let ck = CellCheckpoint::open(path, false).unwrap();
    engine.run_cells(cells, None, Some(&ck)).unwrap();
    drop(ck);
    std::fs::read_to_string(path).unwrap()
}

/// Canonicalizes checkpoint text through the merge (key-sorted output).
fn canonical(text: &str, tag: &str) -> Vec<u8> {
    let path = tmp_path(tag);
    std::fs::write(&path, text).unwrap();
    let mut out = Vec::new();
    merge_files(std::slice::from_ref(&path), &mut out).unwrap();
    let _ = std::fs::remove_file(&path);
    out
}

/// The heart of criterion 2: run `cells` unsharded and as 3 shards, merge
/// the shard checkpoints, and demand byte-identity with the canonicalized
/// 1-host file.
fn assert_three_way_shard_merges_byte_identical(cells: &[SearchCell], tag: &str) {
    let engine = BatchEngine::new();
    let one_host = tmp_path(&format!("{tag}_1host"));
    let one_host_text = run_to_checkpoint(&engine, cells, &one_host);

    let mut shard_paths = Vec::new();
    for index in 0..3u64 {
        let shard = ShardSpec { index, count: 3 };
        let subset = shard_cells(cells.to_vec(), shard);
        let path = tmp_path(&format!("{tag}_shard{index}"));
        run_to_checkpoint(&engine, &subset, &path);
        shard_paths.push(path);
    }
    let mut merged = Vec::new();
    let summary = merge_files(&shard_paths, &mut merged).unwrap();
    assert_eq!(summary.records, cells.len(), "merge must cover the grid");
    assert_eq!(summary.duplicates, 0);
    assert_eq!(summary.torn, 0);
    assert_eq!(
        merged,
        canonical(&one_host_text, &format!("{tag}_canon")),
        "3-way shard merge must be byte-identical to the canonicalized 1-host checkpoint"
    );

    // and a run resumed from the merged file replays bit-identically
    let merged_path = tmp_path(&format!("{tag}_merged"));
    std::fs::write(&merged_path, &merged).unwrap();
    let ck = CellCheckpoint::open(&merged_path, true).unwrap();
    assert_eq!(ck.loaded(), cells.len());
    let replayed = engine.run_cells(cells, None, Some(&ck)).unwrap();
    let fresh = engine.run_cells(cells, None, None).unwrap();
    for ((cell, a), b) in cells.iter().zip(&replayed).zip(&fresh) {
        assert_eq!(a.ratio.to_bits(), b.ratio.to_bits(), "{}", cell.label);
        assert_eq!(a.instance.to_json(), b.instance.to_json(), "{}", cell.label);
    }

    for p in shard_paths.iter().chain([&one_host, &merged_path]) {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn quick_fig4_grid_shards_merge_byte_identical() {
    assert_three_way_shard_merges_byte_identical(&pair_grid(40, 0xF164), "fig4");
}

#[test]
fn quick_metric_grid_shards_merge_byte_identical() {
    assert_three_way_shard_merges_byte_identical(&metric_grid(40, 0x3E71C), "metric");
}

#[test]
fn shard_partition_is_independent_of_plan_and_thread_count() {
    // the shard assignment is a pure function of the key: the same cell
    // list sharded twice — or in a different generation order — lands
    // identically
    let cells = pair_grid(40, 7);
    let shard = ShardSpec { index: 1, count: 4 };
    let a: Vec<String> = shard_cells(cells.clone(), shard)
        .iter()
        .map(|c| c.key())
        .collect();
    let mut reversed = cells.clone();
    reversed.reverse();
    let mut b: Vec<String> = shard_cells(reversed, shard)
        .iter()
        .map(|c| c.key())
        .collect();
    b.reverse();
    assert_eq!(a, b);
}

#[test]
fn merge_rejects_conflicting_duplicate_keys() {
    let a = tmp_path("conflict_a");
    let b = tmp_path("conflict_b");
    std::fs::write(
        &a,
        "{\"key\":\"cell#1\",\"ratio_bits\":\"3ff0000000000000\"}\n",
    )
    .unwrap();
    std::fs::write(
        &b,
        "{\"key\":\"cell#1\",\"ratio_bits\":\"4000000000000000\"}\n",
    )
    .unwrap();
    let err = merge_files(&[a.clone(), b.clone()], &mut Vec::new()).unwrap_err();
    match err {
        MergeError::Conflict { key, first, second } => {
            assert_eq!(key, "cell#1");
            assert_eq!(first, a);
            assert_eq!(second, b);
        }
        other => panic!("expected a conflict error, got {other}"),
    }
    let _ = std::fs::remove_file(a);
    let _ = std::fs::remove_file(b);
}

#[test]
fn merge_reports_torn_line_counts() {
    let a = tmp_path("torn_a");
    // a good record, a torn tail from a crash, and a keyless line
    std::fs::write(
        &a,
        "{\"key\":\"cell#1\",\"v\":1}\n{\"key\":\"cell#2\",\"ratio_bits\":\"3ff00\n{\"v\":2}\n",
    )
    .unwrap();
    let mut out = Vec::new();
    let summary = merge_files(std::slice::from_ref(&a), &mut out).unwrap();
    assert_eq!(summary.records, 1);
    assert_eq!(summary.torn, 2);
    let _ = std::fs::remove_file(a);
}

#[test]
fn merged_duplicates_must_be_byte_identical_to_dedupe() {
    // a shard re-run twice produces the same lines; merging both runs
    // dedupes instead of erroring
    let cells = metric_grid(30, 3);
    let engine = BatchEngine::new();
    let p1 = tmp_path("dup_run1");
    let p2 = tmp_path("dup_run2");
    let t1 = run_to_checkpoint(&engine, &cells, &p1);
    let t2 = run_to_checkpoint(&engine, &cells, &p2);
    assert_eq!(
        canonical(&t1, "dup_c1"),
        canonical(&t2, "dup_c2"),
        "deterministic cells re-run must produce identical records"
    );
    let mut out = Vec::new();
    let summary = merge_files(&[p1.clone(), p2.clone()], &mut out).unwrap();
    assert_eq!(summary.records, cells.len());
    assert_eq!(summary.duplicates, cells.len());
    let _ = std::fs::remove_file(p1);
    let _ = std::fs::remove_file(p2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Criterion 1: for arbitrary grid shapes (random pair subsets, seeds,
    /// budgets) and arbitrary shard counts, every cell lands in exactly one
    /// shard — no loss, no double-run — and the union preserves grid order.
    #[test]
    fn shard_partition_is_an_exact_cover(
        specs in proptest::collection::vec(
            (0usize..NAMES.len(), 1usize..NAMES.len(), 10usize..=60, 0u64..1000),
            1..=12,
        ),
        count in 1u64..=6,
    ) {
        let cells: Vec<SearchCell> = specs
            .iter()
            .enumerate()
            .map(|(i, &(t, off, i_max, seed))| {
                SearchCell::pair(
                    NAMES[t],
                    NAMES[(t + off) % NAMES.len()],
                    cell_config(cfg(i_max, 1, seed), i as u64),
                )
            })
            .collect();
        let mut owners: Vec<usize> = vec![0; cells.len()];
        for index in 0..count {
            let shard = ShardSpec { index, count };
            for sc in shard_cells(cells.clone(), shard) {
                // match shard members back to grid positions by key
                for (i, c) in cells.iter().enumerate() {
                    if c.key() == sc.key() {
                        owners[i] += 1;
                    }
                }
            }
        }
        // duplicate keys (proptest may generate identical specs) are owned
        // once per occurrence per duplicate, so normalize by multiplicity
        let mut multiplicity = std::collections::HashMap::new();
        for c in &cells {
            *multiplicity.entry(c.key()).or_insert(0usize) += 1;
        }
        for (i, c) in cells.iter().enumerate() {
            prop_assert_eq!(
                owners[i],
                multiplicity[&c.key()],
                "cell {} must land in exactly one shard of {}",
                c.key(),
                count
            );
        }
    }
}
