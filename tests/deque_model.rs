//! Exhaustive model-checking of the vendored rayon queue protocols.
//!
//! `rayon::model` re-expresses the work-stealing deque and legacy cursor
//! protocols against the vendored loom shims (deterministic
//! bounded-preemption DFS over interleavings, vector-clock race
//! detection); this suite drives it both ways:
//!
//! - **Pass direction:** every bounded 2- and 3-worker execution of the
//!   faithful protocols is free of lost items, double-claims,
//!   non-termination and torn stats publication. Run with
//!   `--nocapture` to see the interleaving counts CI prints.
//! - **Mutation direction:** deliberately re-introducing each bug class
//!   (the pre-fix `Relaxed` termination decrement, a lost split tail, a
//!   double-processed chunk, a torn cursor claim) is *caught*, which is
//!   the evidence the pass direction means something.
//!
//! The explorer is deterministic: same model, same schedules, same
//! counts — asserted below, per the workspace determinism rules.

use rayon::model::{check, find_violation, ModelCfg, Mutation};

/// 2 workers, 4 items, chunk 2: each worker's seeded segment is exactly
/// one chunk, so the schedule space is pure claim/steal/terminate — and
/// the termination scan crosses worker lifetimes.
#[test]
fn deque_two_workers_exhaustive() {
    let report = check(ModelCfg::deque(2, 4, 2));
    println!(
        "deque 2w/4i/c2: {} interleavings, {} scheduled ops",
        report.executions, report.total_ops
    );
    assert!(report.executions > 1, "schedules were actually explored");
}

/// 3 workers, 3 items, chunk 1: maximal steal pressure — every worker
/// scans two victims and the last item's decrement gates three exits.
#[test]
fn deque_three_workers_exhaustive() {
    let report = check(ModelCfg::deque(3, 3, 1));
    println!(
        "deque 3w/3i/c1: {} interleavings, {} scheduled ops",
        report.executions, report.total_ops
    );
    assert!(report.executions > 1, "schedules were actually explored");
}

/// Uneven split: 2 workers, 5 items, chunk 2 — one worker owns a
/// 3-item segment and must split it while thieves probe.
#[test]
fn deque_uneven_segments_exhaustive() {
    let report = check(ModelCfg::deque(2, 5, 2));
    println!(
        "deque 2w/5i/c2: {} interleavings, {} scheduled ops",
        report.executions, report.total_ops
    );
}

#[test]
fn cursor_two_workers_exhaustive() {
    let report = check(ModelCfg::cursor(2, 4, 2));
    println!(
        "cursor 2w/4i/c2: {} interleavings, {} scheduled ops",
        report.executions, report.total_ops
    );
    assert!(report.executions > 1, "schedules were actually explored");
}

#[test]
fn cursor_three_workers_exhaustive() {
    let report = check(ModelCfg::cursor(3, 3, 1));
    println!(
        "cursor 3w/3i/c1: {} interleavings, {} scheduled ops",
        report.executions, report.total_ops
    );
}

/// Mutation test for the ordering bug this PR fixed in
/// `CountChunk::drop`: with the decrement relaxed, the acquire spin-exit
/// no longer orders an exiting worker after its siblings' item/stats
/// writes, and the model must report the data race.
#[test]
fn relaxed_decrement_is_caught_as_a_race() {
    let v = find_violation(
        ModelCfg::deque(2, 4, 2)
            .with_mutation(Mutation::RelaxedDecrement)
            .with_preemptions(3),
    )
    .expect("the pre-fix Relaxed decrement must be caught");
    println!("relaxed-decrement violation: {v}");
    assert!(v.message.contains("data race"), "unexpected violation: {v}");
}

/// Losing the split-off tail loses items: `remaining` never reaches
/// zero and every worker spins — reported via the operation budget.
#[test]
fn lost_split_tail_is_caught() {
    // 5 items / chunk 2: one worker's 3-item segment must split, so the
    // mutation actually drops a tail (a 4-item/chunk-2 config never
    // splits — both seeded segments are already chunk-sized).
    let v = find_violation(ModelCfg::deque(2, 5, 2).with_mutation(Mutation::LoseSplitTail))
        .expect("a lost split tail must be caught");
    println!("lost-tail violation: {v}");
    assert!(
        v.message.contains("budget") || v.message.contains("lost"),
        "unexpected violation: {v}"
    );
}

/// Processing a claimed chunk twice trips the per-item claim count.
#[test]
fn double_process_is_caught() {
    let v = find_violation(ModelCfg::deque(2, 4, 2).with_mutation(Mutation::DoubleProcess))
        .expect("double processing must be caught");
    println!("double-process violation: {v}");
    assert!(
        v.message.contains("processed twice"),
        "unexpected violation: {v}"
    );
}

/// A torn (load + store) cursor claim lets two workers take the same
/// chunk index; the second `take()` trips the claimed-twice assertion.
#[test]
fn nonatomic_cursor_claim_is_caught() {
    let v = find_violation(ModelCfg::cursor(2, 4, 2).with_mutation(Mutation::NonAtomicCursorClaim))
        .expect("a torn cursor claim must be caught");
    println!("torn-claim violation: {v}");
    assert!(
        v.message.contains("claimed twice"),
        "unexpected violation: {v}"
    );
}

/// The explorer is deterministic: identical configs enumerate identical
/// schedule counts (no randomness, no wall-clock or OS-scheduling
/// dependence).
#[test]
fn exploration_is_deterministic() {
    let a = check(ModelCfg::deque(2, 4, 2));
    let b = check(ModelCfg::deque(2, 4, 2));
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.total_ops, b.total_ops);
    let c = check(ModelCfg::cursor(3, 3, 1));
    let d = check(ModelCfg::cursor(3, 3, 1));
    assert_eq!(c.executions, d.executions);
    assert_eq!(c.total_ops, d.total_ops);
}
