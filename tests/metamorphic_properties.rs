//! Metamorphic tests: transformations of an instance with a *known* effect
//! on any correct related-machines scheduler's output. These catch subtle
//! unit mistakes (speed vs time, cost vs duration) that example-based tests
//! miss.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga::core::{Instance, Network, NodeId};
use saga::schedulers::Scheduler;

fn scale_speeds(inst: &Instance, c: f64) -> Instance {
    let speeds: Vec<f64> = inst.network.speeds().iter().map(|s| s * c).collect();
    let n = inst.network.node_count();
    let mut links = vec![0.0; n * n];
    for u in 0..n {
        for v in 0..n {
            let l = inst.network.link(NodeId(u as u32), NodeId(v as u32));
            links[u * n + v] = if l.is_finite() { l * c } else { f64::INFINITY };
        }
    }
    Instance::new(Network::from_matrix(speeds, links), inst.graph.clone())
}

fn scale_costs(inst: &Instance, c: f64) -> Instance {
    let mut out = inst.clone();
    let tasks: Vec<_> = out.graph.tasks().collect();
    for t in tasks {
        let cost = out.graph.cost(t);
        out.graph.set_cost(t, cost * c).unwrap();
    }
    let deps: Vec<_> = out.graph.dependencies().collect();
    for (a, b, w) in deps {
        out.graph.set_dependency_cost(a, b, w * c).unwrap();
    }
    out
}

fn sample_instances() -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(0x3E7A);
    let mut v = Vec::new();
    for gen in ["chains", "in_trees", "blast"] {
        let g = saga::datasets::by_name(gen).unwrap();
        v.push(g.sample(&mut rng));
        v.push(g.sample(&mut rng));
    }
    v
}

#[test]
fn scaling_all_rates_by_c_scales_makespan_by_inverse_c() {
    // s(v) -> c*s(v) and s(u,v) -> c*s(u,v) divides every execution and
    // communication time by c: the schedule structure is unchanged and the
    // makespan divides by c exactly.
    for inst in sample_instances() {
        let scaled = scale_speeds(&inst, 4.0);
        for s in saga::schedulers::benchmark_schedulers() {
            let m1 = s.schedule(&inst).makespan();
            let m2 = s.schedule(&scaled).makespan();
            assert!(
                (m1 / 4.0 - m2).abs() <= 1e-9 * m1.abs().max(1.0),
                "{}: {m1}/4 != {m2}",
                s.name()
            );
        }
    }
}

#[test]
fn scaling_all_costs_by_c_scales_makespan_by_c() {
    for inst in sample_instances() {
        let scaled = scale_costs(&inst, 3.0);
        for s in saga::schedulers::benchmark_schedulers() {
            let m1 = s.schedule(&inst).makespan();
            let m2 = s.schedule(&scaled).makespan();
            assert!(
                (3.0 * m1 - m2).abs() <= 1e-9 * m2.abs().max(1.0),
                "{}: 3*{m1} != {m2}",
                s.name()
            );
        }
    }
}

#[test]
fn adding_an_implied_zero_edge_changes_nothing_feasible() {
    // adding a zero-size dependency between already-ordered tasks cannot
    // invalidate any schedule; schedulers must still produce valid output
    let mut rng = StdRng::seed_from_u64(0xADD);
    let gen = saga::datasets::by_name("chains").unwrap();
    for _ in 0..3 {
        let mut inst = gen.sample(&mut rng);
        // find a transitive pair (a reaches b, no direct edge)
        let mut pair = None;
        'outer: for a in inst.graph.tasks() {
            for b in inst.graph.tasks() {
                if a != b && !inst.graph.has_dependency(a, b) && inst.graph.reaches(a, b) {
                    pair = Some((a, b));
                    break 'outer;
                }
            }
        }
        let added = pair.is_some();
        if let Some((a, b)) = pair {
            inst.graph.add_dependency(a, b, 0.0).unwrap();
        }
        if !added {
            continue;
        }
        for s in saga::schedulers::benchmark_schedulers() {
            let sched = s.schedule(&inst);
            sched
                .verify(&inst)
                .unwrap_or_else(|e| panic!("{} invalid after implied edge: {e}", s.name()));
        }
    }
}

#[test]
fn node_permutation_preserves_makespan_for_serial_baseline() {
    // FastestNode only cares about the max speed, so permuting node order
    // must not change its makespan (catches index/id mixups)
    let mut rng = StdRng::seed_from_u64(0x9E12);
    let gen = saga::datasets::by_name("out_trees").unwrap();
    for _ in 0..3 {
        let inst = gen.sample(&mut rng);
        let n = inst.network.node_count();
        let mut speeds: Vec<f64> = inst.network.speeds().to_vec();
        speeds.rotate_left(1);
        let mut links = vec![0.0; n * n];
        for u in 0..n {
            for v in 0..n {
                let l = inst
                    .network
                    .link(NodeId(((u + 1) % n) as u32), NodeId(((v + 1) % n) as u32));
                links[u * n + v] = l;
            }
        }
        let permuted = Instance::new(Network::from_matrix(speeds, links), inst.graph.clone());
        let a = saga::schedulers::FastestNode.schedule(&inst).makespan();
        let b = saga::schedulers::FastestNode.schedule(&permuted).makespan();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn serial_baseline_is_invariant_to_link_strengths() {
    for inst in sample_instances() {
        let weakened = {
            let n = inst.network.node_count();
            let mut links = vec![0.001; n * n];
            for i in 0..n {
                links[i * n + i] = f64::INFINITY;
            }
            Instance::new(
                Network::from_matrix(inst.network.speeds().to_vec(), links),
                inst.graph.clone(),
            )
        };
        let a = saga::schedulers::FastestNode.schedule(&inst).makespan();
        let b = saga::schedulers::FastestNode.schedule(&weakened).makespan();
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
    }
}
