//! Hand-traced expected schedules on the paper's Fig. 1 instance — pinning
//! the exact numerics of the scheduler implementations (not just validity).
//!
//! Instance: tasks t1(1.7) -> {t2(1.2), t3(2.2)} -> t4(0.8) with dependency
//! sizes 0.6/0.5/1.3/1.6; nodes v1(1.0), v2(1.2), v3(1.5); links
//! v1-v2 = 0.5, v1-v3 = 1.0, v2-v3 = 1.2.

use saga::core::{NodeId, TaskId};
use saga::schedulers::util::fixtures;
use saga::schedulers::Scheduler;

const T1: TaskId = TaskId(0);
const T2: TaskId = TaskId(1);
const T3: TaskId = TaskId(2);
const T4: TaskId = TaskId(3);
const V1: NodeId = NodeId(0);
const V2: NodeId = NodeId(1);
const V3: NodeId = NodeId(2);

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

#[test]
fn heft_fig1_trace() {
    // upward ranks order t1 > t3 > t2 > t4 (avg exec with mean inverse
    // speed 0.83, avg comm with mean inverse link 1.28):
    // t1 -> v3 [0, 1.1333]; t3 -> v3 [1.1333, 2.6]; t2 -> v2 (data at
    // 1.1333 + 0.6/1.2 = 1.6333) [1.6333, 2.6333]; t4 -> v3 (data from t2:
    // 2.6333 + 1.3/1.2 = 3.7167) [3.7167, 4.25].
    let inst = fixtures::fig1();
    let s = saga::schedulers::Heft.schedule(&inst);
    assert_eq!(s.assignment(T1).node, V3);
    assert!(close(s.assignment(T1).finish, 1.7 / 1.5));
    assert_eq!(s.assignment(T3).node, V3);
    assert!(close(s.assignment(T3).start, 1.7 / 1.5));
    assert_eq!(s.assignment(T2).node, V2);
    assert!(close(s.assignment(T2).start, 1.7 / 1.5 + 0.6 / 1.2));
    assert_eq!(s.assignment(T4).node, V3);
    let t2_finish = 1.7 / 1.5 + 0.6 / 1.2 + 1.2 / 1.2;
    assert!(close(s.assignment(T4).start, t2_finish + 1.3 / 1.2));
    assert!(close(s.makespan(), t2_finish + 1.3 / 1.2 + 0.8 / 1.5));
}

#[test]
fn fastest_node_fig1_trace() {
    // serial on v3 in topological order: 5.9 / 1.5
    let inst = fixtures::fig1();
    let s = saga::schedulers::FastestNode.schedule(&inst);
    assert!(close(s.makespan(), (1.7 + 1.2 + 2.2 + 0.8) / 1.5));
    // order on the node is topological: t1 t2 t3 t4
    assert_eq!(s.node_tasks(V3), &[T1, T2, T3, T4]);
}

#[test]
fn met_fig1_equals_fastest_node_makespan() {
    // under related machines MET picks the fastest node for every task, so
    // its makespan equals the serial baseline here
    let inst = fixtures::fig1();
    let met = saga::schedulers::Met.schedule(&inst).makespan();
    let fast = saga::schedulers::FastestNode.schedule(&inst).makespan();
    assert!(close(met, fast));
}

#[test]
fn mct_fig1_trace() {
    // topological order t1..t4, append-only min completion time:
    // t1 -> v3 [0, 1.1333]
    // t2: v1 data 1.1333+0.6 = 1.7333 -> 2.9333; v2 1.6333 -> 2.6333;
    //     v3 append 1.1333 -> 2.1333  => v3
    // t3: v1 1.6333 -> 3.8333; v2 1.55 -> 3.3833; v3 append 2.1333 -> 3.6
    //     => v2
    // t4: v1 max(2.1333+1.3, 3.3833+1.6) = 4.9833 -> 5.7833
    //     v2 max(2.1333+1.3/1.2, 3.3833) = 3.3833 -> 4.05
    //     v3 max(2.1333, 3.3833+1.6/1.2) = 4.7167 -> 5.25  => v2
    let inst = fixtures::fig1();
    let s = saga::schedulers::Mct.schedule(&inst);
    assert_eq!(s.assignment(T1).node, V3);
    assert_eq!(s.assignment(T2).node, V3);
    assert_eq!(s.assignment(T3).node, V2);
    assert_eq!(s.assignment(T4).node, V2);
    assert!(close(s.makespan(), 4.05), "makespan {}", s.makespan());
}

#[test]
fn cpop_fig1_critical_path_trace() {
    // critical path is t1 -> t3 -> t4 (heavier branch); all three must sit
    // on the fastest node v3
    let inst = fixtures::fig1();
    let cp = saga::core::ranking::critical_path(&inst);
    assert!(cp.on_path[T1.index()] && cp.on_path[T3.index()] && cp.on_path[T4.index()]);
    assert!(!cp.on_path[T2.index()]);
    let s = saga::schedulers::Cpop.schedule(&inst);
    for t in [T1, T3, T4] {
        assert_eq!(s.assignment(t).node, V3);
    }
}

#[test]
fn olb_fig1_trace() {
    // OLB: first-idle node, topological order, ties by id:
    // t1 -> v1 [0, 1.7]; t2 -> v2 (idle at 0, data 1.7 + 0.6/0.5 = 2.9)
    // [2.9, 3.9]; t3 -> v3 (idle at 0, data 1.7 + 0.5 = 2.2) [2.2, 3.6667];
    // t4 -> v1 (idle at 1.7; data max(3.9 + 1.3/0.5, 3.6667 + 1.6)) = 6.5
    // [6.5, 7.3]
    let inst = fixtures::fig1();
    let s = saga::schedulers::Olb.schedule(&inst);
    assert_eq!(s.assignment(T1).node, V1);
    assert_eq!(s.assignment(T2).node, V2);
    assert_eq!(s.assignment(T3).node, V3);
    assert_eq!(s.assignment(T4).node, V1);
    assert!(close(s.assignment(T2).start, 1.7 + 0.6 / 0.5));
    assert!(close(s.assignment(T3).start, 1.7 + 0.5));
    assert!(close(s.makespan(), 6.5 + 0.8), "makespan {}", s.makespan());
}

#[test]
fn exact_solvers_bound_every_heuristic_on_fig1() {
    let inst = fixtures::fig1();
    let opt = saga::schedulers::BruteForce::default()
        .schedule(&inst)
        .makespan();
    let bnb = saga::schedulers::BnbSearch::default()
        .schedule(&inst)
        .makespan();
    assert!(bnb <= opt * 1.02 + 1e-9, "BnB {bnb} vs OPT {opt}");
    for s in saga::schedulers::benchmark_schedulers() {
        let m = s.schedule(&inst).makespan();
        assert!(opt <= m + 1e-9, "{} beats the optimum?!", s.name());
    }
    // the optimum on Fig. 1 beats HEFT's 4.25 (HEFT over-parallelizes here)
    assert!(opt < 4.0, "opt {opt}");
}
