//! Property suite for incremental delta-evaluation (PR 5).
//!
//! The annealer's hot path now re-evaluates schedulers through
//! `Scheduler::makespan_incremental`: the kernel refreshes only the cost
//! tables a perturbation's [`DirtyRegion`] names, and supporting schedulers
//! replay the unchanged placement prefix of their recorded previous run.
//! This suite drives the exact protocol the annealing loop uses — perturb →
//! incremental evaluate → undo → incremental evaluate, with the dirty
//! region taken from the perturbation undo records — across *all six*
//! perturbation operators and every benchmark scheduler, asserting each
//! incremental makespan bit-identical to a from-scratch evaluation in a
//! fresh context. Any unsound replay-prefix rule flips bits here long
//! before it could reach the golden fixtures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saga::core::{DirtyRegion, Instance, RunTrace, SchedContext};
use saga::pisa::perturb::{initial_instance, GeneralPerturber, Perturber};
use saga::schedulers::Scheduler;

/// Evaluates every scheduler incrementally (shared pinned tables, per-
/// scheduler traces — exactly how `Pisa::ratio_incremental` drives pairs)
/// and asserts each result bit-identical to a full run in a fresh context.
fn check_all(
    scheds: &[Box<dyn Scheduler>],
    inst: &Instance,
    ctx: &mut SchedContext,
    traces: &mut [RunTrace],
    dirty: &DirtyRegion,
    fresh: &mut SchedContext,
    step: &str,
) {
    ctx.pin_tables_dirty(inst, dirty);
    for (s, trace) in scheds.iter().zip(traces.iter_mut()) {
        let incremental = s.makespan_incremental(inst, ctx, trace, dirty);
        let full = s.makespan_into(inst, fresh);
        assert_eq!(
            incremental.to_bits(),
            full.to_bits(),
            "{} diverged at {step}: incremental {incremental} vs full {full}",
            s.name()
        );
    }
    ctx.unpin_tables();
}

#[test]
fn perturb_evaluate_undo_roundtrips_bit_identically() {
    let scheds = saga::schedulers::benchmark_schedulers();
    let perturber = GeneralPerturber::default();
    for seed in [1u64, 7, 42] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = initial_instance(&mut rng);
        let mut ctx = SchedContext::new();
        let mut fresh = SchedContext::new();
        let mut traces: Vec<RunTrace> = scheds.iter().map(|_| RunTrace::new()).collect();
        // seed the traces exactly like a restart's first evaluation
        check_all(
            &scheds,
            &inst,
            &mut ctx,
            &mut traces,
            &DirtyRegion::full(),
            &mut fresh,
            "initial",
        );
        for iter in 0..150 {
            let undo = perturber
                .perturb_undoable(&mut inst, &mut rng)
                .expect("general perturber always supports undo");
            let dirty = undo.dirty_region();
            check_all(
                &scheds,
                &inst,
                &mut ctx,
                &mut traces,
                &dirty,
                &mut fresh,
                &format!("seed {seed} iter {iter} perturb"),
            );
            if rng.gen_bool(0.5) {
                // rejection path: revert, and the next evaluation's dirty
                // region is the revert's own (the annealer's `pending`)
                undo.revert(&mut inst);
                check_all(
                    &scheds,
                    &inst,
                    &mut ctx,
                    &mut traces,
                    &undo.revert_dirty_region(),
                    &mut fresh,
                    &format!("seed {seed} iter {iter} revert"),
                );
            }
        }
    }
}

#[test]
fn rejection_dirt_accumulates_into_next_evaluation() {
    // the annealer skips the evaluation after a revert and instead folds
    // the revert's dirt into the *next* perturbation's region — drive that
    // exact merge protocol
    let scheds = saga::schedulers::benchmark_schedulers();
    let perturber = GeneralPerturber::default();
    let mut rng = StdRng::seed_from_u64(99);
    let mut inst = initial_instance(&mut rng);
    let mut ctx = SchedContext::new();
    let mut fresh = SchedContext::new();
    let mut traces: Vec<RunTrace> = scheds.iter().map(|_| RunTrace::new()).collect();
    check_all(
        &scheds,
        &inst,
        &mut ctx,
        &mut traces,
        &DirtyRegion::full(),
        &mut fresh,
        "initial",
    );
    let mut pending = DirtyRegion::clean();
    for iter in 0..200 {
        let undo = perturber
            .perturb_undoable(&mut inst, &mut rng)
            .expect("undoable");
        let mut dirty = undo.dirty_region();
        dirty.merge(&pending);
        check_all(
            &scheds,
            &inst,
            &mut ctx,
            &mut traces,
            &dirty,
            &mut fresh,
            &format!("iter {iter}"),
        );
        if rng.gen_bool(0.4) {
            undo.revert(&mut inst);
            pending = undo.revert_dirty_region();
        } else {
            pending = DirtyRegion::clean();
        }
    }
}

#[test]
fn incremental_schedules_materialize_identically() {
    // the metric-objective cells need full Schedules, not just makespans:
    // compare every assignment of the incremental materialization against
    // the from-scratch one
    let scheds = saga::schedulers::benchmark_schedulers();
    let perturber = GeneralPerturber::default();
    let mut rng = StdRng::seed_from_u64(5);
    let mut inst = initial_instance(&mut rng);
    let mut ctx = SchedContext::new();
    let mut fresh = SchedContext::new();
    let mut traces: Vec<RunTrace> = scheds.iter().map(|_| RunTrace::new()).collect();
    let mut dirty = DirtyRegion::full();
    for _ in 0..60 {
        ctx.pin_tables_dirty(&inst, &dirty);
        for (s, trace) in scheds.iter().zip(traces.iter_mut()) {
            let a = s.schedule_incremental_into(&inst, &mut ctx, trace, &dirty);
            let b = s.schedule_into(&inst, &mut fresh);
            assert_eq!(
                a.makespan().to_bits(),
                b.makespan().to_bits(),
                "{} makespan",
                s.name()
            );
            for t in inst.graph.tasks() {
                let (x, y) = (a.assignment(t), b.assignment(t));
                assert_eq!(x.node, y.node, "{} node of {t}", s.name());
                assert_eq!(
                    x.start.to_bits(),
                    y.start.to_bits(),
                    "{} start of {t}",
                    s.name()
                );
                assert_eq!(
                    x.finish.to_bits(),
                    y.finish.to_bits(),
                    "{} finish of {t}",
                    s.name()
                );
            }
        }
        ctx.unpin_tables();
        let undo = perturber
            .perturb_undoable(&mut inst, &mut rng)
            .expect("undoable");
        dirty = undo.dirty_region();
    }
}
