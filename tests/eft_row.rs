//! Property suite for the fused EFT row kernels (PR 8).
//!
//! Every scheduler hot loop now answers "what is `t`'s (start, finish) on
//! each node?" through [`SchedContext::eft_row_into`] (or its append-only
//! fast variant) plus the lowest-index argmin helpers, instead of one
//! `ctx.eft` query per node. The contract is bitwise: on any reachable
//! partial state, the fused row must reproduce the per-node queries bit for
//! bit, and the argmin helpers must pick exactly the node the Option-based
//! comparator loops picked — including insertion-policy gap cells, interior
//! idle gaps, and zero-duration boundary tasks whose finish precedes the
//! node's max finish.
//!
//! Half-placed states are generated from the schedulers themselves: each
//! roster scheduler's final schedule is replayed for the first half of the
//! topological order, so the probed timelines carry that scheduler's real
//! placement style (HEFT/CPoP leave insertion gaps, load balancers leave
//! ragged tails, MET leaves pile-ups). Any divergence flips bits here long
//! before it could reach the golden fixtures; CI additionally re-runs the
//! golden suites under `SAGA_NO_EFT_ROW=1` to pin the scalar path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saga::core::{Instance, Network, NodeId, SchedContext, TaskGraph, TaskId};
use saga::schedulers::Scheduler;

/// A seeded random DAG like the shared fixture, but with a fraction of
/// zero-cost tasks and zero-cost messages — the boundary shapes whose slots
/// can finish before their neighbours and whose messages arrive everywhere
/// at once.
fn random_instance_with_zeros(seed: u64, tasks: usize, nodes: usize, p_edge: f64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::with_capacity(tasks);
    let ids: Vec<_> = (0..tasks)
        .map(|i| {
            let cost = if rng.gen_bool(0.2) {
                0.0
            } else {
                rng.gen_range(0.01..=1.0)
            };
            g.add_task(format!("t{i}"), cost)
        })
        .collect();
    for i in 0..tasks {
        for j in (i + 1)..tasks {
            if rng.gen_bool(p_edge) {
                let cost = if rng.gen_bool(0.25) {
                    0.0
                } else {
                    rng.gen_range(0.01..=1.0)
                };
                g.add_dependency(ids[i], ids[j], cost).unwrap();
            }
        }
    }
    let speeds: Vec<f64> = (0..nodes).map(|_| rng.gen_range(0.1..=1.0)).collect();
    let mut n = Network::complete(&speeds, 1.0);
    for u in 0..nodes {
        for v in (u + 1)..nodes {
            n.set_link(NodeId(u as u32), NodeId(v as u32), rng.gen_range(0.1..=1.0));
        }
    }
    Instance::new(n, g)
}

/// Replays the first `frac`-th of `sched`'s placements (in topological
/// order, so predecessors always precede successors) into a fresh context.
fn half_placed(inst: &Instance, sched: &dyn Scheduler, num: usize, den: usize) -> SchedContext {
    let s = sched.schedule(inst);
    let mut ctx = SchedContext::new();
    ctx.reset(inst);
    let order: Vec<TaskId> = ctx.topo_order().to_vec();
    for &t in order.iter().take(order.len() * num / den) {
        let a = s.assignment(t);
        ctx.place(t, a.node, a.start);
    }
    ctx
}

/// Asserts the fused row and argmin helpers bit-identical to the per-node
/// queries and comparator loops for every ready task of `ctx`.
fn check_rows(ctx: &SchedContext, label: &str) {
    let nv = ctx.node_count();
    let mut starts = vec![0.0f64; nv];
    let mut finishes = vec![0.0f64; nv];
    for &t in ctx.ready() {
        for insertion in [false, true] {
            ctx.eft_row_into(t, &mut starts, &mut finishes, insertion);
            // the row vs the per-node queries, element by element
            let mut exp_eft: Option<(NodeId, f64, f64)> = None;
            let mut exp_est: Option<(NodeId, f64, f64)> = None;
            for v in ctx.nodes() {
                let (es, ef) = ctx.eft(t, v, insertion);
                assert_eq!(
                    starts[v.index()].to_bits(),
                    es.to_bits(),
                    "{label}: start({t}, {v}, insertion={insertion}) diverged: \
                     row {} vs query {es}",
                    starts[v.index()],
                );
                assert_eq!(
                    finishes[v.index()].to_bits(),
                    ef.to_bits(),
                    "{label}: finish({t}, {v}, insertion={insertion}) diverged: \
                     row {} vs query {ef}",
                    finishes[v.index()],
                );
                let take_eft = match exp_eft {
                    None => true,
                    Some((_, _, bf)) => ef < bf,
                };
                if take_eft {
                    exp_eft = Some((v, es, ef));
                }
                let take_est = match exp_est {
                    None => true,
                    Some((_, bs, bf)) => es < bs || (es == bs && ef < bf),
                };
                if take_est {
                    exp_est = Some((v, es, ef));
                }
            }
            // the argmin helpers vs the Option-based comparator loops
            let (ev, _, _) = exp_eft.unwrap();
            assert_eq!(
                saga::core::argmin_finish(&finishes),
                ev,
                "{label}: argmin_finish({t}, insertion={insertion}) diverged"
            );
            let (sv, _, _) = exp_est.unwrap();
            assert_eq!(
                saga::core::argmin_start_finish(&starts, &finishes),
                sv,
                "{label}: argmin_start_finish({t}, insertion={insertion}) diverged"
            );
        }
    }
}

#[test]
fn fused_rows_match_per_node_queries_on_scheduler_states() {
    let scheds = saga::schedulers::benchmark_schedulers();
    for seed in [3u64, 17, 88] {
        // 3–6 nodes exercise the narrow regime (scalar comparator loops by
        // default); 10 nodes crosses the `WIDE_NODES` band so the scheduler
        // replays drive the fused dispatch in the selection helpers too
        for (tasks, nodes) in [(12usize, 3usize), (24, 4), (40, 6), (36, 10)] {
            let inst = random_instance_with_zeros(seed, tasks, nodes, 0.2);
            for s in &scheds {
                // quarter-, half- and three-quarter-placed states: early
                // frontiers are wide, late ones probe long timelines
                for (num, den) in [(1usize, 4usize), (1, 2), (3, 4)] {
                    let ctx = half_placed(&inst, s.as_ref(), num, den);
                    check_rows(
                        &ctx,
                        &format!("{} seed {seed} {tasks}t/{nodes}v {num}/{den}", s.name()),
                    );
                }
            }
        }
    }
}

#[test]
fn fused_rows_match_on_boundary_shapes() {
    // a hand-built state with a zero-duration task sitting at the tail of a
    // timeline while finishing before the slot beneath it: the insertion
    // gate must key on the max finish, not the tail finish
    let mut g = TaskGraph::new();
    let a = g.add_task("a", 1.0);
    let z = g.add_task("z", 0.0);
    let _b = g.add_task("b", 2.0);
    let c = g.add_task("c", 0.5);
    g.add_dependency(a, c, 0.2).unwrap();
    g.add_dependency(z, c, 0.0).unwrap();
    let inst = Instance::new(Network::complete(&[1.0, 0.5], 1.0), g);
    let mut ctx = SchedContext::new();
    ctx.reset(&inst);
    ctx.place(a, NodeId(0), 2.0); // occupies [2, 3]
    ctx.place(z, NodeId(0), 2.0); // zero-duration boundary slot at [2, 2],
                                  // sorted after `a`: the tail finish (2.0)
                                  // is *smaller* than the max finish (3.0)
    assert_eq!(ctx.append_tails(), &[2.0, 0.0]);
    // b and c are both ready (c's predecessors are placed); b can slide
    // into node 0's leading idle gap [0, 2), c cannot start before its data
    check_rows(&ctx, "boundary");

    // an empty state: every timeline empty, tails all zero
    let mut fresh = SchedContext::new();
    fresh.reset(&inst);
    check_rows(&fresh, "empty");
}
