//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`any`], [`ProptestConfig`], and the [`proptest!`]
//! macro with `prop_assert!`/`prop_assert_eq!`. Each test runs its body
//! over `cases` freshly sampled inputs from a deterministic seed
//! (overridable via the `PROPTEST_SEED` environment variable). Failing
//! cases panic with the sampled inputs' debug representation; there is no
//! shrinking.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod test_runner;

pub use test_runner::ProptestConfig;

/// The glob import every proptest suite starts with.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, resampling until `f` accepts one.
    ///
    /// # Panics
    /// Panics after 1000 consecutive rejections.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy producing one fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for a type, `any::<bool>()` style.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// A full-range strategy for one primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_primitive {
    ($($t:ty => $body:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            #[allow(clippy::redundant_closure_call)]
            fn sample(&self, rng: &mut StdRng) -> $t {
                ($body)(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_primitive!(
    bool => |rng: &mut StdRng| rng.gen::<bool>(),
    u8 => |rng: &mut StdRng| rng.gen::<u8>(),
    u16 => |rng: &mut StdRng| rng.gen::<u16>(),
    u32 => |rng: &mut StdRng| rng.gen::<u32>(),
    u64 => |rng: &mut StdRng| rng.gen::<u64>(),
    usize => |rng: &mut StdRng| rng.gen::<usize>(),
    i32 => |rng: &mut StdRng| rng.gen::<i32>(),
    i64 => |rng: &mut StdRng| rng.gen::<i64>(),
    f64 => |rng: &mut StdRng| rng.gen::<f64>(),
    f32 => |rng: &mut StdRng| rng.gen::<f32>(),
);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

/// Asserts inside a [`proptest!`] body; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream form
/// `proptest! { #![proptest_config(expr)] #[test] fn name(arg in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::seeded_rng();
                for case in 0..config.cases {
                    let inputs = ( $( $crate::Strategy::sample(&($strat), &mut rng), )+ );
                    let case_debug = format!("{inputs:?}");
                    let ( $($arg,)+ ) = inputs;
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {case}/{} failed for inputs: {case_debug}",
                            config.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = crate::test_runner::seeded_rng();
        let s = (1usize..=4, 0.0f64..2.0).prop_map(|(n, x)| vec![x; n]);
        for _ in 0..100 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..2.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(a in 0usize..10, b in 5i64..6, flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert_ne!(flag, !flag);
        }
    }

    proptest! {
        #[test]
        fn macro_works_without_config(x in 0.0f64..=1.0) {
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }
}
