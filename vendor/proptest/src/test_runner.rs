//! Test-runner configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs over.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic per-test RNG. Set `PROPTEST_SEED=<u64>` to explore a
/// different stream.
pub fn seeded_rng() -> StdRng {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5A6A_5EED);
    StdRng::seed_from_u64(seed)
}
