//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Anything accepted as the size argument of [`vec`]: a fixed length or a
/// length range.
pub trait SizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// A strategy generating `Vec`s of values drawn from `element`.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`: vectors whose elements come
/// from `element` and whose length comes from `size`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, len: size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = crate::test_runner::seeded_rng();
        let fixed = vec(0.0f64..1.0, 8usize);
        assert_eq!(fixed.sample(&mut rng).len(), 8);
        let ranged = vec(0usize..5, 0..12usize);
        for _ in 0..50 {
            assert!(ranged.sample(&mut rng).len() < 12);
        }
    }
}
