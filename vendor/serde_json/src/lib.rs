//! Offline stand-in for `serde_json`, layered on the vendored `serde`
//! value tree: [`to_string`], [`to_string_pretty`], [`from_str`], and a
//! re-exported [`Value`].

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// A JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0).expect("formatting a String cannot fail");
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) -> fmt::Result {
    use fmt::Write as _;
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1)?;
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
            Ok(())
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                serde::write_escaped(out, k)?;
                out.push_str(": ");
                write_pretty(out, val, indent + 1)?;
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
            Ok(())
        }
        other => write!(out, "{other}"),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("non-UTF8 number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new(
                                        "high surrogate not followed by low surrogate",
                                    ));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                // multi-byte UTF-8: copy the full character
                c if c >= 0x80 => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("non-empty by construction");
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
                c => out.push(c as char),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_compact_output() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("π ≈ 3".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(-2.5e-3)]),
            ),
            ("none".into(), Value::Null),
            ("flag".into(), Value::Bool(false)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![(
            "deps".into(),
            Value::Array(vec![Value::Array(vec![
                Value::Number(0.0),
                Value::Number(1.0),
                Value::Number(0.125),
            ])]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_shortest_repr_round_trips_exactly() {
        for x in [0.1, 1.0 / 3.0, 2.0_f64.powi(-40), 1.7976931348623157e308] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn surrogate_escapes() {
        // valid escaped pair decodes to U+1F600
        let v: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "\u{1F600}");
        // raw multi-byte characters pass through unescaped
        let v: String = from_str("\"\u{1F600}\"").unwrap();
        assert_eq!(v, "\u{1F600}");
        // high surrogate followed by a non-surrogate escape must error
        // (regression: `lo - 0xDC00` used to underflow), and a high
        // surrogate followed by a plain character must error too
        assert!(from_str::<String>("\"\\ud800\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ud800A\"").is_err());
        // lone low surrogate is not a valid code point
        assert!(from_str::<String>("\"\\udc00\"").is_err());
    }
}
