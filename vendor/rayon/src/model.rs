//! Loom model of the work-stealing runtime's claim/steal/terminate
//! protocol.
//!
//! This module re-expresses the concurrency skeleton of
//! `parallel_map_init_deque` and `parallel_map_init_cursor` (see
//! `lib.rs`) against the vendored [`loom`] shims, so
//! `tests/deque_model.rs` can *exhaustively* check every bounded
//! interleaving of 2–3 workers for lost items, double-claims,
//! non-termination, and torn stats publication — on a container whose
//! single CPU never produces interesting interleavings at runtime.
//!
//! What is modeled (and what is not): items are index ranges, not real
//! work; per-worker output vectors are dropped (they are thread-local in
//! the real code); panic-safety of `op` is exercised by the real tests,
//! not here. Everything that crosses threads is modeled faithfully:
//! per-worker `Mutex` deques with front-pop/front-split/back-steal, the
//! `remaining` termination counter with its RAII decrement guard, the
//! acquire spin-exit, the shared claim cursor of the legacy queue, and
//! the plain-memory stats cells whose visibility the termination
//! protocol must order (modeled with [`loom::cell::RaceArray`], which
//! reports any access not ordered by happens-before).
//!
//! [`Mutation`] deliberately re-introduces each bug class the protocol
//! must exclude; the test suite asserts that the checker catches every
//! one. In particular [`Mutation::RelaxedDecrement`] restores the exact
//! bug this PR fixed in `CountChunk::drop` — a `Relaxed` decrement that
//! the `Acquire` spin-load never synchronizes with — and the checker
//! reports it as a data race on the stats cells.

use loom::cell::RaceArray;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Mutex;
use std::collections::VecDeque;

/// Which queue protocol to model (mirrors `RAYON_QUEUE`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Queue {
    /// Per-worker deques with lazy front-split and back-steal (default).
    Deque,
    /// Legacy shared-cursor chunk queue (`RAYON_QUEUE=cursor`).
    Cursor,
}

/// A deliberately re-introduced protocol bug, for mutation tests that
/// prove the checker actually catches the bug classes it claims to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Faithful protocol — every bounded interleaving must pass.
    None,
    /// Deque: decrement the termination counter with `Relaxed` instead of
    /// `Release` (the pre-fix `CountChunk::drop` bug). Caught as a data
    /// race: the acquire spin-exit no longer orders the exiting reader
    /// after the finishing workers' plain-memory writes.
    RelaxedDecrement,
    /// Deque: drop the split-off tail instead of pushing it back. Caught
    /// as non-termination: `remaining` never reaches zero, so the spin
    /// loops exhaust the operation budget.
    LoseSplitTail,
    /// Deque: process a claimed chunk twice. Caught by the per-item
    /// claim count assertion.
    DoubleProcess,
    /// Cursor: claim with a non-atomic load+store instead of
    /// `fetch_add`. Caught by the chunk-claimed-twice assertion.
    NonAtomicCursorClaim,
}

/// Model configuration: protocol, bounded sizes, and seeded mutation.
#[derive(Clone, Copy, Debug)]
pub struct ModelCfg {
    /// Queue protocol under test.
    pub queue: Queue,
    /// Worker (model thread) count; keep at 2–3.
    pub workers: usize,
    /// Total items, distributed like the real runtime distributes them.
    pub items: usize,
    /// Chunk length for splits / pre-chunking.
    pub chunk_len: usize,
    /// Seeded bug, or [`Mutation::None`] for the faithful protocol.
    pub mutation: Mutation,
    /// Preemption budget for the explorer.
    pub max_preemptions: usize,
}

impl ModelCfg {
    /// Deque-protocol configuration with the default preemption budget.
    pub fn deque(workers: usize, items: usize, chunk_len: usize) -> Self {
        ModelCfg {
            queue: Queue::Deque,
            workers,
            items,
            chunk_len,
            mutation: Mutation::None,
            max_preemptions: 2,
        }
    }

    /// Cursor-protocol configuration with the default preemption budget.
    pub fn cursor(workers: usize, items: usize, chunk_len: usize) -> Self {
        ModelCfg {
            queue: Queue::Cursor,
            ..Self::deque(workers, items, chunk_len)
        }
    }

    /// Same configuration with a seeded mutation.
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// Same configuration with a different preemption budget.
    pub fn with_preemptions(mut self, n: usize) -> Self {
        self.max_preemptions = n;
        self
    }
}

/// Model twin of `CountChunk`: RAII decrement of the shared
/// remaining-items counter. The ordering is a parameter so
/// [`Mutation::RelaxedDecrement`] can restore the pre-fix bug; the
/// faithful protocol uses `Release`, matching `CountChunk::drop`.
struct CountGuard<'a> {
    remaining: &'a AtomicUsize,
    n: usize,
    order: Ordering,
}

impl Drop for CountGuard<'_> {
    fn drop(&mut self) {
        self.remaining.fetch_sub(self.n, self.order);
    }
}

/// Exhaustively check every bounded interleaving of the configured
/// protocol; panics with the failing schedule on a violation.
pub fn check(cfg: ModelCfg) -> loom::Report {
    match explore(cfg) {
        Ok(report) => report,
        Err(v) => panic!("deque model violation ({cfg:?}): {v}"),
    }
}

/// Like [`check`] but returns the first violation as a value, so mutation
/// tests can assert a seeded bug *is* caught.
pub fn find_violation(cfg: ModelCfg) -> Option<loom::Violation> {
    explore(cfg).err()
}

fn explore(cfg: ModelCfg) -> Result<loom::Report, loom::Violation> {
    loom::Builder::new()
        .max_preemptions(cfg.max_preemptions)
        .explore(move || match cfg.queue {
            Queue::Deque => run_deque(cfg),
            Queue::Cursor => run_cursor(cfg),
        })
}

/// One execution of the deque protocol under the loom scheduler.
fn run_deque(cfg: ModelCfg) {
    let workers = cfg.workers;
    let items = cfg.items;
    // Same seeding as the real runtime: one contiguous near-equal segment
    // per worker, pushed as a single task.
    let mut deques: Vec<Mutex<VecDeque<(usize, usize)>>> = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let n = items / workers + usize::from(w < items % workers);
        let mut dq = VecDeque::new();
        if n > 0 {
            dq.push_back((start, n));
        }
        deques.push(Mutex::new(dq));
        start += n;
    }
    let remaining = AtomicUsize::new(items);
    // Plain-memory cells: per-item claim counts and per-worker processed
    // totals (the model twin of `RunStats::items`). Their visibility to
    // the termination path is exactly what the Release decrement orders.
    let processed = RaceArray::new(items, 0usize);
    let stats = RaceArray::new(workers, 0usize);
    let dec_order = if cfg.mutation == Mutation::RelaxedDecrement {
        Ordering::Relaxed
    } else {
        Ordering::Release
    };

    loom::thread::scope(|s| {
        for w in 0..workers {
            let deques = &deques;
            let remaining = &remaining;
            let processed = &processed;
            let stats = &stats;
            s.spawn(move || {
                loop {
                    // 1. local pop (front)
                    let mut task = deques[w].lock().pop_front();
                    // 2. steal scan: back of the first non-empty victim
                    if task.is_none() {
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            let stolen = deques[victim].lock().pop_back();
                            if stolen.is_some() {
                                task = stolen;
                                break;
                            }
                        }
                    }
                    let Some((start, len)) = task else {
                        // 3. nothing visible: exit iff nothing in flight
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        loom::thread::yield_now();
                        continue;
                    };
                    // 4. lazy split: keep one chunk, push the tail back
                    let run_len = if len > cfg.chunk_len {
                        if cfg.mutation != Mutation::LoseSplitTail {
                            deques[w]
                                .lock()
                                .push_front((start + cfg.chunk_len, len - cfg.chunk_len));
                        }
                        cfg.chunk_len
                    } else {
                        len
                    };
                    let guard = CountGuard {
                        remaining,
                        n: run_len,
                        order: dec_order,
                    };
                    let passes = if cfg.mutation == Mutation::DoubleProcess {
                        2
                    } else {
                        1
                    };
                    for _ in 0..passes {
                        for i in start..start + run_len {
                            let prev = processed.update(i, |c| c + 1);
                            assert_eq!(prev, 0, "item {i} processed twice");
                        }
                    }
                    stats.update(w, |c| c + run_len);
                    drop(guard);
                }
                // Termination-side verification: a worker that observed
                // `remaining == 0` must be ordered after every sibling's
                // item and stats writes — this read is a data race unless
                // the RAII decrement releases.
                let counts = processed.read_all();
                assert!(
                    counts.iter().all(|&c| c == 1),
                    "lost or duplicated items at exit: {counts:?}"
                );
                let per_worker = stats.read_all();
                let total: usize = per_worker.iter().sum();
                assert_eq!(total, items, "torn run stats at exit: {per_worker:?}");
            });
        }
    });
    // Post-join verification (join itself establishes happens-before).
    let counts = processed.read_all();
    assert!(
        counts.iter().all(|&c| c == 1),
        "lost or duplicated items after join: {counts:?}"
    );
}

/// One execution of the legacy cursor protocol under the loom scheduler.
fn run_cursor(cfg: ModelCfg) {
    let items = cfg.items;
    // Same pre-chunking as the real runtime: fixed chunks behind
    // `Mutex<Option<..>>`, claimed by index from a shared cursor.
    let mut chunks: Vec<Mutex<Option<(usize, usize)>>> = Vec::new();
    let mut at = 0usize;
    while at < items {
        let len = cfg.chunk_len.min(items - at);
        chunks.push(Mutex::new(Some((at, len))));
        at += len;
    }
    let nchunks = chunks.len();
    let cursor = AtomicUsize::new(0);
    let processed = RaceArray::new(items, 0usize);
    // Model twin of the shared output-slot table: one completion mark per
    // chunk, written under a global mutex like the real `slots`.
    let slots = Mutex::new(vec![false; nchunks]);

    loom::thread::scope(|s| {
        for _w in 0..cfg.workers {
            let chunks = &chunks;
            let cursor = &cursor;
            let processed = &processed;
            let slots = &slots;
            let mutation = cfg.mutation;
            s.spawn(move || loop {
                let idx = if mutation == Mutation::NonAtomicCursorClaim {
                    // Seeded bug: a torn claim (load + store) lets two
                    // workers claim the same chunk index.
                    let i = cursor.load(Ordering::Relaxed);
                    cursor.store(i + 1, Ordering::Relaxed);
                    i
                } else {
                    cursor.fetch_add(1, Ordering::Relaxed)
                };
                if idx >= nchunks {
                    break;
                }
                let taken = chunks[idx].lock().take();
                let (start, len) = taken.expect("chunk claimed twice");
                for i in start..start + len {
                    let prev = processed.update(i, |c| c + 1);
                    assert_eq!(prev, 0, "item {i} processed twice");
                }
                slots.lock()[idx] = true;
            });
        }
    });
    let counts = processed.read_all();
    assert!(
        counts.iter().all(|&c| c == 1),
        "lost or duplicated items after join: {counts:?}"
    );
    let done = slots.lock();
    assert!(
        done.iter().all(|&d| d),
        "worker exited without completing every claimed chunk"
    );
}
