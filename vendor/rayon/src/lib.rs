//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access, so this crate maps rayon's
//! parallel-iterator entry points onto ordinary sequential `std` iterators:
//! `par_iter`, `par_iter_mut`, and `into_par_iter` return the matching
//! sequential iterator, and every adaptor (`map`, `filter`, `collect`, …)
//! is then just the `std::iter::Iterator` method of the same name. Results
//! are identical to a rayon run — the workspace's parallel regions are
//! pure fan-out/fan-in — only wall-clock parallelism is lost. Swapping the
//! real rayon back in is a one-line manifest change.

#![warn(missing_docs)]

/// Everything call sites need: the three `*par_iter*` entry-point traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Owned conversion into a (sequential stand-in for a) parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item;
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// `rayon::IntoParallelIterator::into_par_iter`, sequentially.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Borrowing conversion, `collection.par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a reference).
    type Item: 'data;
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// `rayon::IntoParallelRefIterator::par_iter`, sequentially.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mutably borrowing conversion, `collection.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type (a mutable reference).
    type Item: 'data;
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// `rayon::IntoParallelRefMutIterator::par_iter_mut`, sequentially.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = xs.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut xs = vec![1, 2, 3];
        xs.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(xs, vec![11, 12, 13]);
    }
}
