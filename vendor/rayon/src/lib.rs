//! Offline stand-in for `rayon`, with real OS-thread parallelism.
//!
//! The build environment has no network access, so this crate implements the
//! small slice of rayon's API the workspace uses — `par_iter`,
//! `par_iter_mut`, `into_par_iter`, then `map`/`collect`, `for_each` and
//! `sum` — on top of `std::thread::scope`. Work is split into one contiguous
//! chunk per worker, each chunk is mapped on its own thread, and the chunk
//! results are concatenated in input order, so `par_iter().map(f).collect()`
//! returns exactly what the sequential pipeline would (rayon's ordering
//! guarantee).
//!
//! Thread count: `RAYON_NUM_THREADS` if set (rayon's own env knob),
//! otherwise `std::thread::available_parallelism()`. A count of 1 — or a
//! single-item input — short-circuits to a plain sequential loop with no
//! thread spawned. Worker panics propagate to the caller, as in rayon.
//!
//! Swapping the real rayon back in remains a one-line manifest change.

#![warn(missing_docs)]

/// Everything call sites need: the three `*par_iter*` entry-point traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// The number of worker threads to fan out across: `RAYON_NUM_THREADS` or
/// the machine's available parallelism.
fn num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Maps `items` through `f` on up to `threads` scoped OS threads, preserving
/// input order in the output.
fn parallel_map_with<T, R, F>(items: Vec<T>, f: &F, threads: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let threads = threads.min(len);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // one contiguous chunk per worker: order is restored by concatenating
    // chunk outputs in chunk order
    let chunk_len = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut out: Vec<R> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// A (stand-in for a) parallel iterator over an eagerly gathered item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// `rayon`'s `map`: lazy, runs when the pipeline is consumed.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// `rayon`'s `for_each`, fanned out across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_with(self.items, &|x| f(x), num_threads());
    }

    /// `rayon`'s `sum` (commutative reductions need no ordering).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Number of items behind the iterator.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`]: consumed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Executes the map across threads and collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_with(self.items, &self.f, num_threads())
            .into_iter()
            .collect()
    }
}

/// Owned conversion into a (stand-in for a) parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// `rayon::IntoParallelIterator::into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Borrowing conversion, `collection.par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a reference).
    type Item: Send + 'data;
    /// `rayon::IntoParallelRefIterator::par_iter`.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send,
{
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Mutably borrowing conversion, `collection.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type (a mutable reference).
    type Item: Send + 'data;
    /// `rayon::IntoParallelRefMutIterator::par_iter_mut`.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
    <&'data mut C as IntoIterator>::Item: Send,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::thread::ThreadId;

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = xs.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut xs = vec![1, 2, 3];
        xs.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(xs, vec![11, 12, 13]);
    }

    #[test]
    fn map_collect_preserves_input_order() {
        // per-item sleeps skewed so later chunks finish *before* earlier
        // ones; order must still come out right
        let xs: Vec<usize> = (0..64).collect();
        let ys: Vec<usize> = xs
            .par_iter()
            .map(|&i| {
                if i < 8 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i * 3
            })
            .collect();
        assert_eq!(ys, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    /// The workload the acceptance criterion names: `par_iter().map()`
    /// `.collect()` must demonstrably run on multiple OS threads while
    /// preserving order. Forced to 4 workers so the assertion holds on any
    /// machine; the public path sizes itself from the environment.
    #[test]
    fn map_runs_on_multiple_os_threads_in_order() {
        let xs: Vec<usize> = (0..128).collect();
        let tagged: Vec<(usize, ThreadId)> = parallel_map_with(
            xs,
            &|i| {
                // give every worker a moment to exist concurrently
                std::thread::sleep(std::time::Duration::from_micros(200));
                (i, std::thread::current().id())
            },
            4,
        );
        let ids: HashSet<ThreadId> = tagged.iter().map(|&(_, id)| id).collect();
        assert!(
            ids.len() > 1,
            "expected work on >1 distinct OS threads, saw {}",
            ids.len()
        );
        let order: Vec<usize> = tagged.iter().map(|&(i, _)| i).collect();
        assert_eq!(order, (0..128).collect::<Vec<_>>(), "ordering broken");
    }

    #[test]
    fn public_path_uses_multiple_threads_on_multicore_hosts() {
        // under a 4+-core environment (or RAYON_NUM_THREADS >= 4) the public
        // entry point itself must fan out; on smaller hosts it legitimately
        // runs sequentially and this test only checks correctness
        let xs: Vec<usize> = (0..256).collect();
        let ids: Vec<ThreadId> = xs
            .par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_micros(100));
                std::thread::current().id()
            })
            .collect();
        let distinct: HashSet<ThreadId> = ids.iter().copied().collect();
        if num_threads() >= 4 {
            assert!(distinct.len() > 1, "multicore host but no fan-out");
        } else {
            assert!(!distinct.is_empty());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let xs: Vec<usize> = (0..32).collect();
            let _: Vec<usize> = parallel_map_with(
                xs,
                &|i| {
                    if i == 17 {
                        panic!("boom");
                    }
                    i
                },
                4,
            );
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }
}
