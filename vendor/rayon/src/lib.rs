//! Offline stand-in for `rayon`, with real OS-thread parallelism.
//!
//! The build environment has no network access, so this crate implements the
//! small slice of rayon's API the workspace uses — `par_iter`,
//! `par_iter_mut`, `into_par_iter`, then `map`/`map_init`/`collect`,
//! `for_each` and `sum`, plus `with_min_len` — on top of
//! `std::thread::scope`.
//!
//! Scheduling uses *work-stealing deques*, like real rayon: the input is
//! split once into one contiguous segment per worker, each worker keeps its
//! segment in its own deque, and splits chunks off **lazily** as it
//! processes them (no up-front per-chunk materialization, no lock per
//! chunk — one short-lived lock per *deque* operation). A worker whose own
//! deque runs dry steals the oldest pending piece from a sibling's deque,
//! so a worker stuck on a skewed, expensive chunk keeps only the chunk in
//! its hands while its peers carve up and drain everything it had queued —
//! the shared-cursor chunk queue this replaces kept balance but paid a
//! pre-split `Mutex<Option<Vec<T>>>` slot per chunk and a lock round-trip
//! per claim.
//!
//! Every processed piece is tagged with its global start index and results
//! are reassembled by start order, so `par_iter().map(f).collect()` returns
//! exactly what the sequential pipeline would (rayon's ordering guarantee),
//! independent of thread count, of which worker ran which piece, and of how
//! stealing happened to split the segments.
//!
//! `with_min_len(n)` bounds splitting from below (rayon's own knob): pieces
//! are never smaller than `n` items, for workloads where per-chunk overhead
//! matters more than balance.
//!
//! `map_init(init, op)` matches rayon's API: `init` runs once per worker
//! (rayon: once per split) and the resulting state is threaded through every
//! item that worker maps — the cheap way to give each worker a reusable
//! scratch arena (e.g. one `SchedContext` per thread).
//!
//! Thread count: `RAYON_NUM_THREADS` if set (rayon's own env knob),
//! otherwise `std::thread::available_parallelism()`. A count of 1 — or a
//! single-chunk input — short-circuits to a plain sequential loop with no
//! thread spawned. Worker panics propagate to the caller, as in rayon.
//!
//! Observability: each parallel run records per-worker claim/steal/item
//! counters ([`RunStats`], retrievable once via [`take_last_run_stats`]) so
//! drivers can print imbalance summaries. `RAYON_QUEUE=cursor` selects the
//! legacy shared-cursor chunk queue (kept verbatim as an in-tree A/B
//! baseline and escape hatch); both schedulers produce byte-identical
//! output by construction.
//!
//! Swapping the real rayon back in remains a one-line manifest change.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything call sites need: the three `*par_iter*` entry-point traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

pub mod model;

/// The number of worker threads to fan out across: `RAYON_NUM_THREADS` or
/// the machine's available parallelism.
fn num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Whether the legacy shared-cursor chunk queue should run instead of the
/// work-stealing deques (`RAYON_QUEUE=cursor`). Read per call, like
/// `RAYON_NUM_THREADS`, so benchmarks can A/B the two schedulers inside one
/// process. Any other value — or unset — selects the deques.
fn use_cursor_queue() -> bool {
    std::env::var("RAYON_QUEUE").is_ok_and(|v| v == "cursor")
}

/// How many chunks to aim for per worker. Oversubscription is what lets
/// stealing absorb skew: with `k` pieces in flight per worker, one
/// straggler piece costs at most `~1/k` of the ideal span extra.
const CHUNKS_PER_THREAD: usize = 8;

/// The chunk length used for `len` items across `threads` workers with a
/// caller-imposed lower bound (`min_len`, 0 = unset).
fn chunk_len_for(len: usize, threads: usize, min_len: usize) -> usize {
    let target = len.div_ceil(threads.max(1) * CHUNKS_PER_THREAD);
    target.max(min_len).max(1)
}

/// Per-worker counters from one parallel run, for imbalance diagnostics.
/// Index `w` is worker `w`'s row; the sequential short-circuit reports one
/// worker with zero steals.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Chunks a worker claimed from its *own* deque (or, on the legacy
    /// cursor queue, from the shared cursor).
    pub claims: Vec<usize>,
    /// Tasks a worker stole from a sibling's deque (always 0 on the legacy
    /// cursor queue).
    pub steals: Vec<usize>,
    /// Items a worker processed.
    pub items: Vec<usize>,
}

impl RunStats {
    /// Number of workers that participated.
    pub fn workers(&self) -> usize {
        self.items.len()
    }

    /// Total chunk claims across workers.
    pub fn total_claims(&self) -> usize {
        self.claims.iter().sum()
    }

    /// Total successful steals across workers.
    pub fn total_steals(&self) -> usize {
        self.steals.iter().sum()
    }

    /// Ratio of the busiest worker's item count to a fair per-worker share
    /// (1.0 = perfectly balanced). 0.0 for an empty run.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.items.iter().sum();
        if total == 0 || self.items.is_empty() {
            return 0.0;
        }
        let fair = total as f64 / self.items.len() as f64;
        self.items.iter().copied().max().unwrap_or(0) as f64 / fair
    }
}

/// The most recent parallel run's stats, for drivers that want to surface
/// scheduler behavior. A single slot, not a queue: runs are expected to be
/// read (taken) by the driver that just issued them.
static LAST_RUN_STATS: Mutex<Option<RunStats>> = Mutex::new(None);

/// Takes (and clears) the stats of the most recently completed parallel
/// run. Advisory observability only: concurrent parallel runs from
/// different threads race for the slot, so callers should read immediately
/// after their own run completes.
pub fn take_last_run_stats() -> Option<RunStats> {
    LAST_RUN_STATS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .take()
}

fn store_run_stats(stats: RunStats) {
    *LAST_RUN_STATS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(stats);
}

/// Decrements a shared remaining-items counter on drop, so the termination
/// scan (`items left == 0`) stays correct even when a worker's `op` panics
/// mid-chunk: the unwound chunk still counts as "no longer pending" and
/// sibling workers drain the rest and exit instead of spinning forever.
///
/// The decrement must be `Release`: the `Acquire` spin-load in the
/// termination scan synchronizes-with it, ordering an exiting worker after
/// every sibling's chunk processing. With `Relaxed` the exit path races
/// those writes — `rayon::model` re-introduces that exact bug as
/// `Mutation::RelaxedDecrement` and the model suite proves it is caught.
struct CountChunk<'a> {
    remaining: &'a AtomicUsize,
    n: usize,
}

impl Drop for CountChunk<'_> {
    fn drop(&mut self) {
        self.remaining.fetch_sub(self.n, Ordering::Release);
    }
}

/// One stealable unit: a contiguous run of input items starting at a global
/// index. Owners split chunks off the front lazily; thieves take the whole
/// task and split it themselves.
type Task<T> = (usize, Vec<T>);

/// Work-stealing execution: maps `items` through `op` (threaded through
/// per-worker `init` state) on `threads` scoped OS threads, preserving
/// input order in the output, and returns per-worker counters.
///
/// Each worker starts with one contiguous segment of the input in its own
/// deque. The worker loop: pop a task from the local deque front; if the
/// task is longer than `chunk_len`, split the tail back off into the deque
/// (still at the front, so local processing stays in input order) and run
/// just the head chunk. A worker whose deque is empty scans its siblings
/// and steals from the *back* of the first non-empty deque — the piece
/// furthest from what the owner touches next. Workers exit when every deque
/// is empty and no items remain in flight.
fn parallel_map_init_deque<T, S, R, I, F>(
    items: Vec<T>,
    init: &I,
    op: &F,
    threads: usize,
    chunk_len: usize,
) -> (Vec<R>, RunStats)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let len = items.len();
    // one contiguous segment per worker, near-equal sizes, single pass
    let mut deques: Vec<Mutex<VecDeque<Task<T>>>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    let mut start = 0usize;
    for w in 0..threads {
        let n = len / threads + usize::from(w < len % threads);
        let seg: Vec<T> = it.by_ref().take(n).collect();
        let mut dq = VecDeque::with_capacity(4);
        if !seg.is_empty() {
            dq.push_back((start, seg));
        }
        deques.push(Mutex::new(dq));
        start += n;
    }
    let remaining = AtomicUsize::new(len);
    let mut pieces: Vec<(usize, Vec<R>)> = Vec::new();
    let mut stats = RunStats {
        claims: vec![0; threads],
        steals: vec![0; threads],
        items: vec![0; threads],
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let deques = &deques;
                let remaining = &remaining;
                scope.spawn(move || {
                    let mut state = init();
                    let mut claims = 0usize;
                    let mut steals = 0usize;
                    let mut items_done = 0usize;
                    let mut out: Vec<(usize, Vec<R>)> = Vec::new();
                    'work: loop {
                        // 1. local pop (front: keeps a worker walking its
                        //    segment in input order, cache-friendly)
                        let mut task = deques[w]
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .pop_front();
                        if task.is_some() {
                            claims += 1;
                        }
                        // 2. steal scan: oldest piece of the first victim
                        //    that has one
                        if task.is_none() {
                            for v in 1..threads {
                                let victim = (w + v) % threads;
                                let stolen = deques[victim]
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .pop_back();
                                if stolen.is_some() {
                                    task = stolen;
                                    steals += 1;
                                    break;
                                }
                            }
                        }
                        let Some((start, mut vec)) = task else {
                            // 3. nothing visible: done if nothing is in
                            //    flight either, otherwise a sibling holds a
                            //    task it may split back into a deque
                            if remaining.load(Ordering::Acquire) == 0 {
                                break 'work;
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        // 4. lazy split: keep one chunk, push the tail back
                        //    where thieves can reach it while we work
                        if vec.len() > chunk_len {
                            let rest = vec.split_off(chunk_len);
                            deques[w]
                                .lock()
                                .unwrap_or_else(|poisoned| poisoned.into_inner())
                                .push_front((start + chunk_len, rest));
                        }
                        let guard = CountChunk {
                            remaining,
                            n: vec.len(),
                        };
                        items_done += vec.len();
                        let res: Vec<R> = vec.into_iter().map(|x| op(&mut state, x)).collect();
                        drop(guard);
                        out.push((start, res));
                    }
                    (out, claims, steals, items_done)
                })
            })
            .collect();
        let mut first_panic = None;
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok((out, claims, steals, items_done)) => {
                    pieces.extend(out);
                    stats.claims[w] = claims;
                    stats.steals[w] = steals;
                    stats.items[w] = items_done;
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    // reassemble in input order: piece start indices are disjoint and
    // independent of which worker produced them
    pieces.sort_unstable_by_key(|&(start, _)| start);
    let mut out: Vec<R> = Vec::with_capacity(len);
    for (_, piece) in pieces {
        out.extend(piece);
    }
    (out, stats)
}

/// The legacy scheduler, kept as an in-tree A/B baseline
/// (`RAYON_QUEUE=cursor`): the input is pre-split into per-chunk
/// `Mutex<Option<Vec<T>>>` slots and workers claim chunk indices from a
/// shared atomic cursor. Same ordering, panic, and thread-count contract as
/// the deques.
fn parallel_map_init_cursor<T, S, R, I, F>(
    items: Vec<T>,
    init: &I,
    op: &F,
    threads: usize,
    chunk_len: usize,
) -> (Vec<R>, RunStats)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let len = items.len();
    let mut chunks: Vec<Mutex<Option<Vec<T>>>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(Mutex::new(Some(chunk)));
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Vec<R>>> = Vec::new();
    slots.resize_with(chunks.len(), || None);
    let slots = Mutex::new(slots);
    let mut stats = RunStats {
        claims: vec![0; threads],
        steals: vec![0; threads],
        items: vec![0; threads],
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let chunks = &chunks;
                let cursor = &cursor;
                let slots = &slots;
                scope.spawn(move || {
                    let mut state = init();
                    let mut claims = 0usize;
                    let mut items_done = 0usize;
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= chunks.len() {
                            break;
                        }
                        let chunk = chunks[idx]
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .take()
                            .expect("chunk claimed twice");
                        claims += 1;
                        items_done += chunk.len();
                        let out: Vec<R> = chunk.into_iter().map(|x| op(&mut state, x)).collect();
                        slots
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())[idx] = Some(out);
                    }
                    (claims, items_done)
                })
            })
            .collect();
        let mut first_panic = None;
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok((claims, items_done)) => {
                    stats.claims[w] = claims;
                    stats.items[w] = items_done;
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    let mut out: Vec<R> = Vec::with_capacity(len);
    for slot in slots
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
    {
        out.extend(slot.expect("worker completed every claimed chunk"));
    }
    (out, stats)
}

/// Maps `items` through `op` (threaded through per-worker `init` state) on
/// up to `threads` scoped OS threads, preserving input order in the output.
/// Dispatches to the work-stealing deques (default) or the legacy cursor
/// queue (`RAYON_QUEUE=cursor`), records [`RunStats`], and short-circuits
/// single-chunk or single-thread inputs to a plain sequential loop with no
/// thread spawned.
fn parallel_map_init_with<T, S, R, I, F>(
    items: Vec<T>,
    init: &I,
    op: &F,
    threads: usize,
    min_len: usize,
) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let len = items.len();
    let chunk_len = chunk_len_for(len, threads, min_len);
    let n_chunks = len.div_ceil(chunk_len.max(1));
    let threads = threads.min(n_chunks);
    if threads <= 1 {
        let mut state = init();
        let out: Vec<R> = items.into_iter().map(|x| op(&mut state, x)).collect();
        store_run_stats(RunStats {
            claims: vec![usize::from(len > 0)],
            steals: vec![0],
            items: vec![len],
        });
        return out;
    }
    let (out, stats) = if use_cursor_queue() {
        parallel_map_init_cursor(items, init, op, threads, chunk_len)
    } else {
        parallel_map_init_deque(items, init, op, threads, chunk_len)
    };
    store_run_stats(stats);
    out
}

/// [`parallel_map_init_with`] without per-worker state.
fn parallel_map_with<T, R, F>(items: Vec<T>, f: &F, threads: usize, min_len: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_init_with(items, &|| (), &|(), x| f(x), threads, min_len)
}

/// A (stand-in for a) parallel iterator over an eagerly gathered item list.
pub struct ParIter<T> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> ParIter<T> {
    /// `rayon`'s `with_min_len`: chunks handed to workers never hold fewer
    /// than `min` items (splitting lower bound).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min;
        self
    }

    /// `rayon`'s `map`: lazy, runs when the pipeline is consumed.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            min_len: self.min_len,
            f,
        }
    }

    /// `rayon`'s `map_init`: `init` builds one reusable state per worker and
    /// `op` receives `&mut` to it alongside each item.
    pub fn map_init<S, R, I, F>(self, init: I, op: F) -> ParMapInit<T, I, F>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            min_len: self.min_len,
            init,
            op,
        }
    }

    /// `rayon`'s `for_each`, fanned out across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_with(self.items, &|x| f(x), num_threads(), self.min_len);
    }

    /// `rayon`'s `sum` (commutative reductions need no ordering).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Number of items behind the iterator.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`]: consumed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    min_len: usize,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Executes the map across threads and collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_with(self.items, &self.f, num_threads(), self.min_len)
            .into_iter()
            .collect()
    }
}

/// The result of [`ParIter::map_init`]: consumed by [`ParMapInit::collect`].
pub struct ParMapInit<T, I, F> {
    items: Vec<T>,
    min_len: usize,
    init: I,
    op: F,
}

impl<T, S, R, I, F> ParMapInit<T, I, F>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    /// Executes the map across threads (one `init` state per worker) and
    /// collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_init_with(
            self.items,
            &self.init,
            &self.op,
            num_threads(),
            self.min_len,
        )
        .into_iter()
        .collect()
    }
}

/// Owned conversion into a (stand-in for a) parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// `rayon::IntoParallelIterator::into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
            min_len: 0,
        }
    }
}

/// Borrowing conversion, `collection.par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a reference).
    type Item: Send + 'data;
    /// `rayon::IntoParallelRefIterator::par_iter`.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send,
{
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
            min_len: 0,
        }
    }
}

/// Mutably borrowing conversion, `collection.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type (a mutable reference).
    type Item: Send + 'data;
    /// `rayon::IntoParallelRefMutIterator::par_iter_mut`.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
    <&'data mut C as IntoIterator>::Item: Send,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
            min_len: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashMap;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;
    use std::time::Duration;

    /// Runs the deque scheduler directly (no env dependence) with the
    /// public entry point's chunk sizing.
    fn run_deque<T: Send, R: Send>(
        items: Vec<T>,
        f: impl Fn(T) -> R + Sync,
        threads: usize,
        min_len: usize,
    ) -> (Vec<R>, RunStats) {
        let chunk_len = chunk_len_for(items.len(), threads, min_len);
        parallel_map_init_deque(items, &|| (), &|(), x| f(x), threads, chunk_len)
    }

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = xs.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut xs = vec![1, 2, 3];
        xs.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(xs, vec![11, 12, 13]);
    }

    #[test]
    fn map_collect_preserves_input_order() {
        // per-item sleeps skewed so later chunks finish *before* earlier
        // ones; order must still come out right
        let xs: Vec<usize> = (0..64).collect();
        let ys: Vec<usize> = xs
            .par_iter()
            .map(|&i| {
                if i < 8 {
                    std::thread::sleep(Duration::from_millis(2));
                }
                i * 3
            })
            .collect();
        assert_eq!(ys, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    /// `par_iter().map().collect()` must demonstrably run on multiple OS
    /// threads while preserving order. Forced to 4 workers so the assertion
    /// holds on any machine; the public path sizes itself from the
    /// environment.
    #[test]
    fn map_runs_on_multiple_os_threads_in_order() {
        let xs: Vec<usize> = (0..128).collect();
        let tagged: Vec<(usize, ThreadId)> = parallel_map_with(
            xs,
            &|i| {
                // give every worker a moment to exist concurrently
                std::thread::sleep(Duration::from_micros(200));
                (i, std::thread::current().id())
            },
            4,
            0,
        );
        let ids: HashSet<ThreadId> = tagged.iter().map(|&(_, id)| id).collect();
        assert!(
            ids.len() > 1,
            "expected work on >1 distinct OS threads, saw {}",
            ids.len()
        );
        let order: Vec<usize> = tagged.iter().map(|&(i, _)| i).collect();
        assert_eq!(order, (0..128).collect::<Vec<_>>(), "ordering broken");
    }

    #[test]
    fn public_path_uses_multiple_threads_on_multicore_hosts() {
        // under a 4+-core environment (or RAYON_NUM_THREADS >= 4) the public
        // entry point itself must fan out; on smaller hosts it legitimately
        // runs sequentially and this test only checks correctness
        let xs: Vec<usize> = (0..256).collect();
        let ids: Vec<ThreadId> = xs
            .par_iter()
            .map(|_| {
                std::thread::sleep(Duration::from_micros(100));
                std::thread::current().id()
            })
            .collect();
        let distinct: HashSet<ThreadId> = ids.iter().copied().collect();
        if num_threads() >= 4 {
            assert!(distinct.len() > 1, "multicore host but no fan-out");
        } else {
            assert!(!distinct.is_empty());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    /// The sequential short-circuits are part of the contract: an empty
    /// input and a single-chunk input must run on the calling thread with
    /// no worker spawned (regression tests for the deque rewrite).
    #[test]
    fn empty_input_short_circuits_sequentially() {
        let me = std::thread::current().id();
        let ids: Vec<ThreadId> =
            parallel_map_with(Vec::<usize>::new(), &|_| std::thread::current().id(), 4, 0);
        assert!(ids.is_empty());
        // the recorded stats reflect a one-worker (caller) run of 0 items
        let stats = take_last_run_stats().expect("stats recorded");
        assert_eq!(stats.workers(), 1);
        assert_eq!(stats.items, vec![0]);
        assert_eq!(stats.total_steals(), 0);
        let _ = me;
    }

    #[test]
    fn single_chunk_input_short_circuits_sequentially() {
        let me = std::thread::current().id();
        // min_len larger than the input: exactly one chunk, so even with 4
        // threads requested everything runs on the caller
        let ids: Vec<ThreadId> = parallel_map_with(
            (0..10).collect::<Vec<usize>>(),
            &|_| std::thread::current().id(),
            4,
            64,
        );
        assert_eq!(ids.len(), 10);
        assert!(
            ids.iter().all(|&id| id == me),
            "single-chunk input must not spawn workers"
        );
        let stats = take_last_run_stats().expect("stats recorded");
        assert_eq!(stats.workers(), 1);
        assert_eq!(stats.items, vec![10]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let xs: Vec<usize> = (0..32).collect();
            let _: Vec<usize> = parallel_map_with(
                xs,
                &|i| {
                    if i == 17 {
                        panic!("boom");
                    }
                    i
                },
                4,
                0,
            );
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn worker_panic_propagates_on_cursor_queue() {
        let result = std::panic::catch_unwind(|| {
            let xs: Vec<usize> = (0..32).collect();
            let _: (Vec<usize>, RunStats) = parallel_map_init_cursor(
                xs,
                &|| (),
                &|(), i| {
                    if i == 17 {
                        panic!("boom");
                    }
                    i
                },
                4,
                2,
            );
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn map_init_builds_one_state_per_worker() {
        // count init() calls and check every item saw a &mut state; with 4
        // workers there are at most 4 states (fewer if a worker never claims
        // a chunk) and item order is preserved
        let inits = AtomicUsize::new(0);
        let xs: Vec<usize> = (0..64).collect();
        let ys: Vec<usize> = parallel_map_init_with(
            xs,
            &|| {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            &|state, i| {
                *state += 1; // prove the state is genuinely mutable
                i + *state - *state
            },
            4,
            0,
        );
        assert_eq!(ys, (0..64).collect::<Vec<_>>());
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&n), "expected 1..=4 init calls, saw {n}");
    }

    #[test]
    fn map_init_public_api_collects_in_order() {
        let xs: Vec<usize> = (0..50).collect();
        let ys: Vec<usize> = xs
            .into_par_iter()
            .map_init(|| 7usize, |s, i| i * *s)
            .collect();
        assert_eq!(ys, (0..50).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn with_min_len_bounds_chunk_size() {
        assert_eq!(chunk_len_for(1000, 4, 0), 1000usize.div_ceil(32));
        assert_eq!(chunk_len_for(1000, 4, 100), 100);
        assert_eq!(chunk_len_for(10, 4, 0), 1);
        assert_eq!(chunk_len_for(0, 4, 0), 1);
        // and the public knob still yields correct, ordered results
        let xs: Vec<usize> = (0..100).collect();
        let ys: Vec<usize> = xs.into_par_iter().with_min_len(17).map(|i| i + 1).collect();
        assert_eq!(ys, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn cursor_queue_matches_deques_bit_for_bit() {
        // both schedulers must produce the identical ordered output
        let xs: Vec<usize> = (0..257).collect();
        let chunk_len = chunk_len_for(xs.len(), 4, 0);
        let (a, _) = parallel_map_init_deque(xs.clone(), &|| (), &|(), i| i * 31 + 7, 4, chunk_len);
        let (b, _) = parallel_map_init_cursor(xs, &|| (), &|(), i| i * 31 + 7, 4, chunk_len);
        assert_eq!(a, b);
        assert_eq!(a, (0..257).map(|i| i * 31 + 7).collect::<Vec<usize>>());
    }

    /// The skewed-workload balance test the stealing deques exist for:
    /// eight expensive items (10 ms) clustered at the front of the input,
    /// 56 cheap ones (1 ms) behind them, 4 workers. Static chunk-per-thread
    /// partitioning hands *all* the expensive items to worker 0 (its share
    /// of total work: 88 ms of 136 ms ≈ 2.6× fair). With stealing, a worker
    /// holding an expensive chunk keeps only that chunk while its peers
    /// steal and drain its queued pieces, so no worker ends up with more
    /// than 2× a fair share of the total sleep-weight — and since the heavy
    /// items all start in worker 0's segment, the balance is only reachable
    /// through nonzero steals.
    #[test]
    fn skewed_workload_balances_across_workers_with_steals() {
        const HEAVY: u64 = 10;
        const LIGHT: u64 = 1;
        let weights: Vec<u64> = (0..64).map(|i| if i < 8 { HEAVY } else { LIGHT }).collect();
        let total: u64 = weights.iter().sum();
        let per_thread: Mutex<HashMap<ThreadId, u64>> = Mutex::new(HashMap::new());
        let (_, stats) = run_deque(
            weights,
            |w| {
                std::thread::sleep(Duration::from_millis(w));
                *per_thread
                    .lock()
                    .unwrap()
                    .entry(std::thread::current().id())
                    .or_insert(0) += w;
            },
            4,
            1,
        );
        let loads = per_thread.lock().unwrap();
        let fair = total as f64 / 4.0;
        let max_load = loads.values().copied().max().unwrap_or(0) as f64;
        assert!(
            loads.len() > 1,
            "expected multiple workers to claim chunks, saw {}",
            loads.len()
        );
        assert!(
            max_load <= 2.0 * fair,
            "one worker did {max_load} of {total} total ({}x its fair share {fair})",
            max_load / fair
        );
        assert!(
            stats.total_steals() > 0,
            "a front-loaded skew must trigger stealing, saw {:?}",
            stats.steals
        );
        assert_eq!(stats.items.iter().sum::<usize>(), 64);
    }

    /// The same skewed load on the legacy cursor queue still balances
    /// (dynamic claiming), with zero steals by construction — the A/B
    /// baseline the BENCH protocol compares against.
    #[test]
    fn skewed_workload_balances_on_cursor_queue_too() {
        const HEAVY: u64 = 10;
        const LIGHT: u64 = 1;
        let weights: Vec<u64> = (0..64).map(|i| if i < 8 { HEAVY } else { LIGHT }).collect();
        let total: u64 = weights.iter().sum();
        let per_thread: Mutex<HashMap<ThreadId, u64>> = Mutex::new(HashMap::new());
        let chunk_len = chunk_len_for(64, 4, 1);
        let (_, stats) = parallel_map_init_cursor(
            weights,
            &|| (),
            &|(), w| {
                std::thread::sleep(Duration::from_millis(w));
                *per_thread
                    .lock()
                    .unwrap()
                    .entry(std::thread::current().id())
                    .or_insert(0) += w;
            },
            4,
            chunk_len,
        );
        let loads = per_thread.lock().unwrap();
        let fair = total as f64 / 4.0;
        let max_load = loads.values().copied().max().unwrap_or(0) as f64;
        assert!(
            max_load <= 2.0 * fair,
            "one worker did {max_load} of {total} total ({}x its fair share {fair})",
            max_load / fair
        );
        assert_eq!(stats.total_steals(), 0);
    }

    #[test]
    fn run_stats_accounting_is_coherent() {
        let xs: Vec<usize> = (0..200).collect();
        let (ys, stats) = run_deque(xs, |i| i + 1, 4, 0);
        assert_eq!(ys, (1..=200).collect::<Vec<usize>>());
        assert_eq!(stats.workers(), 4);
        assert_eq!(stats.items.iter().sum::<usize>(), 200);
        assert!(stats.total_claims() > 0);
        assert!(stats.imbalance() >= 1.0);
        // the public path records the same shape into the global slot
        let _: Vec<usize> = parallel_map_with((0..200).collect(), &|i: usize| i, 4, 0);
        let s = take_last_run_stats().expect("stats recorded");
        assert_eq!(s.items.iter().sum::<usize>(), 200);
    }

    /// A mid-chunk panic must not deadlock sibling workers: the remaining-
    /// items accounting is decremented by the unwound chunk's guard, so the
    /// other workers drain what is reachable and exit, and the panic then
    /// reaches the caller.
    #[test]
    fn panic_mid_chunk_does_not_hang_siblings() {
        let result = std::panic::catch_unwind(|| {
            let xs: Vec<usize> = (0..64).collect();
            let _ = run_deque(
                xs,
                |i| {
                    if i == 3 {
                        panic!("boom");
                    }
                    std::thread::sleep(Duration::from_micros(100));
                    i
                },
                4,
                1,
            );
        });
        assert!(result.is_err());
    }
}
