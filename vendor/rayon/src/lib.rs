//! Offline stand-in for `rayon`, with real OS-thread parallelism.
//!
//! The build environment has no network access, so this crate implements the
//! small slice of rayon's API the workspace uses — `par_iter`,
//! `par_iter_mut`, `into_par_iter`, then `map`/`map_init`/`collect`,
//! `for_each` and `sum`, plus `with_min_len` — on top of
//! `std::thread::scope`.
//!
//! Scheduling is *dynamic*: the input is split into many small chunks (far
//! more than there are workers) and workers pull the next unclaimed chunk
//! from a shared atomic cursor. A worker stuck on a skewed, expensive chunk
//! simply claims fewer chunks while its peers drain the rest — the
//! chunk-per-thread static partitioning this replaces made such workloads
//! straggle on one thread. Chunk results are reassembled in chunk order, so
//! `par_iter().map(f).collect()` returns exactly what the sequential
//! pipeline would (rayon's ordering guarantee), independent of thread count
//! and of which worker ran which chunk.
//!
//! `with_min_len(n)` bounds splitting from below (rayon's own knob): chunks
//! are never smaller than `n` items, for workloads where per-chunk overhead
//! matters more than balance.
//!
//! `map_init(init, op)` matches rayon's API: `init` runs once per worker
//! (rayon: once per split) and the resulting state is threaded through every
//! item that worker maps — the cheap way to give each worker a reusable
//! scratch arena (e.g. one `SchedContext` per thread).
//!
//! Thread count: `RAYON_NUM_THREADS` if set (rayon's own env knob),
//! otherwise `std::thread::available_parallelism()`. A count of 1 — or a
//! single-chunk input — short-circuits to a plain sequential loop with no
//! thread spawned. Worker panics propagate to the caller, as in rayon.
//!
//! Swapping the real rayon back in remains a one-line manifest change.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything call sites need: the three `*par_iter*` entry-point traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// The number of worker threads to fan out across: `RAYON_NUM_THREADS` or
/// the machine's available parallelism.
fn num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// How many chunks to aim for per worker. Oversubscription is what lets the
/// dynamic queue absorb skew: with `k` chunks in flight per worker, one
/// straggler chunk costs at most `~1/k` of the ideal span extra.
const CHUNKS_PER_THREAD: usize = 8;

/// The chunk length used for `len` items across `threads` workers with a
/// caller-imposed lower bound (`min_len`, 0 = unset).
fn chunk_len_for(len: usize, threads: usize, min_len: usize) -> usize {
    let target = len.div_ceil(threads.max(1) * CHUNKS_PER_THREAD);
    target.max(min_len).max(1)
}

/// Maps `items` through `op` (threaded through per-worker `init` state) on
/// up to `threads` scoped OS threads, preserving input order in the output.
///
/// Workers claim chunks from a shared cursor; each `(chunk index, results)`
/// pair lands in a slot vector and the slots are concatenated in chunk
/// order, so the output order never depends on scheduling.
fn parallel_map_init_with<T, S, R, I, F>(
    items: Vec<T>,
    init: &I,
    op: &F,
    threads: usize,
    min_len: usize,
) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let len = items.len();
    let chunk_len = chunk_len_for(len, threads, min_len);
    let n_chunks = len.div_ceil(chunk_len.max(1));
    let threads = threads.min(n_chunks);
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|x| op(&mut state, x)).collect();
    }
    // Pre-split into owned chunks behind per-chunk locks: the atomic cursor
    // hands each index to exactly one worker, which takes the chunk out.
    let mut chunks: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(n_chunks);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(Mutex::new(Some(chunk)));
    }
    debug_assert_eq!(chunks.len(), n_chunks);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Vec<R>>> = Vec::new();
    slots.resize_with(n_chunks, || None);
    let slots = Mutex::new(slots);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let chunks = &chunks;
                let cursor = &cursor;
                let slots = &slots;
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= chunks.len() {
                            break;
                        }
                        let chunk = chunks[idx]
                            .lock()
                            .expect("chunk lock")
                            .take()
                            .expect("chunk claimed twice");
                        let out: Vec<R> = chunk.into_iter().map(|x| op(&mut state, x)).collect();
                        slots.lock().expect("slot lock")[idx] = Some(out);
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    let mut out: Vec<R> = Vec::with_capacity(len);
    for slot in slots.into_inner().expect("slot lock") {
        out.extend(slot.expect("worker completed every claimed chunk"));
    }
    out
}

/// [`parallel_map_init_with`] without per-worker state.
fn parallel_map_with<T, R, F>(items: Vec<T>, f: &F, threads: usize, min_len: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_init_with(items, &|| (), &|(), x| f(x), threads, min_len)
}

/// A (stand-in for a) parallel iterator over an eagerly gathered item list.
pub struct ParIter<T> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> ParIter<T> {
    /// `rayon`'s `with_min_len`: chunks handed to workers never hold fewer
    /// than `min` items (splitting lower bound).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min;
        self
    }

    /// `rayon`'s `map`: lazy, runs when the pipeline is consumed.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            min_len: self.min_len,
            f,
        }
    }

    /// `rayon`'s `map_init`: `init` builds one reusable state per worker and
    /// `op` receives `&mut` to it alongside each item.
    pub fn map_init<S, R, I, F>(self, init: I, op: F) -> ParMapInit<T, I, F>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            min_len: self.min_len,
            init,
            op,
        }
    }

    /// `rayon`'s `for_each`, fanned out across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_with(self.items, &|x| f(x), num_threads(), self.min_len);
    }

    /// `rayon`'s `sum` (commutative reductions need no ordering).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Number of items behind the iterator.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`]: consumed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    min_len: usize,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Executes the map across threads and collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_with(self.items, &self.f, num_threads(), self.min_len)
            .into_iter()
            .collect()
    }
}

/// The result of [`ParIter::map_init`]: consumed by [`ParMapInit::collect`].
pub struct ParMapInit<T, I, F> {
    items: Vec<T>,
    min_len: usize,
    init: I,
    op: F,
}

impl<T, S, R, I, F> ParMapInit<T, I, F>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    /// Executes the map across threads (one `init` state per worker) and
    /// collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_init_with(
            self.items,
            &self.init,
            &self.op,
            num_threads(),
            self.min_len,
        )
        .into_iter()
        .collect()
    }
}

/// Owned conversion into a (stand-in for a) parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// `rayon::IntoParallelIterator::into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
            min_len: 0,
        }
    }
}

/// Borrowing conversion, `collection.par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a reference).
    type Item: Send + 'data;
    /// `rayon::IntoParallelRefIterator::par_iter`.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send,
{
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
            min_len: 0,
        }
    }
}

/// Mutably borrowing conversion, `collection.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type (a mutable reference).
    type Item: Send + 'data;
    /// `rayon::IntoParallelRefMutIterator::par_iter_mut`.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
    <&'data mut C as IntoIterator>::Item: Send,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
            min_len: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashMap;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = xs.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut xs = vec![1, 2, 3];
        xs.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(xs, vec![11, 12, 13]);
    }

    #[test]
    fn map_collect_preserves_input_order() {
        // per-item sleeps skewed so later chunks finish *before* earlier
        // ones; order must still come out right
        let xs: Vec<usize> = (0..64).collect();
        let ys: Vec<usize> = xs
            .par_iter()
            .map(|&i| {
                if i < 8 {
                    std::thread::sleep(Duration::from_millis(2));
                }
                i * 3
            })
            .collect();
        assert_eq!(ys, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    /// `par_iter().map().collect()` must demonstrably run on multiple OS
    /// threads while preserving order. Forced to 4 workers so the assertion
    /// holds on any machine; the public path sizes itself from the
    /// environment.
    #[test]
    fn map_runs_on_multiple_os_threads_in_order() {
        let xs: Vec<usize> = (0..128).collect();
        let tagged: Vec<(usize, ThreadId)> = parallel_map_with(
            xs,
            &|i| {
                // give every worker a moment to exist concurrently
                std::thread::sleep(Duration::from_micros(200));
                (i, std::thread::current().id())
            },
            4,
            0,
        );
        let ids: HashSet<ThreadId> = tagged.iter().map(|&(_, id)| id).collect();
        assert!(
            ids.len() > 1,
            "expected work on >1 distinct OS threads, saw {}",
            ids.len()
        );
        let order: Vec<usize> = tagged.iter().map(|&(i, _)| i).collect();
        assert_eq!(order, (0..128).collect::<Vec<_>>(), "ordering broken");
    }

    #[test]
    fn public_path_uses_multiple_threads_on_multicore_hosts() {
        // under a 4+-core environment (or RAYON_NUM_THREADS >= 4) the public
        // entry point itself must fan out; on smaller hosts it legitimately
        // runs sequentially and this test only checks correctness
        let xs: Vec<usize> = (0..256).collect();
        let ids: Vec<ThreadId> = xs
            .par_iter()
            .map(|_| {
                std::thread::sleep(Duration::from_micros(100));
                std::thread::current().id()
            })
            .collect();
        let distinct: HashSet<ThreadId> = ids.iter().copied().collect();
        if num_threads() >= 4 {
            assert!(distinct.len() > 1, "multicore host but no fan-out");
        } else {
            assert!(!distinct.is_empty());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let xs: Vec<usize> = (0..32).collect();
            let _: Vec<usize> = parallel_map_with(
                xs,
                &|i| {
                    if i == 17 {
                        panic!("boom");
                    }
                    i
                },
                4,
                0,
            );
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn map_init_builds_one_state_per_worker() {
        // count init() calls and check every item saw a &mut state; with 4
        // workers there are at most 4 states (fewer if a worker never claims
        // a chunk) and item order is preserved
        let inits = AtomicUsize::new(0);
        let xs: Vec<usize> = (0..64).collect();
        let ys: Vec<usize> = parallel_map_init_with(
            xs,
            &|| {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            &|state, i| {
                *state += 1; // prove the state is genuinely mutable
                i + *state - *state
            },
            4,
            0,
        );
        assert_eq!(ys, (0..64).collect::<Vec<_>>());
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&n), "expected 1..=4 init calls, saw {n}");
    }

    #[test]
    fn map_init_public_api_collects_in_order() {
        let xs: Vec<usize> = (0..50).collect();
        let ys: Vec<usize> = xs
            .into_par_iter()
            .map_init(|| 7usize, |s, i| i * *s)
            .collect();
        assert_eq!(ys, (0..50).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn with_min_len_bounds_chunk_size() {
        assert_eq!(chunk_len_for(1000, 4, 0), 1000usize.div_ceil(32));
        assert_eq!(chunk_len_for(1000, 4, 100), 100);
        assert_eq!(chunk_len_for(10, 4, 0), 1);
        assert_eq!(chunk_len_for(0, 4, 0), 1);
        // and the public knob still yields correct, ordered results
        let xs: Vec<usize> = (0..100).collect();
        let ys: Vec<usize> = xs.into_par_iter().with_min_len(17).map(|i| i + 1).collect();
        assert_eq!(ys, (1..=100).collect::<Vec<_>>());
    }

    /// The skewed-workload balance test the dynamic queue exists for: eight
    /// expensive items (10 ms) clustered at the front of the input, 56 cheap
    /// ones (1 ms) behind them, 4 workers. Static chunk-per-thread
    /// partitioning hands *all* the expensive items to worker 0 (its share
    /// of total work: 88 ms of 136 ms ≈ 2.6× fair). With dynamic chunking a
    /// worker holding an expensive item stops claiming chunks while its
    /// peers drain the cheap ones, so no worker ends up with more than 2× a
    /// fair share of the total sleep-weight.
    #[test]
    fn skewed_workload_balances_across_workers() {
        const HEAVY: u64 = 10;
        const LIGHT: u64 = 1;
        let weights: Vec<u64> = (0..64).map(|i| if i < 8 { HEAVY } else { LIGHT }).collect();
        let total: u64 = weights.iter().sum();
        let per_thread: Mutex<HashMap<ThreadId, u64>> = Mutex::new(HashMap::new());
        let _: Vec<()> = parallel_map_with(
            weights,
            &|w| {
                std::thread::sleep(Duration::from_millis(w));
                *per_thread
                    .lock()
                    .unwrap()
                    .entry(std::thread::current().id())
                    .or_insert(0) += w;
            },
            4,
            1,
        );
        let loads = per_thread.lock().unwrap();
        let fair = total as f64 / 4.0;
        let max_load = loads.values().copied().max().unwrap_or(0) as f64;
        assert!(
            loads.len() > 1,
            "expected multiple workers to claim chunks, saw {}",
            loads.len()
        );
        assert!(
            max_load <= 2.0 * fair,
            "one worker did {max_load} of {total} total ({}x its fair share {fair})",
            max_load / fair
        );
    }
}
