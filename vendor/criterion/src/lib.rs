//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's `harness = false` bench targets
//! use — [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`criterion_group!`]/[`criterion_main!`] — backed by a simple
//! wall-clock measurement loop: a short warm-up, then timed batches until
//! either the configured sample count or a per-benchmark time budget is
//! reached, reporting the median time per iteration. No statistics engine,
//! plots, or baselines; the point is that `cargo bench` compiles, runs
//! fast, and prints comparable numbers.

//!
//! When the `BENCH_JSON` environment variable names a file, every measured
//! benchmark also appends one JSON line `{"id": ..., "median_ns": ...}`
//! there (created on first write), giving CI and the perf-trajectory
//! tooling a machine-readable record of the run.

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark time budget. Keeps full `cargo bench` runs in seconds.
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards CLI words after `--`; the only ones honoured
        // here are a name substring filter (flags are ignored).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.ends_with(".rs"));
        Criterion {
            default_sample_size: 50,
            filter,
        }
    }
}

impl Criterion {
    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.default_sample_size, &self.filter, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples for following benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &self.criterion.filter, f);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &self.criterion.filter, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus an optional parameter label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is only a parameter label.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The measurement handle: call [`Bencher::iter`] with the code under test.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Measures `f` repeatedly, recording one sample per call batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up and batch sizing: aim for batches of at least ~100µs so
        // Instant overhead stays negligible for cheap bodies
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_micros(100).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    filter: &Option<String>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size.max(1),
    };
    f(&mut b);
    match b.median() {
        Some(t) => {
            println!("bench: {id:<60} median {t:>12.2?}/iter");
            record_json(id, t);
        }
        None => println!("bench: {id:<60} (no samples)"),
    }
}

/// Appends one JSON line for a measured benchmark to `$BENCH_JSON`, if set.
fn record_json(id: &str, median: Duration) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\": \"{escaped}\", \"median_ns\": {}}}\n",
        median.as_nanos()
    );
    // Bench executables run with CWD = the package root, not the workspace
    // root; create missing parent directories so a relative path like
    // `results/bench.json` works from either place.
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    let write = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = write {
        eprintln!("warning: BENCH_JSON={path}: {e}");
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` that drives one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: 5,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(!b.samples.is_empty());
        assert!(b.median().unwrap() > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_renders_name_and_param() {
        assert_eq!(
            BenchmarkId::new("HEFT", "chains_12").to_string(),
            "HEFT/chains_12"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
