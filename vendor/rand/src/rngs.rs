//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ seeded by
/// expanding a `u64` through SplitMix64 (the seeding scheme the xoshiro
/// authors recommend). Small, fast, and statistically solid for simulation
/// workloads; not cryptographically secure.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion; guarantees a non-zero xoshiro state.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
