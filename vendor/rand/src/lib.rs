//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the exact API surface its sources use:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64, so `StdRng::seed_from_u64(s)` yields one reproducible
//!   stream per seed across every crate in the workspace;
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive ranges over the
//!   integer and float types the workspace samples), `gen_bool`, `sample`;
//! * [`SeedableRng`] — `seed_from_u64`;
//! * [`distributions`] — the `Distribution`/`Standard`/`Uniform` plumbing
//!   backing `gen` and `sample`.
//!
//! The stream differs from upstream `rand`'s StdRng (ChaCha12), which is
//! explicitly permitted: upstream documents StdRng streams as
//! non-portable across versions. Determinism *within* this workspace is
//! what the experiments rely on, and that is guaranteed here.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty, matching upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}
