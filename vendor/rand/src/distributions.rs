//! Distributions backing [`Rng::gen`](crate::Rng::gen),
//! [`Rng::gen_range`](crate::Rng::gen_range) and
//! [`Rng::sample`](crate::Rng::sample).

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: uniform over the full integer range,
/// uniform on `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// Converts 53 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts 24 random bits into a uniform `f32` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

pub mod uniform {
    //! Uniform sampling from ranges.

    use super::unit_f64;
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a bounded range.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform draw from `[lo, hi)`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi as i128 - lo as i128) as u128;
                    let draw = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + draw) as $t
                }
                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + draw) as $t
                }
            }
        )*};
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        #[inline]
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            let v = lo + unit_f64(rng) * (hi - lo);
            // guard against rounding up to an excluded upper bound
            if v >= hi {
                lo.max(hi - (hi - lo) * f64::EPSILON)
            } else {
                v
            }
        }
        #[inline]
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            (lo + u * (hi - lo)).clamp(lo, hi)
        }
    }

    impl SampleUniform for f32 {
        #[inline]
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            f64::sample_half_open(rng, lo as f64, hi as f64) as f32
        }
        #[inline]
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
        }
    }

    /// Range expressions accepted by [`Rng::gen_range`](crate::Rng::gen_range).
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
        fn is_empty(&self) -> bool {
            // NaN bounds compare as incomparable and therefore count as empty
            !matches!(
                self.start.partial_cmp(&self.end),
                Some(std::cmp::Ordering::Less)
            )
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
        fn is_empty(&self) -> bool {
            // NaN bounds compare as incomparable and therefore count as empty
            !matches!(
                self.start().partial_cmp(self.end()),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
        }
    }
}

/// A reusable uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T: uniform::SampleUniform> {
    lo: T,
    hi: T,
}

impl<T: uniform::SampleUniform> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform::new called with empty range");
        Uniform { lo, hi }
    }

    /// Uniform over `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> UniformInclusive<T> {
        assert!(lo <= hi, "Uniform::new_inclusive called with empty range");
        UniformInclusive { lo, hi }
    }
}

impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.lo, self.hi)
    }
}

/// A reusable uniform distribution over `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct UniformInclusive<T: uniform::SampleUniform> {
    lo: T,
    hi: T,
}

impl<T: uniform::SampleUniform> Distribution<T> for UniformInclusive<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleUniform;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let z: usize = rng.gen_range(0..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn inclusive_f64_hits_full_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let (mut lo_seen, mut hi_seen) = (f64::INFINITY, f64::NEG_INFINITY);
        for _ in 0..10_000 {
            let v = f64::sample_inclusive(&mut rng, 0.0, 1.0);
            lo_seen = lo_seen.min(v);
            hi_seen = hi_seen.max(v);
        }
        assert!(lo_seen < 0.01 && hi_seen > 0.99);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(5..5);
    }
}
