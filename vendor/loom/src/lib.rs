//! A vendored miniature loom: deterministic, exhaustive exploration of
//! thread interleavings for model-checking small concurrent protocols.
//!
//! This is an offline stand-in for the `loom` crate, built for one job:
//! proving the vendored rayon work-stealing deque protocol correct (and
//! catching deliberate mutations of it) on a container whose real hardware
//! never produces interesting interleavings. It is not a general
//! weak-memory simulator — see "Model" below for the exact semantics.
//!
//! # Usage
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Mutex;
//!
//! loom::model(|| {
//!     let n = AtomicUsize::new(0);
//!     let total = Mutex::new(0usize);
//!     loom::thread::scope(|s| {
//!         s.spawn(|| {
//!             n.fetch_add(1, Ordering::Release);
//!             *total.lock() += 1;
//!         });
//!         s.spawn(|| {
//!             n.load(Ordering::Acquire);
//!             *total.lock() += 1;
//!         });
//!     });
//!     assert_eq!(*total.lock(), 2);
//! });
//! ```
//!
//! The closure is executed once per distinct schedule. Every execution is
//! sequential under the hood: model threads are real OS threads, but a
//! central scheduler grants exactly one of them permission to run at a
//! time, and a thread must ask for permission at every *operation* (atomic
//! access, mutex lock/unlock, [`cell::RaceArray`] access, yield, join).
//! Between two operations a thread only touches its own locals, so
//! serializing the operations serializes the execution.
//!
//! # Exploration
//!
//! Schedules are enumerated by a depth-first search over scheduling
//! decisions with **bounded preemption**: switching away from a thread
//! that is still enabled (and did not just call
//! [`thread::yield_now`]) consumes one preemption token, and executions
//! are explored only up to [`Builder::max_preemptions`] tokens. Most
//! protocol bugs — including every bug class the rayon deque model
//! targets — manifest within two or three preemptions. The search is
//! fully deterministic: same model, same builder, same executions in the
//! same order, no randomness and no dependence on wall-clock or OS
//! scheduling.
//!
//! # Model
//!
//! Loads observe the *latest* store to a location (sequentially consistent
//! value semantics), and memory-ordering arguments feed a C11-style
//! vector-clock synchronizes-with relation instead of producing stale
//! values:
//!
//! - `store(Release)` publishes the writer's clock on the location;
//!   `store(Relaxed)` *clears* it (a relaxed store starts no release
//!   sequence).
//! - Read-modify-writes with a release component *join* their clock into
//!   the location (continuing the release sequence); relaxed RMWs leave
//!   the location clock untouched (they continue an existing sequence).
//! - `load(Acquire)` and acquiring RMWs join the location clock into the
//!   reader's clock.
//! - `SeqCst` is treated as `AcqRel`; the model does not check for
//!   missing total-order requirements beyond acquire/release.
//!
//! Plain (non-atomic) shared memory goes through [`cell::RaceArray`],
//! which checks every access against the happens-before relation derived
//! from those clocks and reports a **data race** — unordered accesses are
//! a violation even when every interleaved outcome happens to look
//! benign. This is what makes ordering bugs detectable under
//! sequentially-consistent value semantics: a missing `Release` shows up
//! as a missing happens-before edge, not as a stale value.
//!
//! # Violations
//!
//! A data race, a panic in model code (failed assertion), a deadlock, an
//! exceeded operation budget (livelock / lost-work detector) or an
//! exceeded execution budget all abort the exploration and are reported
//! with the offending schedule. [`model`] panics on violation;
//! [`Builder::explore`] returns it as a value so tests can assert that a
//! deliberately seeded bug *is* caught.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar};

/// Maximum number of model threads per execution (root + spawned).
pub const MAX_THREADS: usize = 8;

type VClock = [u32; MAX_THREADS];

const ZERO_CLOCK: VClock = [0; MAX_THREADS];

fn vjoin(into: &mut VClock, from: &VClock) {
    for (a, b) in into.iter_mut().zip(from.iter()) {
        if *b > *a {
            *a = *b;
        }
    }
}

/// Does the event recorded as `(tid, snapshot)` happen-before the thread
/// whose current clock is `now`?
fn happens_before(snapshot: &VClock, tid: usize, now: &VClock) -> bool {
    snapshot[tid] <= now[tid]
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Running,
    Parked,
    Finished,
}

#[derive(Clone, Debug)]
enum Pending {
    /// Always enabled: atomic / race-cell / yield / unlock operations.
    Free,
    /// Enabled when the mutex is not held.
    Lock(usize),
    /// Enabled when every listed thread has finished.
    Join(Vec<usize>),
}

struct Thd {
    status: Status,
    pending: Option<Pending>,
    clock: VClock,
    yielded: bool,
}

struct AtomicState {
    value: usize,
    /// Release clock currently published on this location.
    sync: VClock,
}

struct MutexState {
    held_by: Option<usize>,
    sync: VClock,
}

#[derive(Clone)]
struct RaceSlot {
    /// Last write: writer tid + writer clock snapshot at the write.
    write: Option<(usize, VClock)>,
    /// Per-thread clock component at each thread's last read since the
    /// last write.
    reads: VClock,
}

struct RaceArrayState {
    slots: Vec<RaceSlot>,
}

struct State {
    threads: Vec<Thd>,
    granted: Option<usize>,
    aborting: bool,
    violation: Option<String>,
    ops: usize,
    schedule: Vec<usize>,
    atomics: Vec<AtomicState>,
    mutexes: Vec<MutexState>,
    races: Vec<RaceArrayState>,
}

struct Runtime {
    // spelled out (not aliased) so saga-lint's lock-discipline pass sees
    // the declaration and keys it to the lock-order registry
    state: std::sync::Mutex<State>,
    cv: Condvar,
}

/// Panic payload used to unwind model threads when an execution aborts.
struct AbortSentinel;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Runtime>, usize)>> = const { RefCell::new(None) };
}

fn current() -> (Arc<Runtime>, usize) {
    CURRENT.with(|c| c.borrow().clone()).expect(
        "loom primitive used outside loom::model — construct and use loom \
         atomics/mutexes/threads only inside the model closure",
    )
}

impl Runtime {
    fn new() -> Self {
        Runtime {
            state: std::sync::Mutex::new(State {
                threads: Vec::new(),
                granted: None,
                aborting: false,
                violation: None,
                ops: 0,
                schedule: Vec::new(),
                atomics: Vec::new(),
                mutexes: Vec::new(),
                races: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Abort the execution from a model thread: record the violation (first
    /// one wins), wake everyone, and unwind this thread with the sentinel.
    fn abort(&self, st: std::sync::MutexGuard<'_, State>, msg: String) -> ! {
        let mut st = st;
        if st.violation.is_none() {
            st.violation = Some(msg);
        }
        st.aborting = true;
        self.cv.notify_all();
        drop(st);
        panic::resume_unwind(Box::new(AbortSentinel));
    }

    /// Execute one model operation: park at the scheduler, wait for the
    /// grant, then apply `effect` atomically on the shared state. The
    /// effect returns the operation's result plus an optional violation
    /// (e.g. a detected data race).
    ///
    /// When called during unwinding (guard drops on a panicking thread)
    /// the effect is applied immediately without scheduling, so RAII
    /// cleanup can never deadlock the controller or start a double panic.
    fn op<R>(
        self: &Arc<Self>,
        me: usize,
        pending: Pending,
        effect: impl FnOnce(&mut State, usize) -> (R, Option<String>),
    ) -> R {
        if std::thread::panicking() {
            let mut st = self.lock_state();
            let (r, _err) = effect(&mut st, me);
            return r;
        }
        let mut st = self.lock_state();
        if st.aborting {
            drop(st);
            panic::resume_unwind(Box::new(AbortSentinel));
        }
        st.threads[me].pending = Some(pending);
        st.threads[me].status = Status::Parked;
        if st.granted == Some(me) {
            st.granted = None;
        }
        self.cv.notify_all();
        loop {
            if st.aborting {
                drop(st);
                panic::resume_unwind(Box::new(AbortSentinel));
            }
            if st.granted == Some(me) {
                break;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        // Granted: the controller has already marked us Running, cleared
        // our pending op and charged the op budget. Tick our clock and
        // apply the effect while still holding the state lock.
        st.threads[me].clock[me] += 1;
        let (r, err) = effect(&mut st, me);
        if let Some(msg) = err {
            self.abort(st, msg);
        }
        drop(st);
        r
    }

    /// Register a child thread spawned by `parent`; the child inherits the
    /// parent's clock (spawn happens-before everything the child does).
    fn register_thread(self: &Arc<Self>, parent: usize) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        if tid >= MAX_THREADS {
            self.abort(st, format!("model spawned more than {MAX_THREADS} threads"));
        }
        st.threads[parent].clock[parent] += 1;
        let clock = st.threads[parent].clock;
        st.threads.push(Thd {
            status: Status::Running,
            pending: None,
            clock,
            yielded: false,
        });
        tid
    }

    fn register_atomic(self: &Arc<Self>, me: usize, value: usize) -> usize {
        let mut st = self.lock_state();
        let sync = st.threads[me].clock;
        st.atomics.push(AtomicState { value, sync });
        st.atomics.len() - 1
    }

    fn register_mutex(self: &Arc<Self>, me: usize) -> usize {
        let mut st = self.lock_state();
        let sync = st.threads[me].clock;
        st.mutexes.push(MutexState {
            held_by: None,
            sync,
        });
        st.mutexes.len() - 1
    }

    fn register_race_array(self: &Arc<Self>, len: usize) -> usize {
        let mut st = self.lock_state();
        st.races.push(RaceArrayState {
            slots: vec![
                RaceSlot {
                    write: None,
                    reads: ZERO_CLOCK,
                };
                len
            ],
        });
        st.races.len() - 1
    }
}

/// Body run on every model OS thread: install the runtime handle, run the
/// user closure under `catch_unwind`, and report the outcome.
fn run_thread(rt: Arc<Runtime>, tid: usize, f: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((rt.clone(), tid)));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut st = rt.lock_state();
    st.threads[tid].status = Status::Finished;
    st.threads[tid].pending = None;
    if st.granted == Some(tid) {
        st.granted = None;
    }
    if let Err(payload) = result {
        if !payload.is::<AbortSentinel>() {
            // `&*payload`, not `&payload`: a `&Box<dyn Any>` would unsize
            // into an Any holding the *box*, and every downcast would miss.
            let msg = payload_message(&*payload);
            if st.violation.is_none() {
                st.violation = Some(format!("model thread {tid} panicked: {msg}"));
            }
            st.aborting = true;
        }
    }
    rt.cv.notify_all();
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Public shims
// ---------------------------------------------------------------------------

/// Synchronization primitive shims mirroring `std::sync`.
pub mod sync {
    use super::{current, happens_before, vjoin, Pending};

    /// Atomic type shims mirroring `std::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use super::super::{current, vjoin, Pending, ZERO_CLOCK};

        fn acquires(ord: Ordering) -> bool {
            matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
        }

        fn releases(ord: Ordering) -> bool {
            matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
        }

        /// Model `AtomicUsize`: sequentially-consistent values plus
        /// vector-clock tracking of the synchronizes-with edges implied by
        /// each operation's `Ordering` (see the crate docs for the exact
        /// semantics).
        pub struct AtomicUsize {
            id: usize,
        }

        impl AtomicUsize {
            /// Create a new model atomic with the given initial value.
            /// Must be called on a model thread.
            pub fn new(value: usize) -> Self {
                let (rt, me) = current();
                let id = rt.register_atomic(me, value);
                AtomicUsize { id }
            }

            /// Atomic load; an acquiring ordering joins the location's
            /// release clock into this thread's clock.
            pub fn load(&self, ord: Ordering) -> usize {
                let (rt, me) = current();
                let id = self.id;
                rt.op(me, Pending::Free, move |st, me| {
                    let sync = st.atomics[id].sync;
                    if acquires(ord) {
                        vjoin(&mut st.threads[me].clock, &sync);
                    }
                    (st.atomics[id].value, None)
                })
            }

            /// Atomic store; a releasing ordering publishes this thread's
            /// clock on the location, a relaxed store clears it.
            pub fn store(&self, value: usize, ord: Ordering) {
                let (rt, me) = current();
                let id = self.id;
                rt.op(me, Pending::Free, move |st, me| {
                    let clock = st.threads[me].clock;
                    let loc = &mut st.atomics[id];
                    loc.sync = if releases(ord) { clock } else { ZERO_CLOCK };
                    loc.value = value;
                    ((), None)
                })
            }

            /// Atomic fetch-add (wrapping); returns the previous value.
            pub fn fetch_add(&self, n: usize, ord: Ordering) -> usize {
                self.rmw(ord, move |v| v.wrapping_add(n))
            }

            /// Atomic fetch-sub (wrapping); returns the previous value.
            pub fn fetch_sub(&self, n: usize, ord: Ordering) -> usize {
                self.rmw(ord, move |v| v.wrapping_sub(n))
            }

            fn rmw(&self, ord: Ordering, f: impl FnOnce(usize) -> usize) -> usize {
                let (rt, me) = current();
                let id = self.id;
                rt.op(me, Pending::Free, move |st, me| {
                    let sync = st.atomics[id].sync;
                    if acquires(ord) {
                        vjoin(&mut st.threads[me].clock, &sync);
                    }
                    let clock = st.threads[me].clock;
                    let loc = &mut st.atomics[id];
                    if releases(ord) {
                        // Join (not replace): an RMW continues the release
                        // sequence of the store it read from.
                        vjoin(&mut loc.sync, &clock);
                    }
                    let old = loc.value;
                    loc.value = f(old);
                    (old, None)
                })
            }
        }
    }

    /// Model mutex: a scheduler-level lock gate (so the explorer sees and
    /// reorders acquisition) guarding a real `std::sync::Mutex` payload
    /// that is uncontended by construction.
    pub struct Mutex<T> {
        id: usize,
        data: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Create a new model mutex. Must be called on a model thread.
        pub fn new(value: T) -> Self {
            let (rt, me) = current();
            let id = rt.register_mutex(me);
            Mutex {
                id,
                data: std::sync::Mutex::new(value),
            }
        }

        /// Acquire the mutex, blocking (in model time) until it is free.
        /// Acquisition joins the clock released by the previous holder.
        ///
        /// Unlike `std`, this returns the guard directly: the payload
        /// mutex cannot be poisoned mid-model (a panicking execution
        /// aborts exploration), so there is no error case to surface.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let (rt, me) = current();
            let id = self.id;
            rt.op(me, Pending::Lock(id), move |st, me| {
                let sync = st.mutexes[id].sync;
                vjoin(&mut st.threads[me].clock, &sync);
                st.mutexes[id].held_by = Some(me);
                ((), None)
            });
            MutexGuard {
                lock: self,
                inner: Some(
                    self.data
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()),
                ),
            }
        }
    }

    /// RAII guard for [`Mutex`]; releasing it is a model operation.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard payload present")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard payload present")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the payload first so the next model-granted holder
            // finds the inner mutex free, then release the model gate.
            drop(self.inner.take());
            let (rt, me) = current();
            let id = self.lock.id;
            rt.op(me, Pending::Free, move |st, me| {
                let clock = st.threads[me].clock;
                let m = &mut st.mutexes[id];
                m.held_by = None;
                vjoin(&mut m.sync, &clock);
                ((), None)
            });
        }
    }

    /// Re-check helper used by [`super::cell::RaceArray`]: formats a race
    /// report for an access that is not ordered after a prior access.
    pub(crate) fn check_read_race(
        slot: &super::RaceSlot,
        now: &super::VClock,
        what: &str,
        index: usize,
    ) -> Option<String> {
        if let Some((wt, wc)) = &slot.write {
            if !happens_before(wc, *wt, now) {
                return Some(format!(
                    "data race: {what} of RaceArray slot {index} is not ordered \
                     after the last write by thread {wt} (missing release/acquire \
                     synchronization)"
                ));
            }
        }
        None
    }
}

/// Plain-memory cells with happens-before race detection.
pub mod cell {
    use super::{current, happens_before, Pending, ZERO_CLOCK};

    /// A fixed-length array of plain (non-atomic) shared memory slots.
    ///
    /// Every access is checked against the vector-clock happens-before
    /// relation: a read must be ordered after the last write, and a write
    /// must be ordered after the last write *and* every read since it.
    /// An unordered pair is reported as a data race — the model-level
    /// equivalent of ThreadSanitizer, and the mechanism that catches
    /// missing `Release`/`Acquire` orderings even though values are
    /// sequentially consistent.
    pub struct RaceArray<T: Copy> {
        id: usize,
        len: usize,
        data: std::sync::Mutex<Vec<T>>,
    }

    impl<T: Copy> RaceArray<T> {
        /// Create an array of `len` slots all holding `init`. Must be
        /// called on a model thread. The initial value is readable by
        /// every thread without synchronization (initialization
        /// happens-before the spawns that share the array).
        pub fn new(len: usize, init: T) -> Self {
            let (rt, _me) = current();
            let id = rt.register_race_array(len);
            RaceArray {
                id,
                len,
                data: std::sync::Mutex::new(vec![init; len]),
            }
        }

        /// Number of slots.
        pub fn len(&self) -> usize {
            self.len
        }

        /// True when the array has no slots.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        fn payload(&self) -> std::sync::MutexGuard<'_, Vec<T>> {
            self.data
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }

        /// Read slot `index` (one model operation).
        pub fn read(&self, index: usize) -> T {
            let (rt, me) = current();
            let id = self.id;
            rt.op(me, Pending::Free, move |st, me| {
                let now = st.threads[me].clock;
                let slot = &mut st.races[id].slots[index];
                let err = super::sync::check_read_race(slot, &now, "read", index);
                slot.reads[me] = now[me];
                ((), err)
            });
            self.payload()[index]
        }

        /// Write `value` to slot `index` (one model operation).
        pub fn write(&self, index: usize, value: T) {
            let (rt, me) = current();
            let id = self.id;
            rt.op(me, Pending::Free, move |st, me| {
                let now = st.threads[me].clock;
                let slot = &mut st.races[id].slots[index];
                ((), Self::write_check(slot, &now, me, index))
            });
            self.payload()[index] = value;
        }

        /// Read-modify-write slot `index` as a single model operation;
        /// returns the previous value.
        pub fn update(&self, index: usize, f: impl FnOnce(T) -> T) -> T {
            let (rt, me) = current();
            let id = self.id;
            rt.op(me, Pending::Free, move |st, me| {
                let now = st.threads[me].clock;
                let slot = &mut st.races[id].slots[index];
                ((), Self::write_check(slot, &now, me, index))
            });
            let mut data = self.payload();
            let old = data[index];
            data[index] = f(old);
            old
        }

        /// Read every slot as a single model operation (each slot is
        /// race-checked and marked read).
        pub fn read_all(&self) -> Vec<T> {
            let (rt, me) = current();
            let id = self.id;
            let len = self.len;
            rt.op(me, Pending::Free, move |st, me| {
                let now = st.threads[me].clock;
                let mut err = None;
                for index in 0..len {
                    let slot = &mut st.races[id].slots[index];
                    if err.is_none() {
                        err = super::sync::check_read_race(slot, &now, "read", index);
                    }
                    slot.reads[me] = now[me];
                }
                ((), err)
            });
            self.payload().clone()
        }

        fn write_check(
            slot: &mut super::RaceSlot,
            now: &super::VClock,
            me: usize,
            index: usize,
        ) -> Option<String> {
            if let Some((wt, wc)) = &slot.write {
                if !happens_before(wc, *wt, now) {
                    return Some(format!(
                        "data race: write of RaceArray slot {index} is not ordered \
                         after the last write by thread {wt} (missing \
                         release/acquire synchronization)"
                    ));
                }
            }
            for (t, &read_at) in slot.reads.iter().enumerate() {
                if read_at > now[t] {
                    return Some(format!(
                        "data race: write of RaceArray slot {index} is not ordered \
                         after a read by thread {t} (missing release/acquire \
                         synchronization)"
                    ));
                }
            }
            slot.write = Some((me, *now));
            slot.reads = ZERO_CLOCK;
            None
        }
    }
}

/// Thread shims mirroring `std::thread`.
pub mod thread {
    use std::cell::RefCell;

    use super::{current, run_thread, vjoin, Pending};

    /// Scoped-thread handle mirroring `std::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        spawned: RefCell<Vec<usize>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a model thread inside the scope. Spawning itself is not a
        /// scheduling point; the child parks at its first operation. The
        /// child inherits the parent's clock (spawn happens-before the
        /// child body).
        pub fn spawn<F>(&self, f: F)
        where
            F: FnOnce() + Send + 'scope,
        {
            let (rt, me) = current();
            let tid = rt.register_thread(me);
            self.spawned.borrow_mut().push(tid);
            let rt2 = rt.clone();
            self.inner.spawn(move || run_thread(rt2, tid, f));
        }
    }

    /// Scoped threads mirroring `std::thread::scope`: every spawned model
    /// thread is joined (as a model operation, so the scheduler can run
    /// the children to completion) before `scope` returns. Joining
    /// establishes happens-before from each child's last operation to the
    /// code after the scope.
    pub fn scope<'env, F>(f: F)
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>),
    {
        let (rt, me) = current();
        std::thread::scope(|s| {
            let sc = Scope {
                inner: s,
                spawned: RefCell::new(Vec::new()),
            };
            f(&sc);
            let ids = sc.spawned.borrow().clone();
            if !ids.is_empty() {
                let join_ids = ids.clone();
                rt.op(me, Pending::Join(ids), move |st, me| {
                    for &child in &join_ids {
                        let child_clock = st.threads[child].clock;
                        vjoin(&mut st.threads[me].clock, &child_clock);
                    }
                    ((), None)
                });
            }
            // The model-level join above only completes once every child
            // has finished its body, so the implicit std join at the end
            // of this closure cannot block the scheduler.
        });
    }

    /// Voluntary yield: the scheduler will not re-grant this thread at the
    /// very next decision if any other thread is enabled, and switching
    /// away from it costs no preemption token. Use in spin loops.
    pub fn yield_now() {
        let (rt, me) = current();
        rt.op(me, Pending::Free, |st, me| {
            st.threads[me].yielded = true;
            ((), None)
        });
    }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

/// Statistics from a completed (violation-free) exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub executions: usize,
    /// Total scheduling decisions (granted operations) across every
    /// execution.
    pub total_ops: usize,
}

/// A property violation found during exploration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Human-readable description (race report, panic message, deadlock,
    /// budget exhaustion).
    pub message: String,
    /// The schedule (sequence of granted thread ids) of the failing
    /// execution, when one exists.
    pub schedule: Vec<usize>,
    /// 1-based index of the failing execution in exploration order.
    pub execution: usize,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // A budget-exhausted (livelock) schedule is thousands of entries of
        // repeating spin; the prefix is what identifies the execution.
        const SHOWN: usize = 64;
        if self.schedule.len() <= SHOWN {
            write!(
                f,
                "{} (execution {}, schedule {:?})",
                self.message, self.execution, self.schedule
            )
        } else {
            write!(
                f,
                "{} (execution {}, schedule {:?}.. and {} more)",
                self.message,
                self.execution,
                &self.schedule[..SHOWN],
                self.schedule.len() - SHOWN
            )
        }
    }
}

#[derive(Clone)]
struct Decision {
    num_options: usize,
    chosen: usize,
}

enum ExecOutcome {
    Complete {
        decisions: Vec<Decision>,
        ops: usize,
    },
    Violation {
        message: String,
        schedule: Vec<usize>,
    },
}

/// Exploration configuration.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Preemption budget per execution (see crate docs). Default 2.
    pub max_preemptions: usize,
    /// Operation budget per execution; exceeding it is reported as a
    /// livelock / lost-work violation. Default 10 000.
    pub max_ops: usize,
    /// Execution budget for the whole exploration; exceeding it is a
    /// violation (the state space must stay enumerable). Default 200 000.
    pub max_executions: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_preemptions: 2,
            max_ops: 10_000,
            max_executions: 200_000,
        }
    }
}

impl Builder {
    /// New builder with default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the per-execution preemption budget.
    pub fn max_preemptions(mut self, n: usize) -> Self {
        self.max_preemptions = n;
        self
    }

    /// Set the per-execution operation budget.
    pub fn max_ops(mut self, n: usize) -> Self {
        self.max_ops = n;
        self
    }

    /// Set the whole-exploration execution budget.
    pub fn max_executions(mut self, n: usize) -> Self {
        self.max_executions = n;
        self
    }

    /// Explore every schedule of `f` within the preemption bound; panic
    /// with a diagnostic on the first violation.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.explore(f) {
            Ok(report) => report,
            Err(v) => panic!("loom model violation: {v}"),
        }
    }

    /// Explore every schedule of `f` within the preemption bound,
    /// returning the first violation as a value (for tests that assert a
    /// seeded bug *is* caught) or exploration statistics when every
    /// schedule passes.
    pub fn explore<F>(&self, f: F) -> Result<Report, Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        let mut total_ops = 0usize;
        loop {
            executions += 1;
            if executions > self.max_executions {
                return Err(Violation {
                    message: format!(
                        "state space exceeded max_executions ({}) — shrink the \
                         model or raise the budget",
                        self.max_executions
                    ),
                    schedule: Vec::new(),
                    execution: executions,
                });
            }
            match self.run_one(&f, &prefix) {
                ExecOutcome::Violation { message, schedule } => {
                    return Err(Violation {
                        message,
                        schedule,
                        execution: executions,
                    });
                }
                ExecOutcome::Complete { decisions, ops } => {
                    total_ops += ops;
                    match next_prefix(&decisions) {
                        Some(p) => prefix = p,
                        None => {
                            return Ok(Report {
                                executions,
                                total_ops,
                            })
                        }
                    }
                }
            }
        }
    }

    /// Run a single execution, replaying `prefix` at branch points and
    /// taking the first option thereafter.
    fn run_one(&self, f: &Arc<dyn Fn() + Send + Sync>, prefix: &[usize]) -> ExecOutcome {
        let rt = Arc::new(Runtime::new());
        {
            let mut st = rt.lock_state();
            st.threads.push(Thd {
                status: Status::Running,
                pending: None,
                clock: ZERO_CLOCK,
                yielded: false,
            });
        }
        let rt_root = rt.clone();
        let f_root = f.clone();
        let root = std::thread::spawn(move || run_thread(rt_root, 0, move || f_root()));

        let mut decisions: Vec<Decision> = Vec::new();
        let mut branch_idx = 0usize;
        let mut last: Option<usize> = None;
        let mut preemptions = 0usize;

        let outcome = loop {
            let mut st = rt.lock_state();
            // Wait for the world to quiesce: nobody Running (or abort).
            loop {
                if st.aborting {
                    break;
                }
                if st.threads.iter().all(|t| t.status != Status::Running) {
                    break;
                }
                st = rt
                    .cv
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            if st.aborting {
                // Drain: wake everyone until all threads have unwound.
                while !st.threads.iter().all(|t| t.status == Status::Finished) {
                    rt.cv.notify_all();
                    st = rt
                        .cv
                        .wait(st)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                break ExecOutcome::Violation {
                    message: st
                        .violation
                        .clone()
                        .unwrap_or_else(|| "aborted without violation".to_string()),
                    schedule: st.schedule.clone(),
                };
            }
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                break ExecOutcome::Complete {
                    decisions: decisions.clone(),
                    ops: st.ops,
                };
            }

            // Enabled = parked threads whose pending op can proceed.
            let enabled: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Parked)
                .filter(
                    |(_, t)| match t.pending.as_ref().expect("parked implies pending") {
                        Pending::Free => true,
                        Pending::Lock(m) => st.mutexes[*m].held_by.is_none(),
                        Pending::Join(ids) => ids
                            .iter()
                            .all(|&c| st.threads[c].status == Status::Finished),
                    },
                )
                .map(|(tid, _)| tid)
                .collect();

            if enabled.is_empty() {
                let blocked: Vec<usize> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status == Status::Parked)
                    .map(|(tid, _)| tid)
                    .collect();
                st.violation = Some(format!(
                    "deadlock: threads {blocked:?} are blocked and no thread can run"
                ));
                st.aborting = true;
                rt.cv.notify_all();
                continue;
            }
            if st.ops >= self.max_ops {
                st.violation = Some(format!(
                    "operation budget exceeded ({} ops) — livelock or lost \
                     work (a loop is waiting for something that never happens)",
                    self.max_ops
                ));
                st.aborting = true;
                rt.cv.notify_all();
                continue;
            }

            // Options under the preemption discipline, preferring to keep
            // running the last thread (DFS explores few-preemption
            // schedules first).
            let last_enabled_live = last
                .filter(|l| enabled.contains(l))
                .map(|l| (l, st.threads[l].yielded));
            let mut options: Vec<usize> = Vec::new();
            match last_enabled_live {
                Some((l, yielded)) => {
                    if yielded && enabled.len() > 1 {
                        // A yielded thread is not re-granted while someone
                        // else can run, and the handoff is deterministic
                        // round-robin — NOT a branch point. A spin loop
                        // yields every iteration; branching over successors
                        // there multiplies the tree by (threads-1) per spin
                        // turn and makes any model with a termination spin
                        // intractable. Rotation keeps yields fair (every
                        // peer runs, so spins terminate) while the real
                        // reorderings stay covered by the preemption
                        // branches at atomic/lock operations.
                        let next = enabled
                            .iter()
                            .copied()
                            .find(|&t| t > l)
                            .unwrap_or(enabled[0]);
                        options.push(next);
                    } else if !yielded && preemptions >= self.max_preemptions {
                        options.push(l);
                    } else {
                        options.push(l);
                        options.extend(enabled.iter().copied().filter(|&t| t != l));
                    }
                }
                None => options.extend(enabled.iter().copied()),
            }

            let chosen = if options.len() == 1 {
                options[0]
            } else {
                let idx = if branch_idx < prefix.len() {
                    prefix[branch_idx]
                } else {
                    0
                };
                decisions.push(Decision {
                    num_options: options.len(),
                    chosen: idx,
                });
                branch_idx += 1;
                options[idx]
            };
            if let Some((l, yielded)) = last_enabled_live {
                if chosen != l && !yielded {
                    preemptions += 1;
                }
            }
            for t in st.threads.iter_mut() {
                t.yielded = false;
            }
            st.granted = Some(chosen);
            st.threads[chosen].status = Status::Running;
            st.threads[chosen].pending = None;
            st.ops += 1;
            st.schedule.push(chosen);
            last = Some(chosen);
            rt.cv.notify_all();
            drop(st);
        };

        let _ = root.join();
        outcome
    }
}

/// Increment the last scheduling decision that still has unexplored
/// options; `None` when the whole bounded state space is exhausted.
fn next_prefix(decisions: &[Decision]) -> Option<Vec<usize>> {
    let mut d = decisions.to_vec();
    while let Some(last) = d.last_mut() {
        if last.chosen + 1 < last.num_options {
            last.chosen += 1;
            return Some(d.iter().map(|x| x.chosen).collect());
        }
        d.pop();
    }
    None
}

/// Explore every schedule of `f` with the default [`Builder`]; panic with
/// a diagnostic on the first violation.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::cell::RaceArray;
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Mutex;
    use super::{Builder, MAX_THREADS};

    #[test]
    fn single_thread_runs_once() {
        let report = Builder::new().check(|| {
            let a = AtomicUsize::new(1);
            assert_eq!(a.load(Ordering::Relaxed), 1);
            a.store(2, Ordering::Relaxed);
            assert_eq!(a.fetch_add(3, Ordering::Relaxed), 2);
            assert_eq!(a.load(Ordering::Relaxed), 5);
        });
        assert_eq!(report.executions, 1);
    }

    #[test]
    fn mutex_counter_two_threads() {
        let report = Builder::new().check(|| {
            let m = std::sync::Arc::new(Mutex::new(0usize));
            crate::thread::scope(|s| {
                let m1 = m.clone();
                s.spawn(move || {
                    *m1.lock() += 1;
                });
                let m2 = m.clone();
                s.spawn(move || {
                    *m2.lock() += 1;
                });
            });
            assert_eq!(*m.lock(), 2);
        });
        assert!(report.executions > 1, "interleavings were explored");
    }

    #[test]
    fn release_acquire_publication_is_race_free() {
        Builder::new().check(|| {
            let data = std::sync::Arc::new(RaceArray::new(1, 0usize));
            let flag = std::sync::Arc::new(AtomicUsize::new(0));
            crate::thread::scope(|s| {
                let (d, f) = (data.clone(), flag.clone());
                s.spawn(move || {
                    d.write(0, 42);
                    f.store(1, Ordering::Release);
                });
                let (d, f) = (data.clone(), flag.clone());
                s.spawn(move || {
                    if f.load(Ordering::Acquire) == 1 {
                        assert_eq!(d.read(0), 42);
                    }
                });
            });
        });
    }

    #[test]
    fn relaxed_publication_is_a_race() {
        let violation = Builder::new()
            .explore(|| {
                let data = std::sync::Arc::new(RaceArray::new(1, 0usize));
                let flag = std::sync::Arc::new(AtomicUsize::new(0));
                crate::thread::scope(|s| {
                    let (d, f) = (data.clone(), flag.clone());
                    s.spawn(move || {
                        d.write(0, 42);
                        f.store(1, Ordering::Relaxed);
                    });
                    let (d, f) = (data.clone(), flag.clone());
                    s.spawn(move || {
                        if f.load(Ordering::Acquire) == 1 {
                            d.read(0);
                        }
                    });
                });
            })
            .expect_err("relaxed publication must race");
        assert!(violation.message.contains("data race"), "{violation}");
    }

    #[test]
    fn self_deadlock_is_reported() {
        let violation = Builder::new()
            .explore(|| {
                let m = Mutex::new(());
                let _g = m.lock();
                let _g2 = m.lock();
            })
            .expect_err("double lock must deadlock");
        assert!(violation.message.contains("deadlock"), "{violation}");
    }

    #[test]
    fn assertion_failures_are_violations() {
        let violation = Builder::new()
            .explore(|| {
                let a = AtomicUsize::new(0);
                assert_eq!(a.load(Ordering::Relaxed), 1, "seeded failure");
            })
            .expect_err("assert must fail");
        assert!(violation.message.contains("panicked"), "{violation}");
    }

    #[test]
    fn exploration_is_deterministic() {
        let run = || {
            Builder::new()
                .check(|| {
                    let a = std::sync::Arc::new(AtomicUsize::new(0));
                    crate::thread::scope(|s| {
                        for _ in 0..2 {
                            let a = a.clone();
                            s.spawn(move || {
                                a.fetch_add(1, Ordering::Relaxed);
                                a.load(Ordering::Relaxed);
                            });
                        }
                    });
                    assert_eq!(a.load(Ordering::Relaxed), 2);
                })
                .executions
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn thread_limit_is_enforced() {
        let violation = Builder::new()
            .explore(|| {
                crate::thread::scope(|s| {
                    for _ in 0..MAX_THREADS {
                        s.spawn(|| {});
                    }
                });
            })
            .expect_err("spawning MAX_THREADS children plus root must fail");
        assert!(violation.message.contains("threads"), "{violation}");
    }
}
