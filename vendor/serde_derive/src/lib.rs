//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable in this no-network build environment, so
//! the item is parsed directly from the raw [`proc_macro::TokenStream`] and
//! the impls are emitted as formatted source text. The supported shapes are
//! exactly what the workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, like upstream serde),
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde's default representation).
//!
//! Generic types and `#[serde(...)]` attributes are not supported and fail
//! with a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (value-tree conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives the vendored `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let body = match dir {
        Direction::Serialize => gen_serialize(&name, &shape),
        Direction::Deserialize => gen_deserialize(&name, &shape),
    };
    body.parse().unwrap()
}

/// Errors on `#[serde(...)]` at an attribute position (`tokens[i]` is `#`):
/// the vendored derive implements none of upstream's attributes, and
/// silently ignoring one would change the emitted JSON.
fn reject_serde_attr(tokens: &[TokenTree], i: usize) -> Result<(), String> {
    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
        if let Some(TokenTree::Ident(id)) = g.stream().into_iter().next() {
            if id.to_string() == "serde" {
                return Err(
                    "#[serde(...)] attributes are not supported by the vendored serde_derive \
                     (see vendor/serde_derive/src/lib.rs)"
                        .into(),
                );
            }
        }
    }
    Ok(())
}

/// Splits `struct Name { ... }` / `struct Name(...);` / `enum Name { ... }`
/// out of the derive input, skipping attributes and visibility.
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut kind: Option<&'static str> = None;
    let mut name = String::new();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                reject_serde_attr(&tokens, i)?;
                i += 2; // `#` plus the `[...]` group
                continue;
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(if s == "struct" { "struct" } else { "enum" });
                    if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                        name = n.to_string();
                    } else {
                        return Err("expected a name after struct/enum".into());
                    }
                    i += 2;
                    break;
                }
                // visibility and other leading idents
                i += 1;
            }
            _ => i += 1,
        }
    }
    let kind = kind.ok_or("derive input is neither a struct nor an enum")?;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Shape::NamedStruct {
                    fields: parse_named_fields(g.stream())?,
                }
            } else {
                Shape::Enum {
                    variants: parse_variants(g.stream())?,
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("unexpected parentheses after enum name".into());
            }
            Shape::TupleStruct {
                arity: count_top_level(g.stream()),
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
        _ => return Err(format!("unsupported item shape for `{name}`")),
    };
    Ok((name, shape))
}

/// Field names of a named-field body: `vis? name: Type,`*. Commas inside
/// generic arguments are skipped by tracking `<`/`>` depth (`->` is
/// recognised and ignored).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // skip attributes and visibility
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                reject_serde_attr(&tokens, i)?;
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                match &tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    _ => {
                        return Err(format!(
                            "expected `:` after field `{}`",
                            fields.last().unwrap()
                        ))
                    }
                }
                i = skip_type(&tokens, i);
            }
            other => return Err(format!("unexpected token `{other}` in struct body")),
        }
    }
    Ok(fields)
}

/// Advances past one type expression, stopping after the next top-level `,`
/// (or at the end of the body).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if prev_dash => {} // the `->` of a fn-pointer type
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    return i + 1;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        i += 1;
    }
    i
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                reject_serde_attr(&tokens, i)?;
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let kind = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantKind::Named(parse_named_fields(g.stream())?)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantKind::Tuple(count_top_level(g.stream()))
                    }
                    _ => VariantKind::Unit,
                };
                // skip an optional discriminant `= expr`
                if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    i += 1;
                    i = skip_type(&tokens, i).saturating_sub(1);
                }
                variants.push(Variant { name, kind });
            }
            other => return Err(format!("unexpected token `{other}` in enum body")),
        }
    }
    Ok(variants)
}

/// Number of comma-separated entries at angle-bracket depth zero (0 for an
/// empty stream).
fn count_top_level(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut commas = 0;
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if prev_dash => {}
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => commas += 1,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
    }
    let trailing = matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',');
    commas + usize::from(!trailing)
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(fields)"
            )
        }
        Shape::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum { variants } => {
            let arms: String = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn serialize_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n")
        }
        VariantKind::Tuple(arity) => {
            let binders: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
            let inner = if *arity == 1 {
                "::serde::Serialize::to_value(x0)".to_string()
            } else {
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "{name}::{vname}({binds}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),\n",
                binds = binders.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let binds = fields.join(", ");
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                .collect();
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), \
                 ::serde::Value::Object(vec![{}]))]),\n",
                pushes.join(", ")
            )
        }
    }
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__field(fields, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "let fields = v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct { arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if items.len() != {arity} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\")); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum { variants } => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("{vname:?} => Ok({name}::{vname}),\n", vname = v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                )),
                VariantKind::Tuple(arity) => {
                    let inits: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "{vname:?} => {{\n\
                         let items = inner.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for {name}::{vname}\"))?;\n\
                         if items.len() != {arity} {{ return Err(::serde::Error::custom(\
                         \"wrong arity for {name}::{vname}\")); }}\n\
                         Ok({name}::{vname}({}))\n}},\n",
                        inits.join(", ")
                    ))
                }
                VariantKind::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::__field(fields, {f:?})?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "{vname:?} => {{\n\
                         let fields = inner.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}::{vname}\"))?;\n\
                         Ok({name}::{vname} {{ {} }})\n}},\n",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "match v {{\n\
         ::serde::Value::String(s) => match s.as_str() {{\n\
         {unit_arms}\
         other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
         }},\n\
         ::serde::Value::Object(tagged) if tagged.len() == 1 => {{\n\
         let (tag, inner) = &tagged[0];\n\
         match tag.as_str() {{\n\
         {tagged_arms}\
         other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
         }}\n\
         }},\n\
         _ => Err(::serde::Error::custom(\"expected externally tagged {name}\")),\n\
         }}"
    )
}
