//! Offline stand-in for `serde`: a value-tree serialization model.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal serde: [`Serialize`] converts a value into a JSON-shaped
//! [`Value`] tree and [`Deserialize`] reads one back. The derive macros in
//! `serde_derive` generate impls against exactly this API, and `serde_json`
//! renders/parses the tree as JSON text. Externally-tagged enum encoding and
//! newtype-struct transparency match upstream serde's defaults, so the JSON
//! this produces looks like what real serde would emit.

#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped tree value.
///
/// Object fields keep insertion order (a `Vec` of pairs, not a map): the
/// workspace serializes small DTOs where ordered output and lossless
/// round-trips matter more than lookup speed.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// Any JSON number (integers included).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks a field up by name in an object.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// Renders compact JSON, matching `serde_json::to_string`.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(x) => write_number(f, *x),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a number the way serde_json does: integers without a fractional
/// part, non-finite values as `null`, everything else via Rust's shortest
/// round-trip float formatting.
pub fn write_number(f: &mut impl fmt::Write, x: f64) -> fmt::Result {
    if !x.is_finite() {
        f.write_str("null")
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        write!(f, "{}", x as i64)
    } else {
        write!(f, "{x}")
    }
}

/// Writes a JSON string literal with escapes.
pub fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// A (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a tree value.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `self` back out of a tree value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: looks up a required object field.
#[doc(hidden)]
pub fn __field<'a>(fields: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::Number(*self as f64)
                } else {
                    // serde_json renders non-finite floats as null
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|x| x as $t).ok_or_else(|| Error::custom("expected number"))
            }
        }
    )*};
}

serde_float!(f32, f64);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_f64().ok_or_else(|| Error::custom("expected number"))?;
                if x.trunc() != x {
                    return Err(Error::custom("expected integer"));
                }
                // range-check before the cast: `as` would silently saturate
                if x < <$t>::MIN as f64 || x > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "integer {x} out of range for {}", stringify!($t)
                    )));
                }
                Ok(x as $t)
            }
        }
    )*};
}

serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_display_matches_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(1.5)),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("c".into(), Value::String("x\"y".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1.5,"b":[null,true],"c":"x\"y"}"#);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(-0.25).to_string(), "-0.25");
    }

    #[test]
    fn option_round_trip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Number(2.0)).unwrap(),
            Some(2.0)
        );
        assert_eq!(Some(2.0f64).to_value(), Value::Number(2.0));
        assert_eq!(Option::<f64>::None.to_value(), Value::Null);
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(u32::from_value(&Value::Number(-1.0)).is_err());
        assert!(u32::from_value(&Value::Number(4_294_967_296.0)).is_err());
        assert!(i32::from_value(&Value::Number(2_147_483_648.0)).is_err());
        assert_eq!(
            u32::from_value(&Value::Number(4_294_967_295.0)).unwrap(),
            u32::MAX
        );
    }

    #[test]
    fn tuples_round_trip() {
        let t = ("x".to_string(), 1.25f64, 7u32);
        let v = t.to_value();
        let back: (String, f64, u32) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
    }
}
