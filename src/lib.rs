//! # SAGA-rs: scheduling algorithms gathered, in Rust
//!
//! A Rust reproduction of the system behind *PISA: An Adversarial Approach to
//! Comparing Task Graph Scheduling Algorithms* (Coleman & Krishnamachari,
//! IPPS 2025). This meta-crate re-exports the whole workspace:
//!
//! * [`core`] — the related-machines scheduling model: task graphs, networks,
//!   schedules, validation, ranking utilities.
//! * [`schedulers`] — the 17 scheduling algorithms of the paper's Table I.
//! * [`datasets`] — the 16 dataset generators of the paper's Table II.
//! * [`pisa`] — the simulated-annealing adversarial instance finder.
//!
//! ## Quickstart
//!
//! ```
//! use saga::core::{Instance, Network, TaskGraph};
//! use saga::schedulers::{Heft, Scheduler};
//!
//! let mut g = TaskGraph::new();
//! let a = g.add_task("A", 1.0);
//! let b = g.add_task("B", 2.0);
//! g.add_dependency(a, b, 0.5).unwrap();
//! let n = Network::complete(&[1.0, 2.0], 1.0);
//! let inst = Instance::new(n, g);
//! let sched = Heft::default().schedule(&inst);
//! assert!(sched.verify(&inst).is_ok());
//! ```

pub use saga_core as core;
pub use saga_datasets as datasets;
pub use saga_pisa as pisa;
pub use saga_schedulers as schedulers;
