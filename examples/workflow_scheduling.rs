//! Scientific-workflow scheduling: generate in-family blast and srasearch
//! instances at several communication-to-computation ratios and compare the
//! Section VII scheduler subset — the decision a Workflow Management System
//! designer faces.
//!
//! ```sh
//! cargo run --release --example workflow_scheduling
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga::core::Instance;
use saga::datasets::ccr::{set_homogeneous_ccr, PAPER_CCRS};
use saga::datasets::workflows;

fn main() {
    let schedulers = saga::schedulers::app_specific_schedulers();
    let mut rng = StdRng::seed_from_u64(99);

    for wf in ["blast", "srasearch"] {
        println!("=== {wf} ===");
        println!(
            "{:>6} {}",
            "CCR",
            schedulers
                .iter()
                .map(|s| format!("{:>12}", s.name()))
                .collect::<String>()
        );
        for ccr in PAPER_CCRS {
            // mean makespan ratio over a small in-family sample
            let samples = 10;
            let mut totals = vec![0.0f64; schedulers.len()];
            for _ in 0..samples {
                let graph = workflows::build_graph(wf, &mut rng);
                let spec = workflows::spec(wf).unwrap();
                let net = workflows::sample_chameleon_network(&mut rng, &spec);
                let mut inst = Instance::new(net, graph);
                set_homogeneous_ccr(&mut inst, ccr);
                let ms: Vec<f64> = schedulers
                    .iter()
                    .map(|s| s.schedule(&inst).makespan())
                    .collect();
                let best = ms.iter().cloned().fold(f64::INFINITY, f64::min);
                for (k, m) in ms.iter().enumerate() {
                    totals[k] += m / best;
                }
            }
            print!("{ccr:>6}");
            for t in &totals {
                print!("{:>12.3}", t / samples as f64);
            }
            println!();
        }
        println!();
    }
    println!(
        "note how rankings shift with CCR and across applications — the\n\
         motivation for adversarial (rather than average-case) comparison."
    );
}
