//! Scheduler portfolios: the paper's closing suggestion — a Workflow
//! Management System could "run a set of scheduling algorithms that best
//! covers the different types of client workflows", e.g. the three
//! schedulers minimizing the combined worst-case makespan ratio found by
//! PISA.
//!
//! This example builds a small PISA pairwise matrix, then exhaustively
//! evaluates all 3-subsets: a portfolio's worst case on an instance is the
//! *best* of its members, so its adversarial ratio against a baseline is the
//! minimum of the members' ratios.
//!
//! ```sh
//! cargo run --release --example scheduler_portfolio
//! ```

use saga::pisa::{pairwise_matrix, PisaConfig};
use saga::schedulers::Scheduler;

fn main() {
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(saga::schedulers::Cpop),
        Box::new(saga::schedulers::FastestNode),
        Box::new(saga::schedulers::Heft),
        Box::new(saga::schedulers::MaxMin),
        Box::new(saga::schedulers::MinMin),
        Box::new(saga::schedulers::Wba::default()),
    ];
    println!("building PISA pairwise matrix over 6 schedulers...");
    let m = pairwise_matrix(
        &schedulers,
        PisaConfig {
            i_max: 300,
            restarts: 2,
            seed: 4242,
            ..PisaConfig::default()
        },
    );
    let n = m.names.len();

    // Evaluate every 3-subset: worst over baselines of (min over members).
    // This is an upper bound built from single-scheduler witnesses — the
    // portfolio can only do better on each witness instance.
    let mut best: Option<(Vec<usize>, f64)> = None;
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                let members = [a, b, c];
                let mut worst = 0.0f64;
                for i in 0..n {
                    // adversary picks the baseline; portfolio picks its best
                    // member on that baseline's witness
                    let ratio = members
                        .iter()
                        .map(|&j| if i == j { 1.0 } else { m.ratios[i][j] })
                        .fold(f64::INFINITY, f64::min);
                    worst = worst.max(ratio);
                }
                let better = match &best {
                    None => true,
                    Some((_, w)) => worst < *w,
                };
                if better {
                    best = Some((members.to_vec(), worst));
                }
            }
        }
    }

    println!("\nsingle-scheduler worst cases:");
    let worst_row = m.worst_row();
    for (name, w) in m.names.iter().zip(&worst_row) {
        println!(
            "  {:<12} {}",
            name,
            saga::pisa::PairwiseMatrix::format_cell(*w)
        );
    }
    let (members, worst) = best.expect("at least one subset");
    println!(
        "\nbest 3-scheduler portfolio: {{{}}} with combined worst-case ratio {}",
        members
            .iter()
            .map(|&i| m.names[i].clone())
            .collect::<Vec<_>>()
            .join(", "),
        saga::pisa::PairwiseMatrix::format_cell(worst)
    );
    println!(
        "(vs {} for the best single scheduler)",
        saga::pisa::PairwiseMatrix::format_cell(
            worst_row.iter().cloned().fold(f64::INFINITY, f64::min)
        )
    );
}
