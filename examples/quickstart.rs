//! Quickstart: define a problem instance, run a scheduler, inspect and
//! validate the schedule.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use saga::core::{gantt, Instance, Network, NodeId, TaskGraph};
use saga::schedulers::{Heft, Scheduler};

fn main() {
    // The task graph from the paper's Fig. 1: four tasks, four dependencies.
    let mut graph = TaskGraph::new();
    let t1 = graph.add_task("t1", 1.7);
    let t2 = graph.add_task("t2", 1.2);
    let t3 = graph.add_task("t3", 2.2);
    let t4 = graph.add_task("t4", 0.8);
    graph.add_dependency(t1, t2, 0.6).unwrap();
    graph.add_dependency(t1, t3, 0.5).unwrap();
    graph.add_dependency(t2, t4, 1.3).unwrap();
    graph.add_dependency(t3, t4, 1.6).unwrap();

    // Three heterogeneous nodes with heterogeneous links.
    let mut network = Network::complete(&[1.0, 1.2, 1.5], 1.0);
    network.set_link(NodeId(0), NodeId(1), 0.5);
    network.set_link(NodeId(1), NodeId(2), 1.2);

    let instance = Instance::new(network, graph);
    println!("instance CCR: {:.3}\n", instance.ccr());

    // Schedule with HEFT and validate against the Section II constraints.
    let schedule = Heft.schedule(&instance);
    schedule
        .verify(&instance)
        .expect("HEFT produces valid schedules");

    println!("HEFT makespan: {:.3}", schedule.makespan());
    for t in instance.graph.tasks() {
        let a = schedule.assignment(t);
        println!(
            "  {} on {} during [{:.3}, {:.3}]",
            instance.graph.name(t),
            a.node,
            a.start,
            a.finish
        );
    }
    println!("\n{}", gantt::render(&instance, &schedule, 60));

    // Compare every polynomial-time scheduler on the same instance.
    println!("all schedulers on this instance:");
    for s in saga::schedulers::benchmark_schedulers() {
        let m = s.schedule(&instance).makespan();
        println!("  {:<12} {m:.3}", s.name());
    }
}
