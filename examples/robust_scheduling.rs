//! Scheduling under uncertainty: plan on expected weights, execute under
//! jittered realizations, and see which scheduler's plans degrade least —
//! the stochastic-instances extension the paper names as future work.
//!
//! ```sh
//! cargo run --release --example robust_scheduling
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga::core::stochastic::{simulate_fixed, static_plan_makespan, StochasticInstance};
use saga::core::Instance;
use saga::schedulers::Scheduler;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // an epigenomics-shaped workflow with links pinned at CCR 1
    let g = saga::datasets::workflows::build_graph("epigenomics", &mut rng);
    let spec = saga::datasets::workflows::spec("epigenomics").unwrap();
    let net = saga::datasets::workflows::sample_chameleon_network(&mut rng, &spec);
    let mut inst = Instance::new(net, g);
    saga::datasets::ccr::set_homogeneous_ccr(&mut inst, 1.0);

    println!(
        "epigenomics instance: {} tasks on {} machines\n",
        inst.graph.task_count(),
        inst.network.node_count()
    );
    for cv in [0.1, 0.2, 0.3] {
        let stoch = StochasticInstance::jittered(&inst, cv);
        let expected = stoch.expected_instance();
        println!("weight jitter cv = {cv}:");
        println!(
            "  {:<12} {:>10} {:>14} {:>12} {:>10}",
            "scheduler", "planned", "achieved mean", "p95", "regret"
        );
        for s in saga::schedulers::app_specific_schedulers() {
            let plan = s.schedule(&expected);
            let planned = plan.makespan();
            let mut mc = StdRng::seed_from_u64(99);
            let (mean, p95) = static_plan_makespan(&plan, &stoch, 300, &mut mc);
            println!(
                "  {:<12} {:>10.1} {:>14.1} {:>12.1} {:>9.1}%",
                s.name(),
                planned,
                mean,
                p95,
                100.0 * (mean / planned - 1.0)
            );
        }
        println!();
    }

    // one concrete story: re-timing a single plan under one bad draw
    let stoch = StochasticInstance::jittered(&inst, 0.3);
    let plan = saga::schedulers::Heft.schedule(&stoch.expected_instance());
    let mut rng = StdRng::seed_from_u64(1234);
    let reality = stoch.realize(&mut rng);
    let executed = simulate_fixed(&plan, &reality);
    executed.verify(&reality).expect("re-timed plan is valid");
    println!(
        "single draw: HEFT promised {:.1}, delivered {:.1} ({:+.1}%)",
        plan.makespan(),
        executed.makespan(),
        100.0 * (executed.makespan() / plan.makespan() - 1.0)
    );
}
