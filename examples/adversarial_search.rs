//! Adversarial analysis with PISA: find a problem instance where HEFT
//! performs as badly as possible against CPoP, starting from small random
//! chain instances (the paper's Section VI setup).
//!
//! ```sh
//! cargo run --release --example adversarial_search
//! ```

use saga::core::gantt;
use saga::pisa::perturb::initial_instance;
use saga::pisa::{GeneralPerturber, Pisa, PisaConfig};
use saga::schedulers::{Cpop, Heft, Scheduler};

fn main() {
    let perturber = GeneralPerturber::default();
    let pisa = Pisa {
        target: &Heft,
        baseline: &Cpop,
        perturber: &perturber,
        config: PisaConfig {
            seed: 17,
            ..PisaConfig::default() // the paper's T_max/T_min/I_max/alpha
        },
    };

    println!("searching for an instance where HEFT maximally trails CPoP...");
    let result = pisa.run(&|rng| initial_instance(rng));
    println!(
        "found ratio {:.3} (started at {:.3}, {} evaluations)\n",
        result.ratio, result.initial_ratio, result.evaluations
    );

    let inst = &result.instance;
    println!("witness instance:\n{}", inst.to_json());

    for s in [&Heft as &dyn Scheduler, &Cpop as &dyn Scheduler] {
        let sched = s.schedule(inst);
        sched.verify(inst).expect("valid");
        println!("{} makespan {:.3}", s.name(), sched.makespan());
        println!("{}", gantt::render(inst, &sched, 60));
    }

    println!(
        "HEFT is {:.2}x worse than CPoP on this instance — a gap the paper's\n\
         Fig. 2 benchmarking (where HEFT looks uniformly strong) never reveals.",
        result.ratio
    );
}
