//! Adversarial comparison under metrics other than makespan — the paper's
//! future-work direction "other performance metrics (e.g., throughput,
//! energy consumption, cost)". Each objective is a ratio
//! `metric(target's schedule) / metric(baseline's schedule)` (inverted for
//! throughput, where larger is better), pluggable into the
//! [`maximize`](crate::annealer::maximize()) generic annealer.

use crate::annealer::{maximize_in, AnnealScratch, PairTraces, PisaConfig, PisaResult};
use crate::makespan_ratio;
use crate::perturb::Perturber;
use rand::rngs::StdRng;
use saga_core::metrics::{energy, rental_cost, throughput, EnergyModel};
use saga_core::{DirtyRegion, Instance};
use saga_schedulers::Scheduler;

/// The schedule-quality metric being compared adversarially.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Total execution time (the paper's headline metric).
    Makespan,
    /// Energy under a speed-proportional power model with the given idle
    /// fraction and per-unit communication energy.
    Energy {
        /// Idle power as a fraction of active power.
        idle_fraction: f64,
        /// Joules per data unit moved across nodes.
        comm_energy_per_unit: f64,
    },
    /// Rental cost with price proportional to node speed (fast nodes cost
    /// proportionally more per unit time).
    RentalCost,
    /// Task throughput; the adversarial ratio is inverted
    /// (`baseline / target`) because larger throughput is better.
    Throughput,
}

impl Objective {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Makespan => "makespan",
            Objective::Energy { .. } => "energy",
            Objective::RentalCost => "cost",
            Objective::Throughput => "throughput",
        }
    }

    /// Evaluates the metric of `sched` on `inst` (lower is better for every
    /// variant except `Throughput`).
    pub fn evaluate(self, inst: &Instance, sched: &saga_core::Schedule) -> f64 {
        match self {
            Objective::Makespan => sched.makespan(),
            Objective::Energy {
                idle_fraction,
                comm_energy_per_unit,
            } => {
                let model =
                    EnergyModel::speed_proportional(inst, idle_fraction, comm_energy_per_unit);
                energy(inst, sched, &model)
            }
            Objective::RentalCost => {
                let price: Vec<f64> = inst.network.speeds().to_vec();
                rental_cost(inst, sched, &price)
            }
            Objective::Throughput => throughput(inst, sched),
        }
    }

    /// The adversarial ratio of `target` against `baseline` on `inst` under
    /// this metric (always "how much worse is the target", > 1 is worse).
    pub fn ratio(self, target: &dyn Scheduler, baseline: &dyn Scheduler, inst: &Instance) -> f64 {
        let mut ctx = saga_core::SchedContext::new();
        self.ratio_with(target, baseline, inst, &mut ctx)
    }

    /// [`Objective::ratio`] reusing a scheduling context across the two
    /// scheduler runs (the annealer's hot path).
    pub fn ratio_with(
        self,
        target: &dyn Scheduler,
        baseline: &dyn Scheduler,
        inst: &Instance,
        ctx: &mut saga_core::SchedContext,
    ) -> f64 {
        ctx.pin_tables(inst);
        let ts = target.schedule_into(inst, ctx);
        let bs = baseline.schedule_into(inst, ctx);
        ctx.unpin_tables();
        self.compose(inst, &ts, &bs)
    }

    /// [`Objective::ratio_with`] with incremental delta-evaluation: the
    /// kernel refreshes only the table pieces `dirty` names and both
    /// schedulers replay the unchanged prefix of their recorded runs before
    /// materializing the (bit-identical) schedules the metric needs.
    pub fn ratio_incremental(
        self,
        target: &dyn Scheduler,
        baseline: &dyn Scheduler,
        inst: &Instance,
        ctx: &mut saga_core::SchedContext,
        traces: &mut PairTraces,
        dirty: &DirtyRegion,
    ) -> f64 {
        ctx.pin_tables_dirty(inst, dirty);
        let ts = target.schedule_incremental_into(inst, ctx, &mut traces.target, dirty);
        let bs = baseline.schedule_incremental_into(inst, ctx, &mut traces.baseline, dirty);
        ctx.unpin_tables();
        self.compose(inst, &ts, &bs)
    }

    /// The adversarial ratio from the two materialized schedules.
    fn compose(self, inst: &Instance, ts: &saga_core::Schedule, bs: &saga_core::Schedule) -> f64 {
        let (a, b) = match self {
            // larger throughput is better: invert
            Objective::Throughput => (self.evaluate(inst, bs), self.evaluate(inst, ts)),
            _ => (self.evaluate(inst, ts), self.evaluate(inst, bs)),
        };
        makespan_ratio(a, b)
    }
}

/// Runs the PISA annealing schedule maximizing the metric ratio of `target`
/// against `baseline`.
pub fn metric_search(
    objective: Objective,
    target: &dyn Scheduler,
    baseline: &dyn Scheduler,
    perturber: &dyn Perturber,
    config: PisaConfig,
    init: &dyn Fn(&mut StdRng) -> Instance,
) -> PisaResult {
    let mut ctx = saga_core::SchedContext::new();
    let mut scratch = AnnealScratch::default();
    metric_search_in(
        objective,
        target,
        baseline,
        perturber,
        config,
        init,
        &mut ctx,
        &mut scratch,
    )
}

/// [`metric_search`] borrowing the scheduling context and scratch instances
/// from the caller — the batch-runner entry point.
#[allow(clippy::too_many_arguments)] // mirrors `metric_search` plus the two borrows
pub fn metric_search_in(
    objective: Objective,
    target: &dyn Scheduler,
    baseline: &dyn Scheduler,
    perturber: &dyn Perturber,
    config: PisaConfig,
    init: &dyn Fn(&mut StdRng) -> Instance,
    ctx: &mut saga_core::SchedContext,
    scratch: &mut AnnealScratch,
) -> PisaResult {
    let mut traces = std::mem::take(&mut scratch.traces);
    let res = maximize_in(
        &mut |inst, dirty| {
            objective.ratio_incremental(target, baseline, inst, ctx, &mut traces, dirty)
        },
        perturber,
        config,
        init,
        scratch,
    );
    scratch.traces = traces;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::{initial_instance, GeneralPerturber};
    use rand::SeedableRng;
    use saga_schedulers::{FastestNode, Heft};

    const ENERGY: Objective = Objective::Energy {
        idle_fraction: 0.2,
        comm_energy_per_unit: 1.0,
    };

    #[test]
    fn objective_names() {
        assert_eq!(Objective::Makespan.name(), "makespan");
        assert_eq!(ENERGY.name(), "energy");
        assert_eq!(Objective::RentalCost.name(), "cost");
        assert_eq!(Objective::Throughput.name(), "throughput");
    }

    #[test]
    fn makespan_objective_matches_pisa_ratio() {
        let mut rng = StdRng::seed_from_u64(0);
        let inst = initial_instance(&mut rng);
        let via_metric = Objective::Makespan.ratio(&Heft, &FastestNode, &inst);
        let perturber = GeneralPerturber::default();
        let pisa = crate::Pisa {
            target: &Heft,
            baseline: &FastestNode,
            perturber: &perturber,
            config: PisaConfig::default(),
        };
        assert_eq!(via_metric, pisa.ratio(&inst));
    }

    #[test]
    fn throughput_ratio_is_inverted_consistently() {
        // identical schedulers => ratio exactly 1 under every objective
        let mut rng = StdRng::seed_from_u64(1);
        let inst = initial_instance(&mut rng);
        for obj in [
            Objective::Makespan,
            ENERGY,
            Objective::RentalCost,
            Objective::Throughput,
        ] {
            let r = obj.ratio(&Heft, &Heft, &inst);
            assert!((r - 1.0).abs() < 1e-12, "{}: {r}", obj.name());
        }
    }

    #[test]
    fn energy_search_finds_wasteful_instances_for_heft() {
        // FastestNode keeps one node busy and the rest idle-only; HEFT
        // spreads work and pays communication energy — an adversarial
        // energy gap must exist
        let perturber = GeneralPerturber::default();
        let res = metric_search(
            ENERGY,
            &Heft,
            &FastestNode,
            &perturber,
            PisaConfig {
                i_max: 200,
                restarts: 2,
                seed: 3,
                ..PisaConfig::default()
            },
            &|rng| initial_instance(rng),
        );
        assert!(
            res.ratio > 1.0,
            "no energy-adversarial instance: {}",
            res.ratio
        );
    }

    #[test]
    fn metric_search_is_deterministic() {
        let perturber = GeneralPerturber::default();
        let cfg = PisaConfig {
            i_max: 100,
            restarts: 1,
            seed: 5,
            ..PisaConfig::default()
        };
        let a = metric_search(
            Objective::RentalCost,
            &Heft,
            &FastestNode,
            &perturber,
            cfg,
            &|r| initial_instance(r),
        );
        let b = metric_search(
            Objective::RentalCost,
            &Heft,
            &FastestNode,
            &perturber,
            cfg,
            &|r| initial_instance(r),
        );
        assert_eq!(a.ratio, b.ratio);
    }
}
