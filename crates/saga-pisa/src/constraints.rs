//! Per-scheduler perturbation restrictions (Section VI).
//!
//! Some schedulers were designed for partially homogeneous systems, so PISA
//! only searches the space they were designed for: for **ETF, FCP and FLB**
//! node speeds start at 1 and are never perturbed; for **BIL, GDL, FCP and
//! FLB** link strengths start at 1 and are never perturbed. (The paper
//! freezes exactly these aspects; BIL/GDL are unrelated-machines designs
//! whose evaluations used homogeneous links.)

use crate::perturb::GeneralPerturber;
use saga_core::{Instance, NodeId};

/// Whether the named scheduler assumes homogeneous node speeds.
pub fn fixed_node_weights(name: &str) -> bool {
    matches!(name, "ETF" | "FCP" | "FLB")
}

/// Whether the named scheduler assumes homogeneous link strengths.
pub fn fixed_link_weights(name: &str) -> bool {
    matches!(name, "BIL" | "GDL" | "FCP" | "FLB")
}

/// Restricts a perturber for a *pair* of schedulers: an aspect frozen for
/// either side is frozen for the comparison (both schedulers run on the same
/// instances).
pub fn restrict_for_pair(mut p: GeneralPerturber, a: &str, b: &str) -> GeneralPerturber {
    if fixed_node_weights(a) || fixed_node_weights(b) {
        p.node_weights = false;
    }
    if fixed_link_weights(a) || fixed_link_weights(b) {
        p.edge_weights = false;
    }
    p
}

/// Homogenizes the aspects of `inst` that are frozen for the pair: speeds
/// and/or (finite) links set to 1, per Section VI's initialization.
pub fn homogenize_for_pair(inst: &mut Instance, a: &str, b: &str) {
    if fixed_node_weights(a) || fixed_node_weights(b) {
        for v in 0..inst.network.node_count() as u32 {
            inst.network.set_speed(NodeId(v), 1.0);
        }
    }
    if fixed_link_weights(a) || fixed_link_weights(b) {
        let n = inst.network.node_count() as u32;
        for u in 0..n {
            for v in (u + 1)..n {
                if inst.network.link(NodeId(u), NodeId(v)).is_finite() {
                    inst.network.set_link(NodeId(u), NodeId(v), 1.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::{initial_instance, Perturber};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_restriction_table() {
        for s in ["ETF", "FCP", "FLB"] {
            assert!(fixed_node_weights(s), "{s}");
        }
        for s in ["BIL", "GDL", "FCP", "FLB"] {
            assert!(fixed_link_weights(s), "{s}");
        }
        for s in [
            "HEFT",
            "CPoP",
            "MinMin",
            "MaxMin",
            "WBA",
            "OLB",
            "MCT",
            "MET",
            "Duplex",
            "FastestNode",
        ] {
            assert!(!fixed_node_weights(s), "{s}");
            assert!(!fixed_link_weights(s), "{s}");
        }
    }

    #[test]
    fn restricted_pair_never_perturbs_frozen_aspects() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut inst = initial_instance(&mut rng);
        homogenize_for_pair(&mut inst, "ETF", "BIL");
        let p = restrict_for_pair(GeneralPerturber::default(), "ETF", "BIL");
        for _ in 0..500 {
            p.perturb(&mut inst, &mut rng);
        }
        for v in inst.network.nodes() {
            assert_eq!(inst.network.speed(v), 1.0);
            for u in inst.network.nodes() {
                if u != v {
                    assert_eq!(inst.network.link(u, v), 1.0);
                }
            }
        }
    }

    #[test]
    fn unrestricted_pair_keeps_all_ops() {
        let p = restrict_for_pair(GeneralPerturber::default(), "HEFT", "CPoP");
        assert!(p.node_weights && p.edge_weights);
    }

    #[test]
    fn one_sided_restriction_applies_to_the_pair() {
        let p = restrict_for_pair(GeneralPerturber::default(), "HEFT", "FCP");
        assert!(!p.node_weights);
        assert!(!p.edge_weights);
        let p = restrict_for_pair(GeneralPerturber::default(), "GDL", "HEFT");
        assert!(p.node_weights);
        assert!(!p.edge_weights);
    }

    #[test]
    fn homogenize_sets_unit_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut inst = initial_instance(&mut rng);
        homogenize_for_pair(&mut inst, "FLB", "HEFT");
        for v in inst.network.nodes() {
            assert_eq!(inst.network.speed(v), 1.0);
        }
    }
}
