//! A library of published adversarial instances — the paper's future-work
//! plan "to develop a framework for publishing the problem instances
//! identified by PISA so that other researchers can use them to evaluate
//! their own algorithms".
//!
//! Witnesses serialize to JSON-lines; a new scheduler can be scored against
//! every stored witness without re-running the (comparatively expensive)
//! annealing search.

use crate::makespan_ratio;
use saga_core::Instance;
use saga_schedulers::Scheduler;
use serde::{Deserialize, Serialize};

/// One published adversarial instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WitnessRecord {
    /// Scheduler whose weakness the instance exhibits.
    pub target: String,
    /// Baseline it was compared against.
    pub baseline: String,
    /// Recorded makespan ratio; `None` encodes an unbounded (`> 1000`) cell.
    pub ratio: Option<f64>,
    /// The instance, in [`Instance::to_json`] form (JSON-safe infinities).
    pub instance: serde_json::Value,
}

impl WitnessRecord {
    /// Builds a record from a found instance.
    pub fn new(target: &str, baseline: &str, ratio: f64, inst: &Instance) -> Self {
        WitnessRecord {
            target: target.to_string(),
            baseline: baseline.to_string(),
            ratio: ratio.is_finite().then_some(ratio),
            // saga-lint: allow(error-discipline) — parsing the JSON that Instance::to_json just produced; the round-trip is covered by the goldens
            instance: serde_json::from_str(&inst.to_json()).expect("instance JSON is valid"),
        }
    }

    /// Decodes the stored instance. Fails on a hand-edited or corrupted
    /// record — library files come from disk, so the parse is fallible.
    pub fn instance(&self) -> Result<Instance, serde_json::Error> {
        Instance::from_json(&self.instance.to_string())
    }

    /// The recorded ratio as an `f64` (`inf` for unbounded).
    pub fn ratio_value(&self) -> f64 {
        self.ratio.unwrap_or(f64::INFINITY)
    }
}

/// A collection of witnesses with JSONL persistence.
#[derive(Debug, Clone, Default)]
pub struct WitnessLibrary {
    /// The stored records.
    pub records: Vec<WitnessRecord>,
}

impl WitnessLibrary {
    /// Collects every off-diagonal witness of a pairwise matrix.
    pub fn from_matrix(m: &crate::PairwiseMatrix) -> Self {
        let n = m.names.len();
        let mut records = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if let Some(inst) = &m.witnesses[i][j] {
                    records.push(WitnessRecord::new(
                        &m.names[j],
                        &m.names[i],
                        m.ratios[i][j],
                        inst,
                    ));
                }
            }
        }
        WitnessLibrary { records }
    }

    /// Serializes to JSON lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            // saga-lint: allow(error-discipline) — WitnessRecord has no map keys or fallible Serialize impls; the vendored serializer cannot fail on it
            out.push_str(&serde_json::to_string(r).expect("record serializes"));
            out.push('\n');
        }
        out
    }

    /// Parses JSON lines (blank lines ignored).
    pub fn from_jsonl(s: &str) -> Result<Self, serde_json::Error> {
        let mut records = Vec::new();
        for line in s.lines() {
            if line.trim().is_empty() {
                continue;
            }
            records.push(serde_json::from_str(line)?);
        }
        Ok(WitnessLibrary { records })
    }

    /// Re-checks every stored ratio by re-running both schedulers; returns
    /// the number of mismatches (0 for a healthy library). One pooled
    /// scheduling context serves every witness (cost tables pinned per
    /// instance, shared by the two runs) instead of each `schedule()` call
    /// allocating its own.
    pub fn revalidate(&self) -> usize {
        let pool = saga_core::ContextPool::new();
        let mut ctx = pool.take();
        let mut bad = 0;
        for r in &self.records {
            let (Some(t), Some(b)) = (
                saga_schedulers::by_name(&r.target),
                saga_schedulers::by_name(&r.baseline),
            ) else {
                bad += 1;
                continue;
            };
            // an undecodable instance is a mismatch by definition
            let Ok(inst) = r.instance() else {
                bad += 1;
                continue;
            };
            let ratio = ctx.with_pinned(&inst, |ctx| {
                makespan_ratio(t.makespan_into(&inst, ctx), b.makespan_into(&inst, ctx))
            });
            let recorded = r.ratio_value();
            let matches = (ratio.is_infinite() && recorded.is_infinite())
                || (ratio - recorded).abs() <= 1e-6 * recorded.abs().max(1.0);
            if !matches {
                bad += 1;
            }
        }
        bad
    }

    /// Scores a (possibly new) scheduler against every witness: for each
    /// record, the candidate's makespan ratio against the record's baseline
    /// on the stored instance. Returns `(target, baseline, stored, candidate)`
    /// rows — "would the new scheduler fall into the same traps?". Reuses
    /// one pooled context across all witnesses, like
    /// [`revalidate`](Self::revalidate).
    pub fn evaluate(&self, candidate: &dyn Scheduler) -> Vec<(String, String, f64, f64)> {
        let pool = saga_core::ContextPool::new();
        let mut ctx = pool.take();
        self.records
            .iter()
            .filter_map(|r| {
                let baseline = saga_schedulers::by_name(&r.baseline)?;
                let inst = r.instance().ok()?;
                let ratio = ctx.with_pinned(&inst, |ctx| {
                    makespan_ratio(
                        candidate.makespan_into(&inst, ctx),
                        baseline.makespan_into(&inst, ctx),
                    )
                });
                Some((r.target.clone(), r.baseline.clone(), r.ratio_value(), ratio))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annealer::PisaConfig;
    use crate::pairwise_matrix;
    use saga_schedulers::Scheduler;

    fn small_library() -> WitnessLibrary {
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(saga_schedulers::Heft),
            Box::new(saga_schedulers::FastestNode),
        ];
        let m = pairwise_matrix(
            &schedulers,
            PisaConfig {
                i_max: 80,
                restarts: 1,
                seed: 77,
                ..PisaConfig::default()
            },
        );
        WitnessLibrary::from_matrix(&m)
    }

    #[test]
    fn jsonl_round_trip() {
        let lib = small_library();
        assert_eq!(lib.records.len(), 2);
        let text = lib.to_jsonl();
        let back = WitnessLibrary::from_jsonl(&text).unwrap();
        assert_eq!(back.records.len(), 2);
        for (a, b) in lib.records.iter().zip(&back.records) {
            assert_eq!(a.target, b.target);
            assert_eq!(a.ratio, b.ratio);
            assert_eq!(
                a.instance().unwrap().to_json(),
                b.instance().unwrap().to_json()
            );
        }
    }

    #[test]
    fn revalidation_passes_for_fresh_library() {
        let lib = small_library();
        assert_eq!(lib.revalidate(), 0);
    }

    #[test]
    fn evaluate_scores_candidates() {
        let lib = small_library();
        let rows = lib.evaluate(&saga_schedulers::Cpop);
        assert_eq!(rows.len(), lib.records.len());
        for (_, _, stored, candidate) in rows {
            assert!(stored > 0.0);
            assert!(candidate >= 0.0);
        }
    }

    #[test]
    fn unbounded_ratio_round_trips_as_none() {
        let mut g = saga_core::TaskGraph::new();
        g.add_task("a", 1.0);
        let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0], 1.0), g);
        let r = WitnessRecord::new("HEFT", "CPoP", f64::INFINITY, &inst);
        assert!(r.ratio.is_none());
        let line = serde_json::to_string(&r).unwrap();
        let back: WitnessRecord = serde_json::from_str(&line).unwrap();
        assert!(back.ratio_value().is_infinite());
    }
}
