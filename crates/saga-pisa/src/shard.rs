//! Deterministic shard partition for distributed grid runs.
//!
//! Every grid bin owns a list of [`SearchCell`]s whose checkpoint keys
//! ([`SearchCell::key`]) are pure functions of the cell's configuration.
//! `--shard i/N` partitions that list by `fnv1a(key) % N == i`: a stateless
//! assignment that depends only on the cell's identity — not on thread
//! count, not on the order cells were generated, and not on lockstep
//! `plan_units` grouping (bins shard *first*, then plan execution units
//! within the shard) — so N hosts each run a disjoint `1/N` slice against
//! their own checkpoint JSONL, and `saga-merge` reassembles the union.
//!
//! The same partition applies to any keyed record stream (fig2's
//! per-dataset rows use it too, via [`ShardSpec::contains_key`]): the only
//! contract is a stable key string.

use crate::runner::SearchCell;
use saga_core::fnv1a;
use std::fmt;
use std::path::{Path, PathBuf};

/// One host's slice of a sharded grid: shard `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: u64,
    /// Total number of shards, `>= 1`.
    pub count: u64,
}

impl ShardSpec {
    /// The degenerate single-shard spec: contains every key, appends no
    /// path suffix — a `--shard 0/1` run is byte-identical to an unsharded
    /// one.
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// Parses `"i/N"` (e.g. `"0/3"`). Errors on malformed input, `N == 0`,
    /// or `i >= N`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{s}` is not of the form i/N"))?;
        let index: u64 = i
            .trim()
            .parse()
            .map_err(|_| format!("shard index `{i}` is not an integer"))?;
        let count: u64 = n
            .trim()
            .parse()
            .map_err(|_| format!("shard count `{n}` is not an integer"))?;
        if count == 0 {
            return Err(format!("shard spec `{s}`: count must be >= 1"));
        }
        if index >= count {
            return Err(format!(
                "shard spec `{s}`: index {index} out of range for {count} shard(s)"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether this spec covers the whole grid (`count == 1`).
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// Whether `key` belongs to this shard: `fnv1a(key) % count == index`.
    /// Every key belongs to exactly one shard of a given count (exact
    /// cover), and the assignment is stable across processes and hosts.
    pub fn contains_key(&self, key: &str) -> bool {
        fnv1a(key.as_bytes()) % self.count == self.index
    }

    /// The default checkpoint path for this shard: inserts
    /// `.shard{i}of{N}` before the extension (`results/fig4_cells.jsonl` →
    /// `results/fig4_cells.shard0of3.jsonl`). A full spec returns the path
    /// unchanged, so 1-host runs keep their historical filenames.
    pub fn checkpoint_path(&self, base: &Path) -> PathBuf {
        if self.is_full() {
            return base.to_path_buf();
        }
        let stem = base
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("checkpoint");
        let name = match base.extension().and_then(|e| e.to_str()) {
            Some(ext) => format!("{stem}.shard{}of{}.{ext}", self.index, self.count),
            None => format!("{stem}.shard{}of{}", self.index, self.count),
        };
        base.with_file_name(name)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Filters `cells` down to the ones in `shard`, preserving grid order.
/// Sharding happens *before* lockstep planning: the shard decides which
/// cells a host owns, then `plan_units` groups same-shape cells within that
/// subset — so the partition is independent of lane packing.
pub fn shard_cells(cells: Vec<SearchCell>, shard: ShardSpec) -> Vec<SearchCell> {
    if shard.is_full() {
        return cells;
    }
    cells
        .into_iter()
        .filter(|c| shard.contains_key(&c.key()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_specs() {
        assert_eq!(ShardSpec::parse("0/1").unwrap(), ShardSpec::FULL);
        assert_eq!(
            ShardSpec::parse("2/5").unwrap(),
            ShardSpec { index: 2, count: 5 }
        );
        assert_eq!(ShardSpec::parse("2/5").unwrap().to_string(), "2/5");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["", "3", "1/0", "3/3", "5/2", "a/b", "-1/2", "1/2/3"] {
            assert!(ShardSpec::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn every_key_lands_in_exactly_one_shard() {
        let keys: Vec<String> = (0..500).map(|i| format!("cell#{i}")).collect();
        for count in [1u64, 2, 3, 7] {
            for key in &keys {
                let owners: Vec<u64> = (0..count)
                    .filter(|&index| ShardSpec { index, count }.contains_key(key))
                    .collect();
                assert_eq!(owners.len(), 1, "key {key} at N={count}: {owners:?}");
            }
        }
    }

    #[test]
    fn full_shard_is_identity() {
        assert!(ShardSpec::FULL.is_full());
        assert!(ShardSpec::FULL.contains_key("anything"));
        let p = Path::new("results/fig4_cells.jsonl");
        assert_eq!(ShardSpec::FULL.checkpoint_path(p), p);
    }

    #[test]
    fn shard_paths_embed_index_and_count() {
        let spec = ShardSpec { index: 1, count: 3 };
        assert_eq!(
            spec.checkpoint_path(Path::new("results/fig4_cells.jsonl")),
            Path::new("results/fig4_cells.shard1of3.jsonl")
        );
        assert_eq!(
            spec.checkpoint_path(Path::new("noext")),
            Path::new("noext.shard1of3")
        );
    }
}
