//! The all-pairs adversarial comparison behind the paper's Fig. 4.
//!
//! For every ordered pair `(baseline i, target j)`, run PISA to find the
//! instance maximizing `m_j / m_i`. The grid is expressed as
//! [`SearchCell`]s ([`pairwise_cells`]) so any cell executor reproduces it:
//! [`pairwise_matrix`] drives the plain pooled runner, and the `fig4`
//! binary drives the experiment engine's checkpointing `run_cells` — both
//! bit-identical, at any thread count (the matrix is 15×15 with 5 restarts
//! each — over a thousand annealing runs).

use crate::annealer::PisaConfig;
use crate::runner::{cell_config, run_cells_pooled, SearchCell};
use crate::PisaResult;
use saga_core::Instance;
use saga_schedulers::Scheduler;

/// The Fig. 4 result matrix.
pub struct PairwiseMatrix {
    /// Scheduler names, in both row and column order.
    pub names: Vec<String>,
    /// `ratios[i][j]`: worst-case ratio of scheduler `j` (target) against
    /// scheduler `i` (baseline); `1.0` on the diagonal by construction.
    pub ratios: Vec<Vec<f64>>,
    /// The instance realizing each off-diagonal cell.
    pub witnesses: Vec<Vec<Option<Instance>>>,
}

impl PairwiseMatrix {
    /// Column-wise maxima — the paper's "Worst" row: the worst case found
    /// for scheduler `j` against *any* baseline.
    pub fn worst_row(&self) -> Vec<f64> {
        let n = self.names.len();
        (0..n)
            .map(|j| {
                (0..n)
                    .map(|i| self.ratios[i][j])
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// Formats a cell the way the paper's heatmaps do: `> 1000` for blowups,
    /// `> 5.0` for large-but-bounded cells, otherwise two decimals.
    pub fn format_cell(r: f64) -> String {
        if r.is_infinite() || r > 1000.0 {
            "> 1000".to_string()
        } else if r > 5.0 {
            "> 5.0".to_string()
        } else {
            format!("{r:.2}")
        }
    }
}

/// Builds the Fig. 4 cell grid for `schedulers`: one [`SearchCell`] per
/// ordered pair `(baseline i, target j)`, row-major with the diagonal
/// skipped. Cell `k` runs on the stream `derive_seed(config.seed, k)`, so
/// every cell is independent and reproducible whatever executes it.
pub fn pairwise_cells(schedulers: &[Box<dyn Scheduler>], config: PisaConfig) -> Vec<SearchCell> {
    let n = schedulers.len();
    let mut cells = Vec::with_capacity(n * n - n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            cells.push(SearchCell::pair(
                schedulers[j].name(),
                schedulers[i].name(),
                cell_config(config, cells.len() as u64),
            ));
        }
    }
    cells
}

impl PairwiseMatrix {
    /// Assembles the matrix from per-cell results in [`pairwise_cells`]
    /// order (row-major, diagonal skipped).
    pub fn from_cell_results(names: Vec<String>, results: Vec<PisaResult>) -> Self {
        let n = names.len();
        assert_eq!(results.len(), n * n - n, "one result per off-diagonal cell");
        let mut ratios = vec![vec![1.0f64; n]; n];
        let mut witnesses: Vec<Vec<Option<Instance>>> = (0..n).map(|_| vec![None; n]).collect();
        let mut it = results.into_iter();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let res = it.next().expect("length checked above");
                ratios[i][j] = res.ratio;
                witnesses[i][j] = Some(res.instance);
            }
        }
        PairwiseMatrix {
            names,
            ratios,
            witnesses,
        }
    }
}

/// Runs PISA for every ordered pair of `schedulers` and assembles the
/// Fig. 4 matrix on the pooled cell runner. `config.seed` is combined with
/// the pair index so every cell gets an independent, reproducible stream.
pub fn pairwise_matrix(schedulers: &[Box<dyn Scheduler>], config: PisaConfig) -> PairwiseMatrix {
    let names: Vec<String> = schedulers.iter().map(|s| s.name().to_string()).collect();
    let cells = pairwise_cells(schedulers, config);
    PairwiseMatrix::from_cell_results(names, run_cells_pooled(&cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_schedulers::{Cpop, FastestNode, Heft};

    fn tiny_config() -> PisaConfig {
        PisaConfig {
            restarts: 1,
            i_max: 120,
            seed: 7,
            ..PisaConfig::default()
        }
    }

    #[test]
    fn matrix_shape_and_diagonal() {
        let schedulers: Vec<Box<dyn Scheduler>> =
            vec![Box::new(Heft), Box::new(Cpop), Box::new(FastestNode)];
        let m = pairwise_matrix(&schedulers, tiny_config());
        assert_eq!(m.names, vec!["HEFT", "CPoP", "FastestNode"]);
        assert_eq!(m.ratios.len(), 3);
        for i in 0..3 {
            assert_eq!(m.ratios[i][i], 1.0);
            assert!(m.witnesses[i][i].is_none());
        }
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(m.ratios[i][j] >= 0.0);
                    assert!(m.witnesses[i][j].is_some());
                }
            }
        }
    }

    #[test]
    fn worst_row_is_columnwise_max() {
        let m = PairwiseMatrix {
            names: vec!["a".into(), "b".into()],
            ratios: vec![vec![1.0, 3.0], vec![2.0, 1.0]],
            witnesses: vec![vec![None, None], vec![None, None]],
        };
        assert_eq!(m.worst_row(), vec![2.0, 3.0]);
    }

    #[test]
    fn format_cell_matches_paper_buckets() {
        assert_eq!(PairwiseMatrix::format_cell(1.234), "1.23");
        assert_eq!(PairwiseMatrix::format_cell(7.0), "> 5.0");
        assert_eq!(PairwiseMatrix::format_cell(f64::INFINITY), "> 1000");
        assert_eq!(PairwiseMatrix::format_cell(5000.0), "> 1000");
    }

    #[test]
    fn adversarial_cells_usually_exceed_one() {
        // even a tiny budget finds >1 ratios for most pairs among these
        let schedulers: Vec<Box<dyn Scheduler>> =
            vec![Box::new(Heft), Box::new(Cpop), Box::new(FastestNode)];
        let m = pairwise_matrix(&schedulers, tiny_config());
        let mut above_one = 0;
        let mut total = 0;
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    total += 1;
                    if m.ratios[i][j] > 1.0 {
                        above_one += 1;
                    }
                }
            }
        }
        assert!(
            above_one * 2 >= total,
            "{above_one}/{total} cells above 1.0"
        );
    }
}
