//! The all-pairs adversarial comparison behind the paper's Fig. 4.
//!
//! For every ordered pair `(baseline i, target j)`, run PISA to find the
//! instance maximizing `m_j / m_i`. Pairs are independent, so they fan out
//! across cores with rayon (the matrix is 15×15 with 5 restarts each — over
//! a thousand annealing runs).

use crate::annealer::{Pisa, PisaConfig};
use crate::constraints;
use crate::perturb::{initial_instance, GeneralPerturber};
use rayon::prelude::*;
use saga_core::Instance;
use saga_schedulers::Scheduler;

/// The Fig. 4 result matrix.
pub struct PairwiseMatrix {
    /// Scheduler names, in both row and column order.
    pub names: Vec<String>,
    /// `ratios[i][j]`: worst-case ratio of scheduler `j` (target) against
    /// scheduler `i` (baseline); `1.0` on the diagonal by construction.
    pub ratios: Vec<Vec<f64>>,
    /// The instance realizing each off-diagonal cell.
    pub witnesses: Vec<Vec<Option<Instance>>>,
}

impl PairwiseMatrix {
    /// Column-wise maxima — the paper's "Worst" row: the worst case found
    /// for scheduler `j` against *any* baseline.
    pub fn worst_row(&self) -> Vec<f64> {
        let n = self.names.len();
        (0..n)
            .map(|j| {
                (0..n)
                    .map(|i| self.ratios[i][j])
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// Formats a cell the way the paper's heatmaps do: `> 1000` for blowups,
    /// `> 5.0` for large-but-bounded cells, otherwise two decimals.
    pub fn format_cell(r: f64) -> String {
        if r.is_infinite() || r > 1000.0 {
            "> 1000".to_string()
        } else if r > 5.0 {
            "> 5.0".to_string()
        } else {
            format!("{r:.2}")
        }
    }
}

/// Runs PISA for every ordered pair of `schedulers` and assembles the
/// Fig. 4 matrix. `config.seed` is combined with the pair index so every
/// cell gets an independent, reproducible stream.
pub fn pairwise_matrix(schedulers: &[Box<dyn Scheduler>], config: PisaConfig) -> PairwiseMatrix {
    let names: Vec<String> = schedulers.iter().map(|s| s.name().to_string()).collect();
    let n = schedulers.len();
    let cells: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j)
        .collect();
    let results: Vec<((usize, usize), (f64, Instance))> = cells
        .par_iter()
        .map(|&(i, j)| {
            let baseline = &*schedulers[i];
            let target = &*schedulers[j];
            let perturber = constraints::restrict_for_pair(
                GeneralPerturber::default(),
                target.name(),
                baseline.name(),
            );
            let pisa = Pisa {
                target,
                baseline,
                perturber: &perturber,
                config: PisaConfig {
                    seed: config
                        .seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((i * n + j) as u64),
                    ..config
                },
            };
            let tname = target.name().to_string();
            let bname = baseline.name().to_string();
            let res = pisa.run(&move |rng| {
                let mut inst = initial_instance(rng);
                constraints::homogenize_for_pair(&mut inst, &tname, &bname);
                inst
            });
            ((i, j), (res.ratio, res.instance))
        })
        .collect();

    let mut ratios = vec![vec![1.0f64; n]; n];
    let mut witnesses: Vec<Vec<Option<Instance>>> = (0..n).map(|_| vec![None; n]).collect();
    for ((i, j), (r, inst)) in results {
        ratios[i][j] = r;
        witnesses[i][j] = Some(inst);
    }
    PairwiseMatrix {
        names,
        ratios,
        witnesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_schedulers::{Cpop, FastestNode, Heft};

    fn tiny_config() -> PisaConfig {
        PisaConfig {
            restarts: 1,
            i_max: 120,
            seed: 7,
            ..PisaConfig::default()
        }
    }

    #[test]
    fn matrix_shape_and_diagonal() {
        let schedulers: Vec<Box<dyn Scheduler>> =
            vec![Box::new(Heft), Box::new(Cpop), Box::new(FastestNode)];
        let m = pairwise_matrix(&schedulers, tiny_config());
        assert_eq!(m.names, vec!["HEFT", "CPoP", "FastestNode"]);
        assert_eq!(m.ratios.len(), 3);
        for i in 0..3 {
            assert_eq!(m.ratios[i][i], 1.0);
            assert!(m.witnesses[i][i].is_none());
        }
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(m.ratios[i][j] >= 0.0);
                    assert!(m.witnesses[i][j].is_some());
                }
            }
        }
    }

    #[test]
    fn worst_row_is_columnwise_max() {
        let m = PairwiseMatrix {
            names: vec!["a".into(), "b".into()],
            ratios: vec![vec![1.0, 3.0], vec![2.0, 1.0]],
            witnesses: vec![vec![None, None], vec![None, None]],
        };
        assert_eq!(m.worst_row(), vec![2.0, 3.0]);
    }

    #[test]
    fn format_cell_matches_paper_buckets() {
        assert_eq!(PairwiseMatrix::format_cell(1.234), "1.23");
        assert_eq!(PairwiseMatrix::format_cell(7.0), "> 5.0");
        assert_eq!(PairwiseMatrix::format_cell(f64::INFINITY), "> 1000");
        assert_eq!(PairwiseMatrix::format_cell(5000.0), "> 1000");
    }

    #[test]
    fn adversarial_cells_usually_exceed_one() {
        // even a tiny budget finds >1 ratios for most pairs among these
        let schedulers: Vec<Box<dyn Scheduler>> =
            vec![Box::new(Heft), Box::new(Cpop), Box::new(FastestNode)];
        let m = pairwise_matrix(&schedulers, tiny_config());
        let mut above_one = 0;
        let mut total = 0;
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    total += 1;
                    if m.ratios[i][j] > 1.0 {
                        above_one += 1;
                    }
                }
            }
        }
        assert!(
            above_one * 2 >= total,
            "{above_one}/{total} cells above 1.0"
        );
    }
}
