//! Search-strategy ablation: is simulated annealing actually pulling its
//! weight in PISA, or would a dumber search find the same adversarial
//! instances? (A design-choice question DESIGN.md calls out; the paper
//! names genetic algorithms and other meta-heuristics as future work.)
//!
//! Three strategies share the PISA objective, perturbations and budget:
//!
//! * [`Strategy::Annealing`] — PISA proper (Metropolis acceptance, cooling);
//! * [`Strategy::HillClimb`] — accept only strict improvements;
//! * [`Strategy::RandomWalk`] — accept every perturbation (best-so-far is
//!   still tracked, so this is random search through instance space).

use crate::annealer::{AnnealScratch, PairTraces, Pisa, PisaConfig, PisaResult};
use crate::perturb::Perturber;
use rand::rngs::StdRng;
use rand::Rng;
use saga_core::{incremental_enabled, DirtyRegion, Instance};
use saga_schedulers::Scheduler;

/// An adversarial-search acceptance strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Metropolis acceptance with geometric cooling (PISA).
    Annealing,
    /// Greedy: accept only improvements over the current instance.
    HillClimb,
    /// Accept everything; equivalent to a random walk with memory.
    RandomWalk,
}

impl Strategy {
    /// All strategies, for sweep loops.
    pub const ALL: [Strategy; 3] = [
        Strategy::Annealing,
        Strategy::HillClimb,
        Strategy::RandomWalk,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Annealing => "annealing",
            Strategy::HillClimb => "hill-climb",
            Strategy::RandomWalk => "random-walk",
        }
    }
}

/// Runs the adversarial search with the chosen `strategy`, using the same
/// restart/iteration budget as [`Pisa::run`] so results are comparable.
pub fn search(
    target: &dyn Scheduler,
    baseline: &dyn Scheduler,
    perturber: &dyn Perturber,
    config: PisaConfig,
    strategy: Strategy,
    init: &dyn Fn(&mut StdRng) -> Instance,
) -> PisaResult {
    let mut ctx = saga_core::SchedContext::new();
    let mut scratch = AnnealScratch::default();
    search_in(
        target,
        baseline,
        perturber,
        config,
        strategy,
        init,
        &mut ctx,
        &mut scratch,
    )
}

/// [`search`] borrowing the scheduling context and scratch instances from
/// the caller — the batch-runner entry point (one warm context per worker,
/// reused across every cell and restart).
#[allow(clippy::too_many_arguments)] // mirrors `search` plus the two borrows
pub fn search_in(
    target: &dyn Scheduler,
    baseline: &dyn Scheduler,
    perturber: &dyn Perturber,
    config: PisaConfig,
    strategy: Strategy,
    init: &dyn Fn(&mut StdRng) -> Instance,
    ctx: &mut saga_core::SchedContext,
    scratch: &mut AnnealScratch,
) -> PisaResult {
    let pisa = Pisa {
        target,
        baseline,
        perturber,
        config,
    };
    if strategy == Strategy::Annealing {
        return pisa.run_in(ctx, scratch, init);
    }
    let mut traces = std::mem::take(&mut scratch.traces);
    let res = crate::annealer::best_over_restarts(config, init, scratch, |start, rng, scratch| {
        run_flat(&pisa, start, rng, strategy, ctx, &mut traces, scratch)
    });
    scratch.traces = traces;
    res
}

/// Temperature-free search loop, budget-matched to the annealing run (which
/// stops when `T` crosses `T_min` or at `I_max`, whichever comes first).
/// Returns `(best ratio, initial ratio, evaluations)`; the best instance is
/// left in `scratch.best`.
fn run_flat(
    pisa: &Pisa<'_>,
    start: &Instance,
    rng: &mut StdRng,
    strategy: Strategy,
    ctx: &mut saga_core::SchedContext,
    traces: &mut PairTraces,
    scratch: &mut AnnealScratch,
) -> (f64, f64, usize) {
    let cfg = &pisa.config;
    let natural = ((cfg.t_min / cfg.t_max).ln() / cfg.alpha.ln()).ceil() as usize;
    let iters = natural.min(cfg.i_max);
    let force_full = !incremental_enabled();
    let initial_ratio = pisa.ratio_incremental(start, ctx, traces, &DirtyRegion::full());
    let mut evaluations = 1;
    crate::annealer::fill(&mut scratch.current, start);
    crate::annealer::fill(&mut scratch.candidate, start);
    crate::annealer::fill(&mut scratch.best, start);
    let current = scratch.current.as_mut().expect("filled above");
    let candidate = scratch.candidate.as_mut().expect("filled above");
    let best = scratch.best.as_mut().expect("filled above");
    let mut cur_ratio = initial_ratio;
    let mut best_ratio = initial_ratio;
    // dirt accumulated since the traces' last evaluation — same protocol
    // as the annealing loop's (see `run_annealing`)
    let mut pending = DirtyRegion::clean();
    for _ in 0..iters {
        let accepts = |r: f64, cur: f64| match strategy {
            Strategy::HillClimb => r > cur,
            Strategy::RandomWalk => true,
            Strategy::Annealing => unreachable!("handled by Pisa::run_in"),
        };
        // in-place fast path with bitwise undo, mirroring the annealer's
        if let Some(undo) = pisa.perturber.perturb_undoable(current, rng) {
            let dirty = if force_full {
                DirtyRegion::full()
            } else {
                let mut d = undo.dirty_region();
                d.merge(&pending);
                d
            };
            let r = pisa.ratio_incremental(current, ctx, traces, &dirty);
            evaluations += 1;
            pending = DirtyRegion::clean();
            if r > best_ratio {
                best.clone_from(current);
                best_ratio = r;
            }
            if accepts(r, cur_ratio) {
                cur_ratio = r;
            } else {
                undo.revert(current);
                pending = undo.revert_dirty_region();
            }
        } else {
            candidate.clone_from(current);
            pisa.perturber.perturb(candidate, rng);
            let r = pisa.ratio_incremental(candidate, ctx, traces, &DirtyRegion::full());
            evaluations += 1;
            if r > best_ratio {
                best.clone_from(candidate);
                best_ratio = r;
            }
            if accepts(r, cur_ratio) {
                std::mem::swap(current, candidate);
                cur_ratio = r;
                pending = DirtyRegion::clean();
            } else {
                pending = DirtyRegion::full();
            }
        }
    }
    let _ = (cur_ratio, rng.gen::<u8>()); // keep rng streams distinct per restart
    (best_ratio, initial_ratio, evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::{initial_instance, GeneralPerturber};
    use saga_schedulers::{Cpop, Heft};

    fn quick(seed: u64) -> PisaConfig {
        PisaConfig {
            i_max: 150,
            restarts: 2,
            seed,
            ..PisaConfig::default()
        }
    }

    #[test]
    fn all_strategies_return_valid_results() {
        let p = GeneralPerturber::default();
        for strategy in Strategy::ALL {
            let res = search(&Heft, &Cpop, &p, quick(1), strategy, &|rng| {
                initial_instance(rng)
            });
            assert!(res.ratio >= res.initial_ratio, "{}", strategy.name());
            assert!(res.evaluations > 1);
        }
    }

    #[test]
    fn budgets_are_comparable() {
        let p = GeneralPerturber::default();
        let a = search(&Heft, &Cpop, &p, quick(2), Strategy::Annealing, &|rng| {
            initial_instance(rng)
        });
        let h = search(&Heft, &Cpop, &p, quick(2), Strategy::HillClimb, &|rng| {
            initial_instance(rng)
        });
        // same restart count, same per-run iteration budget
        assert_eq!(a.evaluations, h.evaluations);
    }

    #[test]
    fn strategies_are_deterministic() {
        let p = GeneralPerturber::default();
        for strategy in Strategy::ALL {
            let a = search(&Heft, &Cpop, &p, quick(3), strategy, &|rng| {
                initial_instance(rng)
            });
            let b = search(&Heft, &Cpop, &p, quick(3), strategy, &|rng| {
                initial_instance(rng)
            });
            assert_eq!(a.ratio, b.ratio, "{}", strategy.name());
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Annealing.name(), "annealing");
        assert_eq!(Strategy::ALL.len(), 3);
    }
}
