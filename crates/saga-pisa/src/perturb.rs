//! The PISA perturbation operators.
//!
//! Section VI defines six equal-probability perturbations over `(N, G)`:
//! nudge a network node weight, a network edge weight, a task weight, or a
//! dependency weight by `U(-1/10, +1/10)` clipped into `[0, 1]`; add a
//! random acyclic dependency; or remove a random dependency. Section VII
//! re-scales the weight nudges to the ranges observed in real execution
//! traces and removes the structural and network-edge operators so the
//! search stays within rigid, application-shaped instances.

use rand::rngs::StdRng;
use rand::Rng;
use saga_core::{Instance, NodeId, TaskId};

/// A mutation strategy over problem instances.
pub trait Perturber: Send + Sync {
    /// Mutates `inst` in place using `rng`.
    fn perturb(&self, inst: &mut Instance, rng: &mut StdRng);

    /// Like [`perturb`](Self::perturb), but returns a record that
    /// [`PerturbUndo::revert`] can use to restore `inst` bitwise — letting
    /// the annealer mutate its current instance in place and undo on
    /// rejection instead of cloning a candidate every iteration. Returns
    /// `None` when the perturber does not support undo (the annealer then
    /// falls back to the clone-based path). The RNG consumption must be
    /// identical to `perturb`'s.
    fn perturb_undoable(&self, inst: &mut Instance, rng: &mut StdRng) -> Option<PerturbUndo> {
        let _ = (inst, rng);
        None
    }
}

/// A reversible record of one applied perturbation (see
/// [`Perturber::perturb_undoable`]). Reverting restores the instance
/// *bitwise*, including adjacency-list order.
#[derive(Debug, Clone, Copy)]
pub enum PerturbUndo {
    /// No operator was applicable; the instance is unchanged.
    Nothing,
    /// A node speed was nudged; holds the node and its previous speed.
    NodeWeight(NodeId, f64),
    /// A link strength was nudged; holds the endpoints and previous value.
    EdgeWeight(NodeId, NodeId, f64),
    /// A task cost was nudged; holds the task and its previous cost.
    TaskWeight(TaskId, f64),
    /// A dependency size was nudged; holds the edge and its previous size.
    DepWeight(TaskId, TaskId, f64),
    /// A dependency was added (it is the newest edge of both lists).
    AddDep(TaskId, TaskId),
    /// A dependency was removed; holds everything needed to restore it at
    /// its exact prior adjacency positions.
    RemoveDep {
        /// Source task of the removed edge.
        from: TaskId,
        /// Destination task of the removed edge.
        to: TaskId,
        /// Data size of the removed edge.
        cost: f64,
        /// Position the edge occupied in `from`'s successor list.
        succ_pos: usize,
        /// Position the edge occupied in `to`'s predecessor list.
        pred_pos: usize,
    },
}

impl PerturbUndo {
    /// The [`DirtyRegion`](saga_core::DirtyRegion) this perturbation (or
    /// its revert — the region is symmetric) leaves behind: what an
    /// incremental re-evaluation must treat as changed. Network edits dirty
    /// everything (every execution or communication time may have moved);
    /// graph edits are local — a task's execution row, a dependency's
    /// destination, or (for structural edits) the destination plus the
    /// graph's structure.
    pub fn dirty_region(&self) -> saga_core::DirtyRegion {
        use saga_core::DirtyRegion;
        match *self {
            PerturbUndo::Nothing => DirtyRegion::clean(),
            PerturbUndo::NodeWeight(v, _) => DirtyRegion::node_weight(v),
            PerturbUndo::EdgeWeight(u, v, _) => DirtyRegion::link_weight(u, v),
            PerturbUndo::TaskWeight(t, _) => DirtyRegion::task_weight(t),
            PerturbUndo::DepWeight(a, b, _) => DirtyRegion::dep_weight(a, b),
            PerturbUndo::AddDep(a, b) => DirtyRegion::structural_edit(a, b, true),
            PerturbUndo::RemoveDep { from, to, .. } => {
                DirtyRegion::structural_edit(from, to, false)
            }
        }
    }

    /// The [`DirtyRegion`](saga_core::DirtyRegion) left behind by
    /// [`revert`](Self::revert)ing this perturbation. Weight and network
    /// edits are symmetric; structural reverts flip direction — popping an
    /// added edge is a removal, and restoring a removed edge re-inserts it
    /// at its *original* adjacency positions, which no single splice
    /// describes, so that case asks for a CSR rebuild.
    pub fn revert_dirty_region(&self) -> saga_core::DirtyRegion {
        use saga_core::DirtyRegion;
        match *self {
            PerturbUndo::AddDep(a, b) => DirtyRegion::structural_edit(a, b, false),
            PerturbUndo::RemoveDep { to, .. } => DirtyRegion::structural_rebuild(to),
            _ => self.dirty_region(),
        }
    }

    /// Restores the perturbed instance to its exact pre-perturbation state.
    pub fn revert(self, inst: &mut Instance) {
        match self {
            PerturbUndo::Nothing => {}
            PerturbUndo::NodeWeight(v, w) => inst.network.set_speed(v, w),
            PerturbUndo::EdgeWeight(u, v, w) => inst.network.set_link(u, v, w),
            PerturbUndo::TaskWeight(t, c) => {
                inst.graph.set_cost(t, c).expect("previous cost was valid")
            }
            PerturbUndo::DepWeight(a, b, c) => inst
                .graph
                .set_dependency_cost(a, b, c)
                .expect("edge still present"),
            PerturbUndo::AddDep(a, b) => inst.graph.pop_dependency(a, b),
            PerturbUndo::RemoveDep {
                from,
                to,
                cost,
                succ_pos,
                pred_pos,
            } => inst
                .graph
                .restore_dependency_at(from, to, cost, succ_pos, pred_pos),
        }
    }
}

/// Inclusive weight bounds plus the nudge magnitude derived from them
/// (one tenth of the range, matching the paper's `±1/10` on `[0, 1]`).
#[derive(Debug, Clone, Copy)]
pub struct WeightRange {
    /// Smallest allowed weight.
    pub lo: f64,
    /// Largest allowed weight.
    pub hi: f64,
}

impl WeightRange {
    /// The paper's default `[0, 1]` range.
    pub const UNIT: WeightRange = WeightRange { lo: 0.0, hi: 1.0 };

    /// Builds a range, normalizing inverted bounds.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            WeightRange { lo, hi }
        } else {
            WeightRange { lo: hi, hi: lo }
        }
    }

    fn nudge(&self, rng: &mut StdRng, w: f64) -> f64 {
        let delta = (self.hi - self.lo) / 10.0;
        (w + rng.gen_range(-delta..=delta)).clamp(self.lo, self.hi)
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// The configurable general perturber of Section VI.
///
/// Each enabled operator is drawn with equal probability; a drawn operator
/// that cannot apply (e.g. *remove dependency* on an edgeless graph) falls
/// through to the next applicable one so a perturbation step never silently
/// no-ops unless *nothing* is applicable.
#[derive(Debug, Clone)]
pub struct GeneralPerturber {
    /// Allow nudging node compute speeds.
    pub node_weights: bool,
    /// Allow nudging network link strengths.
    pub edge_weights: bool,
    /// Allow nudging task compute costs.
    pub task_weights: bool,
    /// Allow nudging dependency data sizes.
    pub dependency_weights: bool,
    /// Allow adding acyclic dependencies.
    pub add_dependency: bool,
    /// Allow removing dependencies.
    pub remove_dependency: bool,
    /// Bounds for node speeds.
    pub node_range: WeightRange,
    /// Bounds for link strengths.
    pub link_range: WeightRange,
    /// Bounds for task costs.
    pub task_range: WeightRange,
    /// Bounds for dependency sizes.
    pub dep_range: WeightRange,
}

impl Default for GeneralPerturber {
    fn default() -> Self {
        GeneralPerturber {
            node_weights: true,
            edge_weights: true,
            task_weights: true,
            dependency_weights: true,
            add_dependency: true,
            remove_dependency: true,
            node_range: WeightRange::UNIT,
            link_range: WeightRange::UNIT,
            task_range: WeightRange::UNIT,
            dep_range: WeightRange::UNIT,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Op {
    NodeWeight,
    EdgeWeight,
    TaskWeight,
    DepWeight,
    AddDep,
    RemoveDep,
}

impl GeneralPerturber {
    /// The enabled operators in declaration order, on the stack — the
    /// perturber runs once per annealing iteration and must not allocate.
    fn enabled_ops(&self) -> ([Op; 6], usize) {
        let mut ops = [Op::NodeWeight; 6];
        let mut n = 0;
        let mut push = |op: Op| {
            ops[n] = op;
            n += 1;
        };
        if self.node_weights {
            push(Op::NodeWeight);
        }
        if self.edge_weights {
            push(Op::EdgeWeight);
        }
        if self.task_weights {
            push(Op::TaskWeight);
        }
        if self.dependency_weights {
            push(Op::DepWeight);
        }
        if self.add_dependency {
            push(Op::AddDep);
        }
        if self.remove_dependency {
            push(Op::RemoveDep);
        }
        (ops, n)
    }

    /// Applies `op` if applicable, returning how to revert it (`None` when
    /// the operator cannot apply). The single source of truth for operator
    /// semantics — the plain and undoable perturbation paths both run this,
    /// so their mutations and RNG consumption cannot diverge.
    fn apply_undoable(&self, op: Op, inst: &mut Instance, rng: &mut StdRng) -> Option<PerturbUndo> {
        match op {
            Op::NodeWeight => {
                let n = inst.network.node_count();
                if n == 0 {
                    return None;
                }
                let v = NodeId(rng.gen_range(0..n as u32));
                let old = inst.network.speed(v);
                let w = self.node_range.nudge(rng, old);
                inst.network.set_speed(v, w);
                Some(PerturbUndo::NodeWeight(v, old))
            }
            Op::EdgeWeight => {
                let n = inst.network.node_count();
                if n < 2 {
                    return None;
                }
                let u = rng.gen_range(0..n as u32);
                let mut v = rng.gen_range(0..n as u32 - 1);
                if v >= u {
                    v += 1;
                }
                let (u, v) = (NodeId(u), NodeId(v));
                let cur = inst.network.link(u, v);
                // infinite links (shared filesystems) are a modeling
                // constant, not a weight — leave them alone
                if cur.is_infinite() {
                    return None;
                }
                inst.network.set_link(u, v, self.link_range.nudge(rng, cur));
                Some(PerturbUndo::EdgeWeight(u, v, cur))
            }
            Op::TaskWeight => {
                let n = inst.graph.task_count();
                if n == 0 {
                    return None;
                }
                let t = TaskId(rng.gen_range(0..n as u32));
                let old = inst.graph.cost(t);
                let w = self.task_range.nudge(rng, old);
                inst.graph.set_cost(t, w).expect("in-range cost");
                Some(PerturbUndo::TaskWeight(t, old))
            }
            Op::DepWeight => {
                let n = inst.graph.dependency_count();
                if n == 0 {
                    return None;
                }
                let (a, b, cur) = inst
                    .graph
                    .nth_dependency(rng.gen_range(0..n))
                    .expect("index in range");
                let w = self.dep_range.nudge(rng, cur);
                inst.graph
                    .set_dependency_cost(a, b, w)
                    .expect("in-range cost");
                Some(PerturbUndo::DepWeight(a, b, cur))
            }
            Op::AddDep => {
                let n = inst.graph.task_count();
                if n < 2 {
                    return None;
                }
                // up to a handful of attempts to find an acyclic non-edge
                for _ in 0..8 {
                    let t = TaskId(rng.gen_range(0..n as u32));
                    let mut u = rng.gen_range(0..n as u32 - 1);
                    if u >= t.0 {
                        u += 1;
                    }
                    let u = TaskId(u);
                    if inst.graph.has_dependency(t, u) || inst.graph.reaches(u, t) {
                        continue;
                    }
                    let w = self.dep_range.sample(rng);
                    inst.graph.add_dependency(t, u, w).expect("checked acyclic");
                    return Some(PerturbUndo::AddDep(t, u));
                }
                None
            }
            Op::RemoveDep => {
                let n = inst.graph.dependency_count();
                if n == 0 {
                    return None;
                }
                let (a, b, _) = inst
                    .graph
                    .nth_dependency(rng.gen_range(0..n))
                    .expect("index in range");
                let (cost, succ_pos, pred_pos) = inst
                    .graph
                    .remove_dependency_tracked(a, b)
                    .expect("listed dep");
                Some(PerturbUndo::RemoveDep {
                    from: a,
                    to: b,
                    cost,
                    succ_pos,
                    pred_pos,
                })
            }
        }
    }

    /// The shared operator-selection loop: equal-probability draw, falling
    /// through to the next applicable op.
    fn step(&self, inst: &mut Instance, rng: &mut StdRng) -> PerturbUndo {
        let (ops, n) = self.enabled_ops();
        if n == 0 {
            return PerturbUndo::Nothing;
        }
        let start = rng.gen_range(0..n);
        for k in 0..n {
            if let Some(undo) = self.apply_undoable(ops[(start + k) % n], inst, rng) {
                return undo;
            }
        }
        PerturbUndo::Nothing
    }
}

impl Perturber for GeneralPerturber {
    fn perturb(&self, inst: &mut Instance, rng: &mut StdRng) {
        self.step(inst, rng);
    }

    fn perturb_undoable(&self, inst: &mut Instance, rng: &mut StdRng) -> Option<PerturbUndo> {
        Some(self.step(inst, rng))
    }
}

/// Samples the Section VI initial instance: a complete network of 3–5 nodes
/// with `U(0, 1)` speeds and link strengths, and a chain task graph of 3–5
/// tasks with `U(0, 1)` costs and dependency sizes.
pub fn initial_instance(rng: &mut StdRng) -> Instance {
    use saga_core::{Network, TaskGraph};
    let nodes = rng.gen_range(3..=5usize);
    let speeds: Vec<f64> = (0..nodes).map(|_| rng.gen::<f64>()).collect();
    let mut net = Network::complete(&speeds, 1.0);
    for u in 0..nodes as u32 {
        for v in (u + 1)..nodes as u32 {
            net.set_link(NodeId(u), NodeId(v), rng.gen::<f64>());
        }
    }
    let tasks = rng.gen_range(3..=5usize);
    let costs: Vec<f64> = (0..tasks).map(|_| rng.gen::<f64>()).collect();
    let deps: Vec<f64> = (0..tasks - 1).map(|_| rng.gen::<f64>()).collect();
    let g = TaskGraph::chain(&costs, &deps);
    Instance::new(net, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn seeded() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn initial_instance_matches_section_vi() {
        let mut rng = seeded();
        for _ in 0..20 {
            let inst = initial_instance(&mut rng);
            assert!((3..=5).contains(&inst.network.node_count()));
            assert!((3..=5).contains(&inst.graph.task_count()));
            // chain: exactly n-1 dependencies
            assert_eq!(inst.graph.dependency_count(), inst.graph.task_count() - 1);
            for v in inst.network.nodes() {
                assert!((0.0..=1.0).contains(&inst.network.speed(v)));
            }
        }
    }

    #[test]
    fn perturbations_keep_weights_in_range() {
        let mut rng = seeded();
        let mut inst = initial_instance(&mut rng);
        let p = GeneralPerturber::default();
        for _ in 0..2000 {
            p.perturb(&mut inst, &mut rng);
        }
        for v in inst.network.nodes() {
            assert!((0.0..=1.0).contains(&inst.network.speed(v)));
            for u in inst.network.nodes() {
                if u != v {
                    assert!((0.0..=1.0).contains(&inst.network.link(u, v)));
                }
            }
        }
        for t in inst.graph.tasks() {
            assert!((0.0..=1.0).contains(&inst.graph.cost(t)));
        }
        for (_, _, c) in inst.graph.dependencies() {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn perturbations_preserve_acyclicity() {
        let mut rng = seeded();
        let mut inst = initial_instance(&mut rng);
        let p = GeneralPerturber::default();
        for _ in 0..2000 {
            p.perturb(&mut inst, &mut rng);
            assert_eq!(
                inst.graph.topological_order().len(),
                inst.graph.task_count()
            );
        }
    }

    #[test]
    fn structure_preserving_config_never_changes_topology() {
        let mut rng = seeded();
        let mut inst = initial_instance(&mut rng);
        let before: Vec<_> = inst.graph.dependencies().map(|(a, b, _)| (a, b)).collect();
        let p = GeneralPerturber {
            add_dependency: false,
            remove_dependency: false,
            edge_weights: false,
            ..GeneralPerturber::default()
        };
        for _ in 0..500 {
            p.perturb(&mut inst, &mut rng);
        }
        let after: Vec<_> = inst.graph.dependencies().map(|(a, b, _)| (a, b)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn disabled_node_weights_stay_fixed() {
        let mut rng = seeded();
        let mut inst = initial_instance(&mut rng);
        let speeds = inst.network.speeds().to_vec();
        let p = GeneralPerturber {
            node_weights: false,
            ..GeneralPerturber::default()
        };
        for _ in 0..500 {
            p.perturb(&mut inst, &mut rng);
        }
        assert_eq!(inst.network.speeds(), &speeds[..]);
    }

    #[test]
    fn infinite_links_are_never_touched() {
        use saga_core::{Network, TaskGraph};
        let mut rng = seeded();
        let g = TaskGraph::chain(&[0.5, 0.5], &[0.5]);
        let mut inst = Instance::new(Network::complete(&[0.5, 0.5], f64::INFINITY), g);
        let p = GeneralPerturber::default();
        for _ in 0..500 {
            p.perturb(&mut inst, &mut rng);
        }
        for u in inst.network.nodes() {
            for v in inst.network.nodes() {
                assert!(inst.network.link(u, v).is_infinite());
            }
        }
    }

    #[test]
    fn scaled_ranges_clamp_to_trace_bounds() {
        let mut rng = seeded();
        let mut inst = initial_instance(&mut rng);
        // pretend trace bounds: runtimes in [5, 600]
        let task_ids: Vec<_> = inst.graph.tasks().collect();
        for t in task_ids {
            inst.graph.set_cost(t, 300.0).unwrap();
        }
        let p = GeneralPerturber {
            node_weights: false,
            edge_weights: false,
            dependency_weights: false,
            add_dependency: false,
            remove_dependency: false,
            task_range: WeightRange::new(5.0, 600.0),
            ..GeneralPerturber::default()
        };
        for _ in 0..1000 {
            p.perturb(&mut inst, &mut rng);
        }
        for t in inst.graph.tasks() {
            let c = inst.graph.cost(t);
            assert!((5.0..=600.0).contains(&c), "cost {c}");
        }
    }

    #[test]
    fn weight_range_normalizes_inverted_bounds() {
        let r = WeightRange::new(5.0, 1.0);
        assert_eq!((r.lo, r.hi), (1.0, 5.0));
    }
}
