//! The `SearchCell` runtime: annealing runs as first-class engine workloads.
//!
//! Every PISA-style experiment — the Fig. 4 pairwise matrix, the Section VII
//! application searches, the metric-objective comparisons, the
//! search-strategy ablation — is a grid of independent annealing *cells*.
//! Before this module each driver hand-rolled its own fan-out (raw
//! `par_iter`, fresh `SchedContext` and fresh scratch instances per cell,
//! ad-hoc seed mixing). A [`SearchCell`] instead describes one cell as
//! *data*: what to search ([`CellKind`]), under which annealing budget
//! ([`PisaConfig`]), with which derived RNG seed. Executing a cell borrows a
//! warm scheduling context and a set of annealing scratch instances from
//! whoever is driving — a worker thread runs back-to-back cells with zero
//! steady-state allocation — and the cell's seed is baked in at construction
//! ([`derive_seed`] over the cell's index), so results are bit-identical no
//! matter how cells are sharded across threads or which worker claims them.
//!
//! The full-featured driver (progress, JSONL checkpointing, `--resume`)
//! is `saga_experiments::engine::BatchEngine::run_cells`; this module also
//! provides the plain pooled executor [`run_cells_pooled`] that
//! [`pairwise_matrix`](crate::pairwise_matrix) and in-crate tests use.

use crate::ablation::{self, Strategy};
use crate::annealer::{AnnealScratch, Pisa, PisaConfig, PisaResult};
use crate::app_specific::AppSpecific;
use crate::constraints;
use crate::lockstep;
use crate::metric::{self, Objective};
use crate::perturb::{initial_instance, GeneralPerturber};
use rayon::prelude::*;
use saga_core::{derive_seed, fnv1a, BatchedSchedContext, ContextPool, SchedContext};
use saga_schedulers::Scheduler;

/// What one adversarial-search cell searches.
#[derive(Debug, Clone)]
pub enum CellKind {
    /// A general Section VI pairwise cell: free-form instances, per-pair
    /// homogeneity constraints.
    Pair {
        /// Scheduler whose failures are hunted (the ratio's numerator).
        target: String,
        /// Baseline scheduler (the denominator).
        baseline: String,
    },
    /// A Section VII application cell: rigid workflow structure at a fixed
    /// CCR, trace-scaled weight perturbations.
    App {
        /// Workflow name (e.g. `"blast"`).
        workflow: String,
        /// Target communication-to-computation ratio.
        ccr: f64,
        /// Scheduler whose failures are hunted.
        target: String,
        /// Baseline scheduler.
        baseline: String,
    },
    /// An alternative-metric cell: the generic annealer under an
    /// [`Objective`] other than (or including) makespan.
    Metric {
        /// The schedule-quality metric being compared.
        objective: Objective,
        /// Scheduler whose failures are hunted.
        target: String,
        /// Baseline scheduler.
        baseline: String,
    },
    /// A search-strategy ablation cell: the PISA objective and budget under
    /// a different acceptance strategy.
    Ablation {
        /// The acceptance strategy to run.
        strategy: Strategy,
        /// Scheduler whose failures are hunted.
        target: String,
        /// Baseline scheduler.
        baseline: String,
    },
}

/// One adversarial-search cell: a [`CellKind`] plus its annealing budget.
/// The config's `seed` is the cell's own derived stream, assigned at
/// construction — cells are fully self-describing, so any executor
/// (sequential, pooled, checkpointed engine) produces identical results.
#[derive(Debug, Clone)]
pub struct SearchCell {
    /// Stable human-readable identity (also the checkpoint key prefix).
    pub label: String,
    /// What to search.
    pub kind: CellKind,
    /// Annealing constants, including the cell's derived seed.
    pub config: PisaConfig,
}

impl SearchCell {
    /// A general pairwise cell (Fig. 4). `config.seed` must already be the
    /// cell's derived seed — see [`pairwise_cells`](crate::pairwise_cells)
    /// for the canonical grid builder.
    pub fn pair(target: &str, baseline: &str, config: PisaConfig) -> Self {
        SearchCell {
            label: format!("pair/{target}~{baseline}"),
            kind: CellKind::Pair {
                target: target.to_string(),
                baseline: baseline.to_string(),
            },
            config,
        }
    }

    /// A Section VII application cell.
    pub fn app(workflow: &str, ccr: f64, target: &str, baseline: &str, config: PisaConfig) -> Self {
        SearchCell {
            label: format!("app/{workflow}@{ccr}/{target}~{baseline}"),
            kind: CellKind::App {
                workflow: workflow.to_string(),
                ccr,
                target: target.to_string(),
                baseline: baseline.to_string(),
            },
            config,
        }
    }

    /// An alternative-metric cell.
    pub fn metric(objective: Objective, target: &str, baseline: &str, config: PisaConfig) -> Self {
        SearchCell {
            label: format!("metric/{}/{target}~{baseline}", objective.name()),
            kind: CellKind::Metric {
                objective,
                target: target.to_string(),
                baseline: baseline.to_string(),
            },
            config,
        }
    }

    /// A search-strategy ablation cell.
    pub fn ablation(strategy: Strategy, target: &str, baseline: &str, config: PisaConfig) -> Self {
        SearchCell {
            label: format!("ablation/{}/{target}~{baseline}", strategy.name()),
            kind: CellKind::Ablation {
                strategy,
                target: target.to_string(),
                baseline: baseline.to_string(),
            },
            config,
        }
    }

    /// The cell's checkpoint identity: label, every budget knob, and a
    /// digest of the *full* cell configuration. A resumed run only reuses a
    /// stored cell when the key matches exactly, so changing
    /// `--imax`/`--restarts`/`--seed` invalidates stale checkpoint lines —
    /// and so do config differences the label alone can't see (two `Metric`
    /// cells with different `Energy` parameters share a label; so do cells
    /// differing only in `t_max`/`t_min`/`alpha`). Without the digest such
    /// cells would falsely replay each other's stored result on `--resume`.
    pub fn key(&self) -> String {
        let cfg = format!(
            "{:?}|{:016x}|{:016x}|{:016x}",
            self.kind,
            self.config.t_max.to_bits(),
            self.config.t_min.to_bits(),
            self.config.alpha.to_bits()
        );
        format!(
            "{}#i{}r{}s{:016x}#c{:016x}",
            self.label,
            self.config.i_max,
            self.config.restarts,
            self.config.seed,
            fnv1a(cfg.as_bytes())
        )
    }

    /// Executes the cell, borrowing a scheduling context and annealing
    /// scratch from the driver. Bit-identical for a given cell regardless of
    /// the executor or thread count: every random draw comes from the cell's
    /// own seeded streams.
    ///
    /// # Panics
    /// Panics if the cell names an unknown scheduler or workflow.
    pub fn run(&self, ctx: &mut SchedContext, scratch: &mut AnnealScratch) -> PisaResult {
        let resolve = |name: &str| -> Box<dyn Scheduler> {
            saga_schedulers::by_name(name)
                .unwrap_or_else(|| panic!("cell {}: unknown scheduler {name}", self.label))
        };
        match &self.kind {
            CellKind::Pair { target, baseline } => {
                let t = resolve(target);
                let b = resolve(baseline);
                let perturber =
                    constraints::restrict_for_pair(GeneralPerturber::default(), target, baseline);
                let pisa = Pisa {
                    target: &*t,
                    baseline: &*b,
                    perturber: &perturber,
                    config: self.config,
                };
                pisa.run_in(ctx, scratch, &|rng| {
                    let mut inst = initial_instance(rng);
                    constraints::homogenize_for_pair(&mut inst, target, baseline);
                    inst
                })
            }
            CellKind::App {
                workflow,
                ccr,
                target,
                baseline,
            } => {
                let app = AppSpecific::new(workflow, *ccr)
                    .unwrap_or_else(|| panic!("cell {}: unknown workflow {workflow}", self.label));
                app.run_pair_in(
                    &*resolve(target),
                    &*resolve(baseline),
                    self.config,
                    ctx,
                    scratch,
                )
            }
            CellKind::Metric {
                objective,
                target,
                baseline,
            } => metric::metric_search_in(
                *objective,
                &*resolve(target),
                &*resolve(baseline),
                &GeneralPerturber::default(),
                self.config,
                &|rng| initial_instance(rng),
                ctx,
                scratch,
            ),
            CellKind::Ablation {
                strategy,
                target,
                baseline,
            } => ablation::search_in(
                &*resolve(target),
                &*resolve(baseline),
                &GeneralPerturber::default(),
                self.config,
                *strategy,
                &|rng| initial_instance(rng),
                ctx,
                scratch,
            ),
        }
    }
}

/// Derives cell `index`'s config from a base config: same budget, own seed.
pub fn cell_config(base: PisaConfig, index: u64) -> PisaConfig {
    PisaConfig {
        seed: derive_seed(base.seed, index),
        ..base
    }
}

/// Runs cells across rayon workers, each worker holding one warm pooled
/// context, one scratch, and one lane block for its whole run. Eligible
/// pairwise cells are grouped into lockstep units by the batch planner
/// (scalar fallback for other cell kinds, oversized restart counts, and
/// `SAGA_NO_BATCH`); results come back in cell order, bit-identical under
/// any plan and thread count. The experiment engine's `run_cells` adds
/// progress and checkpointing on top of the same per-unit execution.
pub fn run_cells_pooled(cells: &[SearchCell]) -> Vec<PisaResult> {
    let pool = ContextPool::new();
    let units = lockstep::plan_units(cells, |_, _| true);
    let mut by_unit: Vec<Vec<(usize, PisaResult)>> = units
        .par_iter()
        .map_init(
            || {
                (
                    pool.take(),
                    AnnealScratch::default(),
                    BatchedSchedContext::default(),
                )
            },
            |(ctx, scratch, batch), unit| match unit {
                lockstep::ExecUnit::Scalar(i) => vec![(*i, cells[*i].run(ctx, scratch))],
                lockstep::ExecUnit::Lockstep(idxs) => {
                    let group: Vec<&SearchCell> = idxs.iter().map(|&i| &cells[i]).collect();
                    let results = lockstep::run_cells_lockstep(batch, &group);
                    idxs.iter().copied().zip(results).collect()
                }
            },
        )
        .collect();
    // scatter unit results back to input order
    let mut out: Vec<Option<PisaResult>> = cells.iter().map(|_| None).collect();
    for (i, res) in by_unit.drain(..).flatten() {
        out[i] = Some(res);
    }
    out.into_iter()
        .map(|r| r.expect("planner covers every cell exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> PisaConfig {
        PisaConfig {
            i_max: 80,
            restarts: 2,
            seed,
            ..PisaConfig::default()
        }
    }

    #[test]
    fn cell_results_are_executor_independent() {
        // the same cell run standalone, sequentially, and via the pooled
        // executor produces bit-identical ratios
        let cells = vec![
            SearchCell::pair("HEFT", "CPoP", cell_config(quick(9), 0)),
            SearchCell::metric(
                Objective::RentalCost,
                "HEFT",
                "FastestNode",
                cell_config(quick(9), 1),
            ),
            SearchCell::ablation(
                Strategy::HillClimb,
                "CPoP",
                "HEFT",
                cell_config(quick(9), 2),
            ),
            SearchCell::app(
                "blast",
                0.5,
                "CPoP",
                "FastestNode",
                cell_config(quick(9), 3),
            ),
        ];
        let pooled = run_cells_pooled(&cells);
        let mut ctx = SchedContext::new();
        let mut scratch = AnnealScratch::default();
        for (cell, batch) in cells.iter().zip(&pooled) {
            let solo = cell.run(&mut ctx, &mut scratch);
            assert_eq!(
                solo.ratio.to_bits(),
                batch.ratio.to_bits(),
                "{} diverged between executors",
                cell.label
            );
            assert_eq!(solo.evaluations, batch.evaluations, "{}", cell.label);
            assert_eq!(
                solo.instance.to_json(),
                batch.instance.to_json(),
                "{} witness diverged",
                cell.label
            );
        }
    }

    #[test]
    fn scratch_reuse_across_heterogeneous_cells_is_clean() {
        // a worker's scratch crosses cell families (different instance
        // shapes/sizes); results must match fresh-scratch runs
        let cells = vec![
            SearchCell::app(
                "seismology",
                1.0,
                "MinMin",
                "CPoP",
                cell_config(quick(4), 0),
            ),
            SearchCell::pair("FastestNode", "HEFT", cell_config(quick(4), 1)),
            SearchCell::metric(
                Objective::Throughput,
                "CPoP",
                "HEFT",
                cell_config(quick(4), 2),
            ),
        ];
        let mut ctx = SchedContext::new();
        let mut shared = AnnealScratch::default();
        for cell in &cells {
            let warm = cell.run(&mut ctx, &mut shared);
            let fresh = cell.run(&mut SchedContext::new(), &mut AnnealScratch::default());
            assert_eq!(
                warm.ratio.to_bits(),
                fresh.ratio.to_bits(),
                "{}",
                cell.label
            );
        }
    }

    #[test]
    fn keys_distinguish_same_label_different_config() {
        // regression: two Energy cells share the label "metric/energy/..."
        // but differ in their objective parameters — before the key carried
        // a config digest, a resumed run would replay one cell's stored
        // result for the other
        let a = SearchCell::metric(
            Objective::Energy {
                idle_fraction: 0.2,
                comm_energy_per_unit: 1.0,
            },
            "HEFT",
            "CPoP",
            quick(1),
        );
        let b = SearchCell::metric(
            Objective::Energy {
                idle_fraction: 0.4,
                comm_energy_per_unit: 1.0,
            },
            "HEFT",
            "CPoP",
            quick(1),
        );
        assert_eq!(a.label, b.label, "the label alone cannot tell them apart");
        assert_ne!(a.key(), b.key(), "the key digest must");
        // annealing-schedule knobs outside the label/budget fields count too
        let mut warm = quick(1);
        warm.t_max = 20.0;
        let c = SearchCell::pair("HEFT", "CPoP", quick(1));
        let d = SearchCell::pair("HEFT", "CPoP", warm);
        assert_ne!(c.key(), d.key());
        // and equal configs still agree
        assert_eq!(a.key(), a.clone().key());
    }

    #[test]
    fn keys_encode_budget_and_seed() {
        let a = SearchCell::pair("HEFT", "CPoP", quick(1));
        let mut changed = quick(1);
        changed.i_max = 81;
        let b = SearchCell::pair("HEFT", "CPoP", changed);
        assert_ne!(a.key(), b.key());
        assert_ne!(
            SearchCell::pair("HEFT", "CPoP", quick(1)).key(),
            SearchCell::pair("HEFT", "CPoP", quick(2)).key()
        );
        assert_eq!(a.key(), SearchCell::pair("HEFT", "CPoP", quick(1)).key());
    }
}
