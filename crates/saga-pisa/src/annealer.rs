//! The simulated-annealing core of PISA (the paper's Algorithm 1).

use crate::makespan_ratio;
use crate::perturb::Perturber;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saga_core::{incremental_enabled, DirtyRegion, Instance, RunTrace, SchedContext};
use saga_schedulers::Scheduler;

/// Annealing-schedule constants. Defaults are exactly the paper's:
/// `T_max = 10`, `T_min = 0.1`, `I_max = 1000`, `alpha = 0.99`, 5 restarts.
#[derive(Debug, Clone, Copy)]
pub struct PisaConfig {
    /// Initial temperature.
    pub t_max: f64,
    /// Temperature at which a run stops.
    pub t_min: f64,
    /// Hard iteration cap per run.
    pub i_max: usize,
    /// Geometric cooling factor.
    pub alpha: f64,
    /// Independent restarts from fresh initial instances.
    pub restarts: usize,
    /// Base RNG seed (restart `k` uses `seed + k`).
    pub seed: u64,
}

impl Default for PisaConfig {
    fn default() -> Self {
        PisaConfig {
            t_max: 10.0,
            t_min: 0.1,
            i_max: 1000,
            alpha: 0.99,
            restarts: 5,
            seed: 0x9153A,
        }
    }
}

impl PisaConfig {
    /// A cheaper schedule for CI and examples: 2 restarts of 250 iterations.
    pub fn quick(seed: u64) -> Self {
        PisaConfig {
            i_max: 250,
            restarts: 2,
            seed,
            ..PisaConfig::default()
        }
    }
}

/// Outcome of a PISA search.
#[derive(Debug, Clone)]
pub struct PisaResult {
    /// The instance maximizing the makespan ratio.
    pub instance: Instance,
    /// `m(S_A) / m(S_B)` on that instance.
    pub ratio: f64,
    /// Ratio of the initial instance of the best restart (for "how much did
    /// annealing help" diagnostics).
    pub initial_ratio: f64,
    /// Candidate evaluations performed by the winning restart (initial
    /// evaluation included).
    pub evaluations: usize,
}

/// The two per-scheduler run traces an adversarial pair evaluation carries
/// between annealing iterations: the target's and the baseline's recorded
/// previous runs, replayed incrementally when the perturbation's dirty
/// region allows (see [`Pisa::ratio_incremental`]).
#[derive(Debug, Default)]
pub struct PairTraces {
    /// The target scheduler's recorded run.
    pub target: RunTrace,
    /// The baseline scheduler's recorded run.
    pub baseline: RunTrace,
}

/// Reusable instance slots for the annealing loop. A search keeps four
/// persistent instances (current, candidate, per-run best, cross-restart
/// best) plus the pair's two run traces; borrowing them from the caller
/// lets a batch runner amortize the buffers across every restart of every
/// cell a worker executes, instead of reallocating them per run.
#[derive(Debug, Default)]
pub struct AnnealScratch {
    pub(crate) current: Option<Instance>,
    pub(crate) candidate: Option<Instance>,
    pub(crate) best: Option<Instance>,
    pub(crate) best_overall: Option<Instance>,
    pub(crate) traces: PairTraces,
}

/// Copies `src` into `slot`, reusing the slot's buffers when warm.
pub(crate) fn fill(slot: &mut Option<Instance>, src: &Instance) {
    match slot {
        Some(inst) => inst.clone_from(src),
        None => *slot = Some(src.clone()),
    }
}

/// The PISA search engine for one ordered scheduler pair.
pub struct Pisa<'a> {
    /// Scheduler whose failures we are hunting (`A`, the numerator).
    pub target: &'a dyn Scheduler,
    /// Baseline scheduler (`B`, the denominator).
    pub baseline: &'a dyn Scheduler,
    /// Mutation strategy.
    pub perturber: &'a dyn Perturber,
    /// Annealing constants.
    pub config: PisaConfig,
}

impl Pisa<'_> {
    /// The objective on one instance (fresh scheduling context; use
    /// [`Pisa::ratio_with`] in loops).
    pub fn ratio(&self, inst: &Instance) -> f64 {
        let mut ctx = SchedContext::new();
        self.ratio_with(inst, &mut ctx)
    }

    /// The objective on one instance, reusing a scheduling context — the
    /// annealer's hot path evaluates this tens of thousands of times per
    /// cell and allocates nothing after warm-up. The two scheduler runs
    /// share one cost-table build via [`SchedContext::pin_tables`].
    pub fn ratio_with(&self, inst: &Instance, ctx: &mut SchedContext) -> f64 {
        ctx.pin_tables(inst);
        let a = self.target.makespan_into(inst, ctx);
        let b = self.baseline.makespan_into(inst, ctx);
        ctx.unpin_tables();
        makespan_ratio(a, b)
    }

    /// [`ratio_with`](Self::ratio_with) with incremental delta-evaluation:
    /// `dirty` describes everything that changed in `inst` since the last
    /// call with these `traces` (the annealer derives it from the
    /// perturbation undo records), the kernel refreshes exactly the stale
    /// cost-table pieces, and each scheduler replays the unchanged prefix
    /// of its recorded previous run. Value-identical to `ratio_with` by
    /// construction (and pinned by the golden PISA-cell fixture); a
    /// [`DirtyRegion::full`] region *is* `ratio_with` plus trace recording.
    pub fn ratio_incremental(
        &self,
        inst: &Instance,
        ctx: &mut SchedContext,
        traces: &mut PairTraces,
        dirty: &DirtyRegion,
    ) -> f64 {
        // No ratio-level clean shortcut: a composite scheduler's outer trace
        // holds its first *component's* makespan (Duplex stores MinMin there
        // and MaxMin in the sub-trace), so the per-scheduler clean skips
        // inside `makespan_incremental` — which compose correctly — are the
        // ones that handle an unchanged instance.
        ctx.pin_tables_dirty(inst, dirty);
        let a = self
            .target
            .makespan_incremental(inst, ctx, &mut traces.target, dirty);
        let b = self
            .baseline
            .makespan_incremental(inst, ctx, &mut traces.baseline, dirty);
        ctx.unpin_tables();
        makespan_ratio(a, b)
    }

    /// Runs all restarts from initial instances produced by `init` and
    /// returns the best result.
    ///
    /// Acceptance follows the standard Metropolis criterion for
    /// maximization, `exp(-(r_cur - r') / T)` — see DESIGN.md for why the
    /// paper's printed formula is replaced (it is non-monotonic in solution
    /// quality).
    pub fn run(&self, init: &dyn Fn(&mut StdRng) -> Instance) -> PisaResult {
        let mut ctx = SchedContext::new();
        let mut scratch = AnnealScratch::default();
        self.run_in(&mut ctx, &mut scratch, init)
    }

    /// [`run`](Self::run) borrowing the scheduling context and the annealing
    /// scratch instances from the caller — the batch-runner entry point: a
    /// worker thread keeps one warm context and one scratch across every
    /// cell it executes, so back-to-back cells allocate nothing.
    pub fn run_in(
        &self,
        ctx: &mut SchedContext,
        scratch: &mut AnnealScratch,
        init: &dyn Fn(&mut StdRng) -> Instance,
    ) -> PisaResult {
        let mut traces = std::mem::take(&mut scratch.traces);
        let res = maximize_in(
            &mut |inst, dirty| self.ratio_incremental(inst, ctx, &mut traces, dirty),
            self.perturber,
            self.config,
            init,
            scratch,
        );
        scratch.traces = traces;
        res
    }

    /// One annealing run from a fixed initial instance.
    pub fn run_once(&self, start: Instance, rng: &mut StdRng) -> PisaResult {
        let mut ctx = SchedContext::new();
        maximize_once(
            &mut |inst| self.ratio_with(inst, &mut ctx),
            self.perturber,
            self.config,
            start,
            rng,
        )
    }
}

/// Generic adversarial annealer: maximizes an arbitrary instance objective
/// (makespan ratio, energy ratio, throughput gap, ...) with PISA's schedule.
/// [`Pisa::run`] is `maximize` with the makespan-ratio objective; the
/// metric-ratio objectives of `saga-pisa::metric` plug in here too.
pub fn maximize(
    objective: &mut dyn FnMut(&Instance) -> f64,
    perturber: &dyn Perturber,
    config: PisaConfig,
    init: &dyn Fn(&mut StdRng) -> Instance,
) -> PisaResult {
    let mut scratch = AnnealScratch::default();
    maximize_in(
        &mut |inst, _| objective(inst),
        perturber,
        config,
        init,
        &mut scratch,
    )
}

/// [`maximize`] with caller-provided scratch instances: all restarts (and,
/// for a worker thread, all cells) share one set of instance buffers. The
/// winning restart's best instance is kept in the scratch and cloned out
/// exactly once, into the returned [`PisaResult`].
///
/// The objective receives, alongside the instance, the [`DirtyRegion`]
/// covering everything that changed since the objective's *previous* call
/// in this search (the first call of each restart gets
/// [`DirtyRegion::full`]) — incremental objectives like
/// [`Pisa::ratio_incremental`] reuse their recorded runs through it, and
/// plain objectives simply ignore it.
pub fn maximize_in(
    objective: &mut dyn FnMut(&Instance, &DirtyRegion) -> f64,
    perturber: &dyn Perturber,
    config: PisaConfig,
    init: &dyn Fn(&mut StdRng) -> Instance,
    scratch: &mut AnnealScratch,
) -> PisaResult {
    best_over_restarts(config, init, scratch, |start, rng, scratch| {
        run_annealing(objective, perturber, config, start, rng, scratch)
    })
}

/// The shared restart loop: restart `k` seeds its RNG with `seed + k`,
/// draws a start from `init`, and runs `one_run` (which must return
/// `(best ratio, initial ratio, evaluations)` and leave its best instance
/// in `scratch.best`). Strictly-better ratios win (ties keep the earlier
/// restart); the winner's instance is kept in `scratch.best_overall` and
/// cloned out exactly once. Both the annealer and the ablation strategies
/// run through here, so their restart accounting cannot diverge.
pub(crate) fn best_over_restarts(
    config: PisaConfig,
    init: &dyn Fn(&mut StdRng) -> Instance,
    scratch: &mut AnnealScratch,
    mut one_run: impl FnMut(&Instance, &mut StdRng, &mut AnnealScratch) -> (f64, f64, usize),
) -> PisaResult {
    let mut best: Option<(f64, f64, usize)> = None;
    for k in 0..config.restarts {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(k as u64));
        let start = init(&mut rng);
        let (ratio, initial_ratio, evaluations) = one_run(&start, &mut rng, scratch);
        let better = match best {
            None => true,
            Some((best_ratio, _, _)) => ratio > best_ratio,
        };
        if better {
            best = Some((ratio, initial_ratio, evaluations));
            std::mem::swap(&mut scratch.best, &mut scratch.best_overall);
        }
    }
    let (ratio, initial_ratio, evaluations) = best.expect("restarts >= 1");
    PisaResult {
        instance: scratch
            .best_overall
            .as_ref()
            .expect("winning restart stored its best instance")
            .clone(),
        ratio,
        initial_ratio,
        evaluations,
    }
}

/// One annealing run of [`maximize`] from a fixed initial instance.
pub fn maximize_once(
    objective: &mut dyn FnMut(&Instance) -> f64,
    perturber: &dyn Perturber,
    config: PisaConfig,
    start: Instance,
    rng: &mut StdRng,
) -> PisaResult {
    let mut scratch = AnnealScratch::default();
    let (ratio, initial_ratio, evaluations) = run_annealing(
        &mut |inst, _| objective(inst),
        perturber,
        config,
        &start,
        rng,
        &mut scratch,
    );
    PisaResult {
        instance: scratch.best.expect("run stores its best instance"),
        ratio,
        initial_ratio,
        evaluations,
    }
}

/// The annealing loop proper: one run from `start`, using the scratch's
/// persistent instances (`current`, `candidate`, `best`) with buffer-reusing
/// `clone_from` / swaps, so a run's steady state performs no instance
/// allocation at all. Returns `(best ratio, initial ratio, evaluations)`;
/// the best instance is left in `scratch.best`.
fn run_annealing(
    objective: &mut dyn FnMut(&Instance, &DirtyRegion) -> f64,
    perturber: &dyn Perturber,
    config: PisaConfig,
    start: &Instance,
    rng: &mut StdRng,
    scratch: &mut AnnealScratch,
) -> (f64, f64, usize) {
    // `SAGA_NO_INCREMENTAL` forces every evaluation down the full-rebuild
    // path (value-identical by construction; CI diffs the golden suites
    // under both settings).
    let force_full = !incremental_enabled();
    let initial_ratio = objective(start, &DirtyRegion::full());
    let mut evaluations = 1;
    fill(&mut scratch.current, start);
    fill(&mut scratch.candidate, start);
    fill(&mut scratch.best, start);
    let current = scratch.current.as_mut().expect("filled above");
    let candidate = scratch.candidate.as_mut().expect("filled above");
    let best = scratch.best.as_mut().expect("filled above");
    let mut cur_ratio = initial_ratio;
    let mut best_ratio = initial_ratio;
    // Everything that changed in `current` since the objective last saw an
    // instance: empty after an evaluation is accepted (the traces describe
    // exactly the accepted state), the revert's own dirty region after a
    // rejection (the traces describe the rejected candidate, one
    // perturbation away from `current`).
    let mut pending = DirtyRegion::clean();

    let mut t = config.t_max;
    let mut iter = 0;
    while t > config.t_min && iter < config.i_max {
        // In-place fast path: perturb the current instance directly and
        // revert on rejection — no per-iteration instance copy. The revert
        // is bitwise, and a reverted/kept `current` holds exactly the bits
        // the clone-based fallback would, so both paths are value-identical
        // (the golden PISA-cell fixture pins this).
        if let Some(undo) = perturber.perturb_undoable(current, rng) {
            let dirty = if force_full {
                DirtyRegion::full()
            } else {
                let mut d = undo.dirty_region();
                d.merge(&pending);
                d
            };
            let r = objective(current, &dirty);
            evaluations += 1;
            pending = DirtyRegion::clean();
            if r > best_ratio {
                best.clone_from(current);
                best_ratio = r;
                cur_ratio = r;
            } else if accept(cur_ratio, r, t, rng) {
                cur_ratio = r;
            } else {
                undo.revert(current);
                pending = undo.revert_dirty_region();
            }
        } else {
            candidate.clone_from(current);
            perturber.perturb(candidate, rng);
            // an opaque perturbation: nothing is known about what moved
            let r = objective(candidate, &DirtyRegion::full());
            evaluations += 1;
            if r > best_ratio {
                best.clone_from(candidate);
                best_ratio = r;
                std::mem::swap(current, candidate);
                cur_ratio = r;
                pending = DirtyRegion::clean();
            } else if accept(cur_ratio, r, t, rng) {
                std::mem::swap(current, candidate);
                cur_ratio = r;
                pending = DirtyRegion::clean();
            } else {
                pending = DirtyRegion::full();
            }
        }
        t *= config.alpha;
        iter += 1;
    }
    (best_ratio, initial_ratio, evaluations)
}

/// Metropolis acceptance for a maximization over ratios; handles the
/// infinite ratios that zero-weight instances produce. Shared with the
/// lockstep batch driver, whose per-lane accept/reject must consume the
/// lane's RNG stream exactly like this scalar loop does.
pub(crate) fn accept(cur: f64, candidate: f64, t: f64, rng: &mut StdRng) -> bool {
    if candidate >= cur {
        return true;
    }
    if candidate.is_infinite() {
        return true; // cur must be infinite too (>= case), defensive
    }
    if cur.is_infinite() {
        return false; // never step down from an unbounded ratio
    }
    let p = (-(cur - candidate) / t).exp();
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::{initial_instance, GeneralPerturber};
    use saga_schedulers::{Cpop, FastestNode, Heft};

    #[test]
    fn accept_is_monotonic_in_quality_and_temperature() {
        let mut rng = StdRng::seed_from_u64(0);
        // equal or better always accepted
        assert!(accept(1.0, 1.0, 0.1, &mut rng));
        assert!(accept(1.0, 2.0, 0.1, &mut rng));
        // large drop at tiny temperature: essentially never
        let mut hits = 0;
        for _ in 0..1000 {
            if accept(5.0, 1.0, 0.1, &mut rng) {
                hits += 1;
            }
        }
        assert_eq!(hits, 0, "p = e^-40");
        // same drop at high temperature: often
        let mut hits = 0;
        for _ in 0..1000 {
            if accept(5.0, 1.0, 10.0, &mut rng) {
                hits += 1;
            }
        }
        assert!(hits > 400, "p = e^-0.4 ~ 0.67, got {hits}/1000");
        // infinite current is never abandoned
        assert!(!accept(f64::INFINITY, 1.0, 10.0, &mut rng));
    }

    #[test]
    fn finds_heft_losing_to_cpop() {
        // the paper's headline claim, in miniature: even a short search
        // finds an instance where HEFT is >= 1.2x worse than CPoP
        // (seed chosen for the workspace's vendored StdRng stream; this
        // seed's short run lands at ratio ~5.0, far clear of the bound)
        let pisa = Pisa {
            target: &Heft,
            baseline: &Cpop,
            perturber: &GeneralPerturber::default(),
            config: PisaConfig::quick(2),
        };
        let res = pisa.run(&|rng| initial_instance(rng));
        assert!(
            res.ratio >= 1.2,
            "expected an adversarial instance, best ratio {}",
            res.ratio
        );
        // and the ratio is real: recompute from the instance
        let again = pisa.ratio(&res.instance);
        assert!(
            (again - res.ratio).abs() < 1e-9 || (again.is_infinite() && res.ratio.is_infinite())
        );
    }

    #[test]
    fn best_ratio_never_below_initial() {
        let pisa = Pisa {
            target: &FastestNode,
            baseline: &Heft,
            perturber: &GeneralPerturber::default(),
            config: PisaConfig::quick(2),
        };
        let res = pisa.run(&|rng| initial_instance(rng));
        assert!(res.ratio >= res.initial_ratio);
        assert!(res.evaluations > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let pisa = Pisa {
            target: &Heft,
            baseline: &FastestNode,
            perturber: &GeneralPerturber::default(),
            config: PisaConfig::quick(3),
        };
        let a = pisa.run(&|rng| initial_instance(rng));
        let b = pisa.run(&|rng| initial_instance(rng));
        assert_eq!(a.ratio, b.ratio);
        assert_eq!(a.instance.to_json(), b.instance.to_json());
    }

    #[test]
    fn iteration_budget_is_respected() {
        // with alpha = 0.99, T falls below 0.1 after ~459 iterations, so a
        // 250-cap run performs at most 251 evaluations (initial + 250)
        let pisa = Pisa {
            target: &Heft,
            baseline: &Cpop,
            perturber: &GeneralPerturber::default(),
            config: PisaConfig {
                restarts: 1,
                i_max: 250,
                ..PisaConfig::default()
            },
        };
        let res = pisa.run(&|rng| initial_instance(rng));
        assert!(res.evaluations <= 251, "{}", res.evaluations);
        // and the paper's full schedule stops at T_min, not I_max
        let full = PisaConfig::default();
        let natural_stop = ((full.t_min / full.t_max).ln() / full.alpha.ln()).ceil() as usize;
        assert!(
            natural_stop < full.i_max,
            "T_min binds first: {natural_stop}"
        );
    }
}
