//! The lockstep batch driver: K pairwise cells annealed in one loop.
//!
//! One worker takes a group of `Pair` [`SearchCell`]s and runs every
//! restart of every cell as an independent *lane* of a
//! [`BatchedSchedContext`]: each step perturbs all live lanes, evaluates
//! them back-to-back (grouped by instance shape, which also keeps a cell's
//! same-scheduler-pair restarts adjacent), applies each lane's
//! accept/reject, then retires lanes through the masked K-wide
//! cooling sweep. Lanes keep their own scheduling context, RNG stream and
//! instance buffers, so a lane is exactly one scalar
//! [`run_annealing`](crate::annealer)-shaped run — same draws, same
//! accept decisions, same restart fold — and the batch produces
//! bit-identical [`PisaResult`]s to the scalar `SearchCell` path (the
//! `batched_eval` suite and the golden fixtures pin this; CI re-runs the
//! goldens with `SAGA_NO_BATCH=1` forcing the scalar path and diffs).
//!
//! Lane evaluations drive the same incremental protocol as the scalar
//! loop — [`Scheduler::makespan_incremental`] against the lane's own
//! [`PairTraces`] under [`SchedContext::pin_tables_dirty`] — so the batch
//! keeps the replay-prefix win, and `SAGA_NO_INCREMENTAL` degrades both
//! paths identically. The fused EFT row kernels (PR 8) reach the lanes the
//! same way: every lane evaluation runs the schedulers' own loops, which
//! answer node selections through the row kernels (`SAGA_NO_EFT_ROW`
//! likewise degrades batch and scalar identically).

use crate::annealer::{accept, PairTraces, PisaConfig, PisaResult};
use crate::constraints;
use crate::makespan_ratio;
use crate::perturb::{initial_instance, GeneralPerturber, PerturbUndo, Perturber};
use crate::runner::{CellKind, SearchCell};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saga_core::{
    batch_enabled, incremental_enabled, BatchedSchedContext, DirtyRegion, Instance, SchedContext,
};
use saga_schedulers::Scheduler;

/// Lane budget per lockstep group: groups are planned so the sum of member
/// cells' restart counts stays at or under this, bounding a worker's lane
/// contexts. Two lanes measured fastest on the fig4 quick grid (wider
/// groups pay more for alternating lane working sets than they win back in
/// shared sweeps), so a quick cell's two restarts form one group and
/// single-restart cells pair up; higher-restart schedules (the paper's 5)
/// take the scalar fallback.
pub const LANE_BUDGET: usize = 2;

/// Whether `cell` can run on the lockstep path: general pairwise cells
/// whose restart count fits the lane budget. App/metric/ablation cells and
/// oversized cells take the scalar fallback.
pub fn lockstep_supported(cell: &SearchCell) -> bool {
    matches!(cell.kind, CellKind::Pair { .. })
        && cell.config.restarts >= 1
        && cell.config.restarts <= LANE_BUDGET
}

/// One unit of a planned batch execution: a single scalar cell, or a group
/// of cells to run in lockstep. Indices point into the planner's input
/// slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecUnit {
    /// Run `cells[i]` on the scalar `SearchCell::run` path.
    Scalar(usize),
    /// Run these cells as one lockstep lane group.
    Lockstep(Vec<usize>),
}

impl ExecUnit {
    /// The cell indices this unit covers, in input order.
    pub fn indices(&self) -> &[usize] {
        match self {
            ExecUnit::Scalar(i) => std::slice::from_ref(i),
            ExecUnit::Lockstep(idxs) => idxs,
        }
    }
}

/// Plans a cell grid into execution units: cells for which `eligible`
/// holds are packed, in input order, into lockstep groups of at most
/// [`LANE_BUDGET`] lanes (one lane per restart); everything else becomes a
/// scalar unit. With batching disabled (`SAGA_NO_BATCH`), every cell is
/// scalar. The plan depends only on the cells and `eligible` — never on
/// thread count — and results are bit-identical under any plan, so callers
/// may vary eligibility (e.g. checkpoint-stored cells) freely.
pub fn plan_units(
    cells: &[SearchCell],
    mut eligible: impl FnMut(usize, &SearchCell) -> bool,
) -> Vec<ExecUnit> {
    let batching = batch_enabled();
    let mut units = Vec::new();
    let mut group: Vec<usize> = Vec::new();
    let mut group_lanes = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        if !(batching && lockstep_supported(cell) && eligible(i, cell)) {
            units.push(ExecUnit::Scalar(i));
            continue;
        }
        let lanes = cell.config.restarts;
        if group_lanes + lanes > LANE_BUDGET && !group.is_empty() {
            units.push(ExecUnit::Lockstep(std::mem::take(&mut group)));
            group_lanes = 0;
        }
        group.push(i);
        group_lanes += lanes;
    }
    if !group.is_empty() {
        units.push(ExecUnit::Lockstep(group));
    }
    units
}

/// One cell's resolved search ingredients, shared by all its lanes.
struct CellPlan {
    target: Box<dyn Scheduler>,
    baseline: Box<dyn Scheduler>,
    target_name: String,
    baseline_name: String,
    perturber: GeneralPerturber,
    config: PisaConfig,
}

impl CellPlan {
    fn new(cell: &SearchCell) -> Self {
        let CellKind::Pair { target, baseline } = &cell.kind else {
            panic!("lockstep group holds a non-pair cell {}", cell.label);
        };
        let resolve = |name: &str| -> Box<dyn Scheduler> {
            saga_schedulers::by_name(name)
                .unwrap_or_else(|| panic!("cell {}: unknown scheduler {name}", cell.label))
        };
        CellPlan {
            target: resolve(target),
            baseline: resolve(baseline),
            target_name: target.clone(),
            baseline_name: baseline.clone(),
            perturber: constraints::restrict_for_pair(
                GeneralPerturber::default(),
                target,
                baseline,
            ),
            config: cell.config,
        }
    }

    /// The pair's initial-instance draw — identical to the scalar
    /// `SearchCell::run` closure.
    fn draw_start(&self, rng: &mut StdRng) -> Instance {
        let mut inst = initial_instance(rng);
        constraints::homogenize_for_pair(&mut inst, &self.target_name, &self.baseline_name);
        inst
    }
}

/// One lane: a single restart of a single cell, carrying exactly the
/// per-run state the scalar annealing loop keeps on its stack (the f64
/// schedule/objective scalars live in the batch's SoA rows instead).
struct Lane {
    cell: usize,
    rng: StdRng,
    current: Instance,
    candidate: Instance,
    best: Instance,
    /// Accumulated dirt from rejected iterations (the scalar loop's
    /// `pending`).
    pending: DirtyRegion,
    /// This step's dirty region, handed from the perturb phase to the
    /// evaluation phase.
    dirty: DirtyRegion,
    /// This step's undo record (`None` on the clone-based opaque path).
    undo: Option<PerturbUndo>,
    opaque: bool,
    /// The lane's recorded scheduler runs, replayed incrementally exactly
    /// like the scalar loop's `PairTraces`.
    traces: PairTraces,
    initial: f64,
    evaluations: usize,
}

/// The pair objective, driven exactly like `Pisa::ratio_incremental`:
/// refresh the stale cost-table pieces, evaluate both schedulers
/// incrementally against the lane's recorded traces under the shared pin,
/// ratio the makespans.
fn eval_pair(
    ctx: &mut SchedContext,
    plan: &CellPlan,
    inst: &Instance,
    dirty: &DirtyRegion,
    traces: &mut PairTraces,
) -> f64 {
    ctx.pin_tables_dirty(inst, dirty);
    let a = plan
        .target
        .makespan_incremental(inst, ctx, &mut traces.target, dirty);
    let b = plan
        .baseline
        .makespan_incremental(inst, ctx, &mut traces.baseline, dirty);
    ctx.unpin_tables();
    makespan_ratio(a, b)
}

/// Runs a group of `Pair` cells in lockstep on `batch`, returning one
/// [`PisaResult`] per cell in input order — bit-identical to running each
/// cell through the scalar `SearchCell::run` path.
///
/// # Panics
/// Panics if a cell is not a `Pair` cell, names an unknown scheduler, or
/// has zero restarts (the scalar path's `restarts >= 1` contract).
pub fn run_cells_lockstep(
    batch: &mut BatchedSchedContext,
    cells: &[&SearchCell],
) -> Vec<PisaResult> {
    let plans: Vec<CellPlan> = cells.iter().map(|c| CellPlan::new(c)).collect();
    // `SAGA_NO_INCREMENTAL` forces full table rebuilds exactly like the
    // scalar loop (the evaluations here are already trace-free).
    let force_full = !incremental_enabled();

    // Lane setup: restart `k` of each cell seeds its own RNG with
    // `seed + k` and draws its start, exactly like `best_over_restarts`.
    let mut lanes: Vec<Lane> = Vec::new();
    for (ci, plan) in plans.iter().enumerate() {
        for k in 0..plan.config.restarts {
            let mut rng = StdRng::seed_from_u64(plan.config.seed.wrapping_add(k as u64));
            let start = plan.draw_start(&mut rng);
            lanes.push(Lane {
                cell: ci,
                rng,
                candidate: start.clone(),
                best: start.clone(),
                current: start,
                pending: DirtyRegion::clean(),
                dirty: DirtyRegion::full(),
                undo: None,
                opaque: false,
                traces: PairTraces::default(),
                initial: 0.0,
                evaluations: 0,
            });
        }
    }

    // Initial evaluations arm the lanes' SoA schedule rows.
    batch.ensure_lanes(lanes.len());
    for (li, lane) in lanes.iter_mut().enumerate() {
        let cfg = &plans[lane.cell].config;
        let r = eval_pair(
            batch.lane(li),
            &plans[lane.cell],
            &lane.current,
            &DirtyRegion::full(),
            &mut lane.traces,
        );
        lane.initial = r;
        lane.evaluations = 1;
        batch.reset_lane(
            li,
            cfg.t_max,
            cfg.t_min,
            cfg.alpha,
            cfg.i_max.try_into().unwrap_or(u64::MAX),
            r,
        );
    }

    // Evaluation order: same-shape lanes run adjacently (the kernels' row
    // widths stay constant across consecutive lanes), and the stable sort
    // keeps a cell's restarts — the same scheduler pair — adjacent within a
    // shape class. Shapes are fixed for a whole run (no perturbation adds
    // or removes tasks/nodes), so the order is computed once.
    let mut order: Vec<usize> = (0..lanes.len()).collect();
    order.sort_by_key(|&li| {
        let inst = &lanes[li].current;
        (inst.graph.task_count(), inst.network.node_count(), li)
    });

    run_steps(batch, &plans, &mut lanes, &order, force_full);

    // The scalar restart fold: strictly-better ratios win, ties keep the
    // earlier restart; lanes were pushed in (cell, restart) order.
    let mut results: Vec<Option<PisaResult>> = cells.iter().map(|_| None).collect();
    for (li, lane) in lanes.iter().enumerate() {
        let ratio = batch.best[li];
        let better = match &results[lane.cell] {
            None => true,
            Some(prev) => ratio > prev.ratio,
        };
        if better {
            results[lane.cell] = Some(PisaResult {
                instance: lane.best.clone(),
                ratio,
                initial_ratio: lane.initial,
                evaluations: lane.evaluations,
            });
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("restarts >= 1"))
        .collect()
}

/// The lockstep loop proper: every live lane advances exactly one
/// annealing iteration per step (perturb → evaluate → accept), swept in
/// shape-grouped order, then the masked K-wide cooling sweep retires lanes
/// whose schedule ended. Lanes are fully independent — each owns its RNG,
/// context and instance buffers — so the fused per-lane sweep executes the
/// scalar annealing iteration verbatim (same RNG consumption order:
/// perturbation draws, then at most one acceptance draw) and a lane's hot
/// state stays cache-resident across its whole iteration instead of being
/// revisited once per phase.
fn run_steps(
    batch: &mut BatchedSchedContext,
    plans: &[CellPlan],
    lanes: &mut [Lane],
    order: &[usize],
    force_full: bool,
) {
    while batch.live() > 0 {
        for &li in order {
            if !batch.is_active(li) {
                continue;
            }
            let lane = &mut lanes[li];
            let plan = &plans[lane.cell];
            // Perturb in place (undo on rejection), or clone-based opaque
            // fallback under a full region.
            if let Some(undo) = plan
                .perturber
                .perturb_undoable(&mut lane.current, &mut lane.rng)
            {
                lane.dirty = if force_full {
                    DirtyRegion::full()
                } else {
                    let mut d = undo.dirty_region();
                    d.merge(&lane.pending);
                    d
                };
                lane.undo = Some(undo);
                lane.opaque = false;
            } else {
                lane.candidate.clone_from(&lane.current);
                plan.perturber.perturb(&mut lane.candidate, &mut lane.rng);
                lane.dirty = DirtyRegion::full();
                lane.undo = None;
                lane.opaque = true;
            }
            // Evaluate against the lane's own context and traces.
            let inst = if lane.opaque {
                &lane.candidate
            } else {
                &lane.current
            };
            let r = eval_pair(batch.lane(li), plan, inst, &lane.dirty, &mut lane.traces);
            batch.candidate[li] = r;
            // Accept/reject, mirroring the scalar loop's branch structure.
            lane.evaluations += 1;
            if !lane.opaque {
                let undo = lane.undo.take().expect("in-place step stored its undo");
                lane.pending = DirtyRegion::clean();
                if r > batch.best[li] {
                    lane.best.clone_from(&lane.current);
                    batch.best[li] = r;
                    batch.current[li] = r;
                } else if accept(batch.current[li], r, batch.temperature[li], &mut lane.rng) {
                    batch.current[li] = r;
                } else {
                    undo.revert(&mut lane.current);
                    lane.pending = undo.revert_dirty_region();
                }
            } else if r > batch.best[li] {
                lane.best.clone_from(&lane.candidate);
                batch.best[li] = r;
                std::mem::swap(&mut lane.current, &mut lane.candidate);
                batch.current[li] = r;
                lane.pending = DirtyRegion::clean();
            } else if accept(batch.current[li], r, batch.temperature[li], &mut lane.rng) {
                std::mem::swap(&mut lane.current, &mut lane.candidate);
                batch.current[li] = r;
                lane.pending = DirtyRegion::clean();
            } else {
                lane.pending = DirtyRegion::full();
            }
        }
        batch.advance_live();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annealer::AnnealScratch;
    use crate::runner::cell_config;

    fn quick(seed: u64, restarts: usize) -> PisaConfig {
        PisaConfig {
            i_max: 60,
            restarts,
            seed,
            ..PisaConfig::default()
        }
    }

    #[test]
    fn lockstep_matches_scalar_bit_for_bit() {
        // heterogeneous pairs, seeds and restart counts in one group
        let cells = [
            SearchCell::pair("HEFT", "CPoP", cell_config(quick(0xA1, 2), 0)),
            SearchCell::pair("MinMin", "FastestNode", cell_config(quick(0xA1, 3), 1)),
            SearchCell::pair("ETF", "HEFT", cell_config(quick(0xA1, 1), 2)),
        ];
        let refs: Vec<&SearchCell> = cells.iter().collect();
        let mut batch = BatchedSchedContext::default();
        let batched = run_cells_lockstep(&mut batch, &refs);
        let mut ctx = SchedContext::new();
        let mut scratch = AnnealScratch::default();
        for (cell, b) in cells.iter().zip(&batched) {
            let s = cell.run(&mut ctx, &mut scratch);
            assert_eq!(s.ratio.to_bits(), b.ratio.to_bits(), "{}", cell.label);
            assert_eq!(
                s.initial_ratio.to_bits(),
                b.initial_ratio.to_bits(),
                "{}",
                cell.label
            );
            assert_eq!(s.evaluations, b.evaluations, "{}", cell.label);
            assert_eq!(s.instance.to_json(), b.instance.to_json(), "{}", cell.label);
        }
    }

    #[test]
    fn plan_packs_groups_and_falls_back() {
        let pair = |i: u64, restarts| SearchCell::pair("HEFT", "CPoP", quick(i, restarts));
        let cells = vec![
            pair(0, 1),
            pair(1, 1), // 1+1 fills a group at the budget; the next pair spills
            pair(2, LANE_BUDGET),
            SearchCell::metric(
                crate::metric::Objective::RentalCost,
                "HEFT",
                "CPoP",
                quick(3, 2),
            ),
            pair(4, LANE_BUDGET + 1), // oversized: scalar fallback
            pair(5, 1),
        ];
        let units = plan_units(&cells, |_, _| true);
        if batch_enabled() {
            assert_eq!(
                units,
                vec![
                    ExecUnit::Lockstep(vec![0, 1]),
                    ExecUnit::Scalar(3),
                    ExecUnit::Scalar(4),
                    ExecUnit::Lockstep(vec![2]),
                    ExecUnit::Lockstep(vec![5]),
                ]
            );
        } else {
            assert_eq!(units.len(), cells.len());
            assert!(units.iter().all(|u| matches!(u, ExecUnit::Scalar(_))));
        }
        let mut covered: Vec<usize> = units.iter().flat_map(|u| u.indices().to_vec()).collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..cells.len()).collect::<Vec<_>>());
    }

    #[test]
    fn plan_respects_eligibility() {
        let cells = vec![
            SearchCell::pair("HEFT", "CPoP", quick(0, 2)),
            SearchCell::pair("CPoP", "HEFT", quick(1, 2)),
        ];
        let units = plan_units(&cells, |i, _| i != 0);
        assert!(units.contains(&ExecUnit::Scalar(0)));
    }
}
