//! Application-specific PISA (the paper's Section VII).
//!
//! For scientific-workflow users the task-graph *structure* is known ahead
//! of time, so the adversarial search is restricted to realistic instances:
//!
//! * the initial instance is a synthetic workflow of the application's rigid
//!   shape with a trace-fitted network, links homogenized to a target CCR;
//! * *Change Network Edge Weight* is removed (links are pinned by the CCR);
//! * *Add/Remove Dependency* are removed (structure is representative);
//! * the remaining weight perturbations are re-scaled to the min/max
//!   runtimes, I/O sizes and machine speeds observed for that application.

use crate::annealer::{AnnealScratch, Pisa, PisaConfig, PisaResult};
use crate::perturb::{GeneralPerturber, WeightRange};
use rand::rngs::StdRng;
use saga_core::Instance;
use saga_datasets::ccr::set_homogeneous_ccr;
use saga_datasets::workflows::{self, WorkflowSpec};
use saga_schedulers::Scheduler;

/// One Section VII experiment: a workflow application at a fixed CCR.
#[derive(Debug, Clone, Copy)]
pub struct AppSpecific {
    /// Trace-range constants for the application.
    pub spec: WorkflowSpec,
    /// Target communication-to-computation ratio.
    pub ccr: f64,
}

impl AppSpecific {
    /// Builds the experiment for a named workflow, if known.
    pub fn new(workflow: &str, ccr: f64) -> Option<Self> {
        workflows::spec(workflow).map(|spec| AppSpecific { spec, ccr })
    }

    /// Samples an in-family initial instance: the application's rigid
    /// structure, trace-range weights, and links homogenized to the CCR.
    pub fn initial_instance(&self, rng: &mut StdRng) -> Instance {
        let g = workflows::build_graph(self.spec.name, rng);
        let net = workflows::sample_chameleon_network(rng, &self.spec);
        let mut inst = Instance::new(net, g);
        set_homogeneous_ccr(&mut inst, self.ccr);
        inst
    }

    /// The Section VII perturber: structure-preserving, trace-scaled.
    pub fn perturber(&self) -> GeneralPerturber {
        GeneralPerturber {
            node_weights: true,
            edge_weights: false,
            task_weights: true,
            dependency_weights: true,
            add_dependency: false,
            remove_dependency: false,
            node_range: WeightRange::new(self.spec.speed_range.0, self.spec.speed_range.1),
            link_range: WeightRange::UNIT, // unused (edge_weights = false)
            task_range: WeightRange::new(self.spec.runtime_range.0, self.spec.runtime_range.1),
            dep_range: WeightRange::new(self.spec.io_range.0, self.spec.io_range.1),
        }
    }

    /// Runs the adversarial search for one ordered pair.
    pub fn run_pair(
        &self,
        target: &dyn Scheduler,
        baseline: &dyn Scheduler,
        config: PisaConfig,
    ) -> PisaResult {
        let mut ctx = saga_core::SchedContext::new();
        let mut scratch = AnnealScratch::default();
        self.run_pair_in(target, baseline, config, &mut ctx, &mut scratch)
    }

    /// [`run_pair`](Self::run_pair) borrowing the scheduling context and
    /// scratch instances from the caller — the batch-runner entry point.
    pub fn run_pair_in(
        &self,
        target: &dyn Scheduler,
        baseline: &dyn Scheduler,
        config: PisaConfig,
        ctx: &mut saga_core::SchedContext,
        scratch: &mut AnnealScratch,
    ) -> PisaResult {
        let perturber = self.perturber();
        let pisa = Pisa {
            target,
            baseline,
            perturber: &perturber,
            config,
        };
        let this = *self;
        pisa.run_in(ctx, scratch, &move |rng| this.initial_instance(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use saga_schedulers::{Cpop, FastestNode};

    #[test]
    fn initial_instances_hit_the_target_ccr() {
        let app = AppSpecific::new("blast", 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            let inst = app.initial_instance(&mut rng);
            assert!((inst.ccr() - 0.5).abs() < 1e-9, "ccr {}", inst.ccr());
        }
    }

    #[test]
    fn unknown_workflow_is_rejected() {
        assert!(AppSpecific::new("nope", 1.0).is_none());
    }

    #[test]
    fn perturbations_preserve_structure_and_ranges() {
        use crate::perturb::Perturber;
        let app = AppSpecific::new("srasearch", 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut inst = app.initial_instance(&mut rng);
        let deps_before: Vec<_> = inst.graph.dependencies().map(|(a, b, _)| (a, b)).collect();
        let link = inst
            .network
            .link(saga_core::NodeId(0), saga_core::NodeId(1));
        let p = app.perturber();
        for _ in 0..1000 {
            p.perturb(&mut inst, &mut rng);
        }
        let deps_after: Vec<_> = inst.graph.dependencies().map(|(a, b, _)| (a, b)).collect();
        assert_eq!(deps_before, deps_after, "structure must be rigid");
        assert_eq!(
            inst.network
                .link(saga_core::NodeId(0), saga_core::NodeId(1)),
            link,
            "links pinned by the CCR"
        );
        let sp = app.spec;
        for t in inst.graph.tasks() {
            let c = inst.graph.cost(t);
            assert!(c >= sp.runtime_range.0 && c <= sp.runtime_range.1);
        }
        for v in inst.network.nodes() {
            let s = inst.network.speed(v);
            assert!(s >= sp.speed_range.0 && s <= sp.speed_range.1);
        }
    }

    #[test]
    fn finds_in_family_adversarial_instances() {
        // Section VII's headline: even within rigid blast-shaped instances,
        // PISA finds cases where CPoP badly trails the serial baseline.
        let app = AppSpecific::new("blast", 0.2).unwrap();
        let res = app.run_pair(
            &Cpop,
            &FastestNode,
            PisaConfig {
                restarts: 1,
                i_max: 150,
                seed: 3,
                ..PisaConfig::default()
            },
        );
        assert!(res.ratio >= res.initial_ratio);
        assert!(res.ratio.is_finite() || res.ratio.is_infinite()); // defined
    }
}
