//! # saga-pisa
//!
//! PISA — *Problem-instance Identification using Simulated Annealing* — the
//! paper's main contribution (Section VI): an adversarial search for problem
//! instances on which one scheduler maximally under-performs another, i.e.
//!
//! ```text
//! max_{(N, G)}  m(S_A(N,G)) / m(S_B(N,G))
//! ```
//!
//! * [`annealer`] — the simulated-annealing loop of Algorithm 1 with the
//!   paper's constants (`T_max = 10`, `T_min = 0.1`, `I_max = 1000`,
//!   `alpha = 0.99`, 5 restarts).
//! * [`perturb`] — the six perturbation operators of Section VI and the
//!   trace-scaled, structure-preserving variants of Section VII.
//! * [`constraints`] — per-scheduler homogeneity restrictions (ETF/FCP/FLB
//!   fix node speeds; BIL/GDL/FCP/FLB fix link strengths).
//! * [`pairwise`] — the all-pairs cell grid behind Fig. 4.
//! * [`app_specific`] — the Section VII application-specific search over
//!   rigid scientific-workflow structures at fixed CCR.
//! * [`runner`] — the [`SearchCell`](runner::SearchCell) runtime: every
//!   search variant expressed as data, executed against borrowed contexts
//!   and scratch by any driver (pooled rayon here, the checkpointing batch
//!   engine in `saga-experiments`).

#![warn(missing_docs)]

pub mod ablation;
pub mod annealer;
pub mod app_specific;
pub mod constraints;
pub mod library;
pub mod lockstep;
pub mod metric;
pub mod pairwise;
pub mod perturb;
pub mod runner;
pub mod shard;

pub use annealer::{AnnealScratch, PairTraces, Pisa, PisaConfig, PisaResult};
pub use lockstep::{lockstep_supported, plan_units, run_cells_lockstep, ExecUnit, LANE_BUDGET};
pub use pairwise::{pairwise_cells, pairwise_matrix, PairwiseMatrix};
pub use perturb::{GeneralPerturber, Perturber};
pub use runner::{cell_config, run_cells_pooled, CellKind, SearchCell};
pub use shard::{shard_cells, ShardSpec};

/// The adversarial objective: the makespan ratio of `target` against
/// `baseline` (`m_A / m_B`), with the conventions the paper's `> 1000`
/// cells imply:
///
/// * both infinite (or both zero) → `1.0` — neither wins;
/// * target infinite, baseline finite → `+inf` — an unboundedly bad case;
/// * target finite, baseline infinite → `0.0` — the baseline is the broken
///   one.
pub fn makespan_ratio(target: f64, baseline: f64) -> f64 {
    debug_assert!(!target.is_nan() && !baseline.is_nan());
    if target.is_infinite() && baseline.is_infinite() {
        return 1.0;
    }
    if target == 0.0 && baseline == 0.0 {
        return 1.0;
    }
    target / baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_conventions() {
        assert_eq!(makespan_ratio(2.0, 1.0), 2.0);
        assert_eq!(makespan_ratio(f64::INFINITY, f64::INFINITY), 1.0);
        assert_eq!(makespan_ratio(0.0, 0.0), 1.0);
        assert_eq!(makespan_ratio(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(makespan_ratio(1.0, f64::INFINITY), 0.0);
        assert_eq!(makespan_ratio(0.0, 1.0), 0.0);
    }
}
