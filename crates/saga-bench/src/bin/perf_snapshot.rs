//! One-shot wall-clock snapshot of the scheduling hot paths, printed as
//! JSON. Used to track the perf trajectory across PRs (`results/BENCH_*.json`)
//! and to compare the allocation-free kernel against the pre-kernel baseline
//! (`results/bench.json`).
//!
//! ```text
//! cargo run --release -p saga-bench --bin perf_snapshot > snapshot.json
//! ```

use rand::rngs::StdRng;
use rayon::prelude::*;
use saga_core::{BatchedSchedContext, Instance, SchedContext};
use saga_experiments::benchmarking;
use saga_experiments::engine::BatchEngine;
use saga_experiments::merge::merge_files;
use saga_pisa::annealer::AnnealScratch;
use saga_pisa::{
    pairwise_cells, shard_cells, GeneralPerturber, Pisa, PisaConfig, SearchCell, ShardSpec,
};
use saga_schedulers::util::fixtures;
use saga_schedulers::Scheduler;
use std::hint::black_box;
use std::time::Instant;

/// A 50-task adversarial-search initial instance (the acceptance-criteria
/// workload: a PISA quick-config cell over 50-task instances).
fn init_50(rng: &mut StdRng) -> Instance {
    let seed = rand::Rng::gen::<u64>(rng);
    fixtures::random_instance(seed, 50, 4, 0.15)
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn pisa_cell_ms(target: &dyn Scheduler, baseline: &dyn Scheduler) -> f64 {
    let perturber = GeneralPerturber::default();
    let pisa = Pisa {
        target,
        baseline,
        perturber: &perturber,
        config: PisaConfig::quick(11),
    };
    time_ms(|| {
        black_box(pisa.run(&|rng| init_50(rng)).ratio);
    })
}

fn sched_throughput_ms(s: &dyn Scheduler, inst: &Instance, reps: usize) -> f64 {
    time_ms(|| {
        for _ in 0..reps {
            black_box(s.schedule(black_box(inst)).makespan());
        }
    }) / reps as f64
}

/// One fig2-class batch: every benchmark scheduler on `instances` fresh
/// instances of all 16 datasets. Returns cells (= instances) per second.
/// `threads = 0` runs the PR 2 sequential driver (fresh context per
/// instance, tables rebuilt per scheduler); otherwise the batch engine
/// under `RAYON_NUM_THREADS=threads`.
fn fig2_batch_cells_per_s(
    schedulers: &[Box<dyn Scheduler>],
    instances: usize,
    threads: usize,
) -> f64 {
    let generators = saga_datasets::all_generators();
    let cells = (generators.len() * instances) as f64;
    let seed = 0xF162;
    let ms = if threads == 0 {
        time_ms(|| {
            for gen in &generators {
                black_box(benchmarking::benchmark_dataset(
                    schedulers, gen, instances, seed,
                ));
            }
        })
    } else {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        let engine = BatchEngine::new();
        let ms = time_ms(|| {
            for gen in &generators {
                black_box(benchmarking::benchmark_dataset_engine(
                    &engine, schedulers, gen, instances, seed, None,
                ));
            }
        });
        std::env::remove_var("RAYON_NUM_THREADS");
        ms
    };
    cells / (ms / 1e3)
}

/// One full batch of quick fig4 cells (all ordered pairs of the 15-strong
/// benchmark roster, `i_max 250`, 2 restarts — ~103k annealer iterations).
/// Returns cells per second. `threads = 0` runs the cells sequentially the
/// way the pre-refactor driver did — a fresh `SchedContext` and fresh
/// scratch instances per cell; otherwise the engine's `run_cells` under
/// `RAYON_NUM_THREADS=threads` (pooled warm context + scratch per worker).
fn fig4_quick_cells_per_s(threads: usize) -> f64 {
    let schedulers = saga_schedulers::benchmark_schedulers();
    let cells = pairwise_cells(
        &schedulers,
        PisaConfig {
            i_max: 250,
            restarts: 2,
            seed: 0xF164,
            ..PisaConfig::default()
        },
    );
    let ms = if threads == 0 {
        time_ms(|| {
            for cell in &cells {
                let mut ctx = SchedContext::new();
                let mut scratch = AnnealScratch::default();
                black_box(cell.run(&mut ctx, &mut scratch).ratio);
            }
        })
    } else {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        let engine = BatchEngine::new();
        let ms = time_ms(|| {
            black_box(engine.run_cells(&cells, None, None).unwrap());
        });
        std::env::remove_var("RAYON_NUM_THREADS");
        ms
    };
    cells.len() as f64 / (ms / 1e3)
}

/// The quick fig4 battery on the batch runtime's two execution paths,
/// bypassing the `SAGA_NO_BATCH` toggle (which is latched once per
/// process): `scalar` loops every cell through `SearchCell::run` with one
/// warm context — the exact shape the planners take with batching disabled
/// — and `lockstep` packs cells into lane groups the way `plan_units`
/// does and drives `run_cells_lockstep`. Results are bit-identical between
/// the two; only throughput differs. Returns `(scalar, lockstep)` in
/// cells per second.
fn fig4_quick_batch_paths_cells_per_s() -> (f64, f64) {
    let schedulers = saga_schedulers::benchmark_schedulers();
    let cells = pairwise_cells(
        &schedulers,
        PisaConfig {
            i_max: 250,
            restarts: 2,
            seed: 0xF164,
            ..PisaConfig::default()
        },
    );
    let mut ctx = SchedContext::new();
    let mut scratch = AnnealScratch::default();
    let scalar_ms = time_ms(|| {
        for cell in &cells {
            black_box(cell.run(&mut ctx, &mut scratch).ratio);
        }
    });
    let mut batch = BatchedSchedContext::default();
    let lockstep_ms = time_ms(|| {
        let mut group: Vec<&SearchCell> = Vec::new();
        let mut lanes = 0usize;
        for cell in &cells {
            if !saga_pisa::lockstep_supported(cell) {
                black_box(cell.run(&mut ctx, &mut scratch).ratio);
                continue;
            }
            if lanes + cell.config.restarts > saga_pisa::LANE_BUDGET && !group.is_empty() {
                black_box(saga_pisa::run_cells_lockstep(&mut batch, &group));
                group.clear();
                lanes = 0;
            }
            group.push(cell);
            lanes += cell.config.restarts;
        }
        if !group.is_empty() {
            black_box(saga_pisa::run_cells_lockstep(&mut batch, &group));
        }
    });
    let n = cells.len() as f64;
    (n / (scalar_ms / 1e3), n / (lockstep_ms / 1e3))
}

/// Warm-context sweep latency: `makespan_into` against a reused
/// `SchedContext` with pinned tables — the annealer's evaluation shape,
/// isolating the selection loops from per-call allocation and table
/// builds.
fn sched_sweep_ms(s: &dyn Scheduler, inst: &Instance, reps: usize) -> f64 {
    let mut ctx = SchedContext::new();
    ctx.pin_tables(inst);
    black_box(s.makespan_into(inst, &mut ctx));
    let ms = time_ms(|| {
        for _ in 0..reps {
            black_box(s.makespan_into(black_box(inst), &mut ctx));
        }
    }) / reps as f64;
    ctx.unpin_tables();
    ms
}

/// The PR-8 BENCH protocol rows in one pass: quick 50-task PISA cells,
/// 50- and 250-task warm-context sweep latencies for the acceptance
/// schedulers, and the shipped quick-fig4 path. One invocation = one
/// sample; the driver script interleaves invocations of the two builds and
/// takes medians.
fn pr8_rows() -> Vec<(&'static str, f64)> {
    let inst50 = fixtures::random_instance(42, 50, 4, 0.15);
    let inst250 = fixtures::random_instance(42, 250, 4, 0.15);
    // warm-up pass so the first measurement is not paying page faults
    black_box(saga_schedulers::Heft.schedule(&inst50).makespan());
    let mut out = Vec::new();
    out.push((
        "pisa_cell_quick_heft_vs_cpop_ms",
        pisa_cell_ms(&saga_schedulers::Heft, &saga_schedulers::Cpop),
    ));
    out.push((
        "pisa_cell_quick_minmin_vs_etf_ms",
        pisa_cell_ms(&saga_schedulers::MinMin, &saga_schedulers::Etf),
    ));
    let rows: [(&dyn Scheduler, &str, &str); 3] = [
        (
            &saga_schedulers::Heft,
            "sched_heft_50t_sweep_ms",
            "sched_heft_250t_sweep_ms",
        ),
        (
            &saga_schedulers::Cpop,
            "sched_cpop_50t_sweep_ms",
            "sched_cpop_250t_sweep_ms",
        ),
        (
            &saga_schedulers::Etf,
            "sched_etf_50t_sweep_ms",
            "sched_etf_250t_sweep_ms",
        ),
    ];
    for (s, l50, l250) in rows {
        out.push((l50, sched_sweep_ms(s, &inst50, 400)));
        out.push((l250, sched_sweep_ms(s, &inst250, 50)));
    }
    // 16-node variants: wide enough for the fused row formulation's
    // vectorized compose (the 4-node rows above sit in the scalar regime)
    let inst250w = fixtures::random_instance(42, 250, 16, 0.15);
    let wide: [(&dyn Scheduler, &str); 3] = [
        (&saga_schedulers::Heft, "sched_heft_250t_16n_sweep_ms"),
        (&saga_schedulers::Cpop, "sched_cpop_250t_16n_sweep_ms"),
        (&saga_schedulers::Etf, "sched_etf_250t_16n_sweep_ms"),
    ];
    for (s, label) in wide {
        out.push((label, sched_sweep_ms(s, &inst250w, 50)));
    }
    out.push((
        "fig4_quick_cells_run_cells_1t_cells_per_s",
        fig4_quick_cells_per_s(1),
    ));
    out
}

/// The quick fig4 battery run through the distributed-grid front door:
/// `shard_cells(cells, 0/1)` before `run_cells`, exactly what `--shard`
/// does on a 1-shard run. The delta against the unsharded row is the whole
/// cost of the shard layer (key formatting + FNV digest per cell) — the
/// acceptance bar is ≥0.98× of unsharded.
fn fig4_quick_cells_per_s_shard_1of1(threads: usize) -> f64 {
    let schedulers = saga_schedulers::benchmark_schedulers();
    let cells = pairwise_cells(
        &schedulers,
        PisaConfig {
            i_max: 250,
            restarts: 2,
            seed: 0xF164,
            ..PisaConfig::default()
        },
    );
    let n = cells.len() as f64;
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let engine = BatchEngine::new();
    let ms = time_ms(|| {
        let cells = shard_cells(black_box(cells), ShardSpec { index: 0, count: 1 });
        black_box(engine.run_cells(&cells, None, None).unwrap());
    });
    std::env::remove_var("RAYON_NUM_THREADS");
    n / (ms / 1e3)
}

/// saga-merge throughput on a synthetic 3-shard checkpoint set
/// (`files` × `records` ~100-byte JSONL records, disjoint keys). Returns
/// merged records per second, including the parse, the key sort and the
/// canonical write.
fn merge_records_per_s(files: usize, records: usize) -> f64 {
    let dir = std::env::temp_dir();
    let paths: Vec<std::path::PathBuf> = (0..files)
        .map(|f| {
            let path = dir.join(format!(
                "saga_perf_snapshot_{}_merge{f}.jsonl",
                std::process::id()
            ));
            let mut text = String::new();
            for r in 0..records {
                text.push_str(&format!(
                    "{{\"key\":\"bench/cell#{f:02}of{r:06}\",\"ratio_bits\":\
                     \"3ff0000000{f:02x}{r:04x}\",\"evals\":{r}}}\n"
                ));
            }
            std::fs::write(&path, text).unwrap();
            path
        })
        .collect();
    let total = (files * records) as f64;
    let mut out = Vec::new();
    let ms = time_ms(|| {
        black_box(merge_files(black_box(&paths), &mut out).unwrap());
    });
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
    assert!(!out.is_empty());
    total / (ms / 1e3)
}

/// A deterministic compute spin — the unit of synthetic skewed work.
fn spin(units: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

/// Skew-recovery wall clock at 4 workers: 64 items where the first 8 are
/// 50× heavier than the rest — the heavy items all land in worker 0's
/// seeded deque segment, so finishing near the fair-share bound requires
/// the siblings to steal. `cursor: true` re-runs the identical workload on
/// the legacy shared-cursor queue (`RAYON_QUEUE=cursor`) for the in-tree
/// A/B.
fn skew_elapsed_ms(cursor: bool) -> f64 {
    let items: Vec<u64> = (0..64u64)
        .map(|i| if i < 8 { 2_000_000 } else { 40_000 })
        .collect();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    if cursor {
        std::env::set_var("RAYON_QUEUE", "cursor");
    }
    // warm-up: spawn the workers once before timing
    black_box(
        items
            .par_iter()
            .with_min_len(1)
            .map(|&u| spin(u))
            .collect::<Vec<u64>>(),
    );
    let ms = time_ms(|| {
        black_box(
            items
                .par_iter()
                .with_min_len(1)
                .map(|&u| spin(u))
                .collect::<Vec<u64>>(),
        );
    });
    if cursor {
        std::env::remove_var("RAYON_QUEUE");
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    ms
}

/// The PR-9 BENCH protocol rows: shard-layer overhead at 1/1 (must be
/// within noise of unsharded), saga-merge throughput, and the
/// skew-recovery A/B between the work-stealing deques and the legacy
/// cursor queue at 4 workers. One invocation = one sample; the driver
/// interleaves invocations of the two builds and takes medians.
fn pr9_rows() -> Vec<(&'static str, f64)> {
    vec![
        (
            "fig4_quick_cells_run_cells_1t_cells_per_s",
            fig4_quick_cells_per_s(1),
        ),
        (
            "fig4_quick_cells_shard_1of1_1t_cells_per_s",
            fig4_quick_cells_per_s_shard_1of1(1),
        ),
        ("merge_3x2000_records_per_s", merge_records_per_s(3, 2000)),
        ("skew_64items_4w_deque_ms", skew_elapsed_ms(false)),
        ("skew_64items_4w_cursor_ms", skew_elapsed_ms(true)),
    ]
}

fn main() {
    // `--pr9` restricts the snapshot to the PR-9 BENCH protocol rows.
    if std::env::args().any(|a| a == "--pr9") {
        let fields: Vec<String> = pr9_rows()
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v:.4}"))
            .collect();
        println!("{{\n{}\n}}", fields.join(",\n"));
        return;
    }
    // `--pr8` restricts the snapshot to the PR-8 BENCH protocol rows.
    if std::env::args().any(|a| a == "--pr8") {
        let fields: Vec<String> = pr8_rows()
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v:.4}"))
            .collect();
        println!("{{\n{}\n}}", fields.join(",\n"));
        return;
    }
    // `--fig4` restricts the snapshot to the quick-fig4 throughput rows —
    // the tight loop used when comparing builds under the BENCH protocol.
    let fig4_only = std::env::args().any(|a| a == "--fig4");
    if fig4_only {
        let mut out = Vec::new();
        out.push((
            "fig4_quick_cells_run_cells_1t_cells_per_s",
            fig4_quick_cells_per_s(1),
        ));
        let (scalar, lockstep) = fig4_quick_batch_paths_cells_per_s();
        out.push(("fig4_quick_cells_scalar_pooled_1t_cells_per_s", scalar));
        out.push(("fig4_quick_cells_lockstep_1t_cells_per_s", lockstep));
        let fields: Vec<String> = out
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v:.4}"))
            .collect();
        println!("{{\n{}\n}}", fields.join(",\n"));
        return;
    }
    let inst50 = fixtures::random_instance(42, 50, 4, 0.15);
    let mut out = Vec::new();

    // warm-up pass so the first measurement is not paying page faults
    black_box(saga_schedulers::Heft.schedule(&inst50).makespan());

    out.push((
        "pisa_cell_quick_heft_vs_cpop_ms",
        pisa_cell_ms(&saga_schedulers::Heft, &saga_schedulers::Cpop),
    ));
    out.push((
        "pisa_cell_quick_minmin_vs_etf_ms",
        pisa_cell_ms(&saga_schedulers::MinMin, &saga_schedulers::Etf),
    ));
    for s in saga_schedulers::benchmark_schedulers() {
        let label: &'static str = match s.name() {
            "HEFT" => "sched_heft_50t_ms",
            "CPoP" => "sched_cpop_50t_ms",
            "ETF" => "sched_etf_50t_ms",
            "MinMin" => "sched_minmin_50t_ms",
            "MaxMin" => "sched_maxmin_50t_ms",
            "GDL" => "sched_gdl_50t_ms",
            "BIL" => "sched_bil_50t_ms",
            "WBA" => "sched_wba_50t_ms",
            "FLB" => "sched_flb_50t_ms",
            _ => continue,
        };
        out.push((label, sched_throughput_ms(&*s, &inst50, 50)));
    }
    let ert = saga_schedulers::by_name("ERT").expect("ERT in roster");
    out.push(("sched_ert_50t_ms", sched_throughput_ms(&*ert, &inst50, 50)));

    // 250-task sweep latencies (PR 8's row-kernel regime) for the
    // acceptance schedulers
    let inst250 = fixtures::random_instance(42, 250, 4, 0.15);
    out.push((
        "sched_heft_250t_ms",
        sched_throughput_ms(&saga_schedulers::Heft, &inst250, 10),
    ));
    out.push((
        "sched_cpop_250t_ms",
        sched_throughput_ms(&saga_schedulers::Cpop, &inst250, 10),
    ));
    out.push((
        "sched_etf_250t_ms",
        sched_throughput_ms(&saga_schedulers::Etf, &inst250, 10),
    ));

    // fig2-class batch throughput (cells = instances; each cell runs all 15
    // schedulers): PR 2 sequential driver vs the batch engine at 1 and 4
    // threads, equal budgets (25 instances/dataset — the old default)
    let schedulers = saga_schedulers::benchmark_schedulers();
    out.push((
        "fig2_batch_seq_pr2_cells_per_s",
        fig2_batch_cells_per_s(&schedulers, 25, 0),
    ));
    out.push((
        "fig2_batch_engine_1t_cells_per_s",
        fig2_batch_cells_per_s(&schedulers, 25, 1),
    ));
    out.push((
        "fig2_batch_engine_4t_cells_per_s",
        fig2_batch_cells_per_s(&schedulers, 25, 4),
    ));

    // quick fig4 PISA-cell throughput: per-cell fresh-context sequential
    // driver (the pre-refactor execution shape) vs the SearchCell engine at
    // 1 and 4 threads
    out.push((
        "fig4_quick_cells_seq_driver_cells_per_s",
        fig4_quick_cells_per_s(0),
    ));
    out.push((
        "fig4_quick_cells_run_cells_1t_cells_per_s",
        fig4_quick_cells_per_s(1),
    ));
    out.push((
        "fig4_quick_cells_run_cells_4t_cells_per_s",
        fig4_quick_cells_per_s(4),
    ));

    // the batch runtime's two paths head to head (same cells, same bits)
    let (scalar, lockstep) = fig4_quick_batch_paths_cells_per_s();
    out.push(("fig4_quick_cells_scalar_pooled_1t_cells_per_s", scalar));
    out.push(("fig4_quick_cells_lockstep_1t_cells_per_s", lockstep));

    let fields: Vec<String> = out
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v:.4}"))
        .collect();
    println!("{{\n{}\n}}", fields.join(",\n"));
}
