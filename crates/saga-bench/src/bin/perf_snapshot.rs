//! One-shot wall-clock snapshot of the scheduling hot paths, printed as
//! JSON. Used to track the perf trajectory across PRs (`results/BENCH_*.json`)
//! and to compare the allocation-free kernel against the pre-kernel baseline
//! (`results/bench.json`).
//!
//! ```text
//! cargo run --release -p saga-bench --bin perf_snapshot > snapshot.json
//! ```

use rand::rngs::StdRng;
use saga_core::Instance;
use saga_pisa::{GeneralPerturber, Pisa, PisaConfig};
use saga_schedulers::util::fixtures;
use saga_schedulers::Scheduler;
use std::hint::black_box;
use std::time::Instant;

/// A 50-task adversarial-search initial instance (the acceptance-criteria
/// workload: a PISA quick-config cell over 50-task instances).
fn init_50(rng: &mut StdRng) -> Instance {
    let seed = rand::Rng::gen::<u64>(rng);
    fixtures::random_instance(seed, 50, 4, 0.15)
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn pisa_cell_ms(target: &dyn Scheduler, baseline: &dyn Scheduler) -> f64 {
    let perturber = GeneralPerturber::default();
    let pisa = Pisa {
        target,
        baseline,
        perturber: &perturber,
        config: PisaConfig::quick(11),
    };
    time_ms(|| {
        black_box(pisa.run(&|rng| init_50(rng)).ratio);
    })
}

fn sched_throughput_ms(s: &dyn Scheduler, inst: &Instance, reps: usize) -> f64 {
    time_ms(|| {
        for _ in 0..reps {
            black_box(s.schedule(black_box(inst)).makespan());
        }
    }) / reps as f64
}

fn main() {
    let inst50 = fixtures::random_instance(42, 50, 4, 0.15);
    let mut out = Vec::new();

    // warm-up pass so the first measurement is not paying page faults
    black_box(saga_schedulers::Heft.schedule(&inst50).makespan());

    out.push((
        "pisa_cell_quick_heft_vs_cpop_ms",
        pisa_cell_ms(&saga_schedulers::Heft, &saga_schedulers::Cpop),
    ));
    out.push((
        "pisa_cell_quick_minmin_vs_etf_ms",
        pisa_cell_ms(&saga_schedulers::MinMin, &saga_schedulers::Etf),
    ));
    for s in saga_schedulers::benchmark_schedulers() {
        if matches!(s.name(), "HEFT" | "CPoP" | "ETF" | "MinMin" | "GDL" | "BIL") {
            let label: &'static str = match s.name() {
                "HEFT" => "sched_heft_50t_ms",
                "CPoP" => "sched_cpop_50t_ms",
                "ETF" => "sched_etf_50t_ms",
                "MinMin" => "sched_minmin_50t_ms",
                "GDL" => "sched_gdl_50t_ms",
                _ => "sched_bil_50t_ms",
            };
            out.push((label, sched_throughput_ms(&*s, &inst50, 50)));
        }
    }

    let fields: Vec<String> = out
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v:.4}"))
        .collect();
    println!("{{\n{}\n}}", fields.join(",\n"));
}
