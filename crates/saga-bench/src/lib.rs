//! # saga-bench
//!
//! Criterion benchmarks for the whole stack:
//!
//! * `benches/schedulers.rs` — schedule-generation time per algorithm vs
//!   graph size (the "scheduling complexity" column of Table I, measured);
//! * `benches/datasets.rs` — generator throughput for all 16 Table II rows;
//! * `benches/pisa.rs` — annealing throughput (evaluations/second) and
//!   perturbation cost;
//! * `benches/figures.rs` — one micro-benchmark per paper table/figure
//!   harness (a single Fig. 2 cell, a single Fig. 4 cell, one Fig. 7/8
//!   family batch, one app-specific cell), so regressions in experiment
//!   runtime are caught the same way as library regressions.
//!
//! Run with `cargo bench --workspace`. Shared fixture builders live here.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga_core::Instance;

/// A deterministic parallel-chains instance with roughly `tasks` tasks — the
/// standard benchmark workload shape.
pub fn chains_instance(tasks: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    // resample until the requested size bracket is hit (generator sizes are
    // random in 6..=27); widen tolerance for the big sizes
    let gen = saga_datasets::by_name("chains").expect("chains generator");
    let mut best: Option<Instance> = None;
    for _ in 0..256 {
        let inst = gen.sample(&mut rng);
        let better = match &best {
            None => true,
            Some(b) => {
                (inst.graph.task_count() as i64 - tasks as i64).abs()
                    < (b.graph.task_count() as i64 - tasks as i64).abs()
            }
        };
        if better {
            best = Some(inst);
        }
    }
    best.expect("sampled at least once")
}

/// A layered montage-style instance (a heavier, realistic workload).
pub fn montage_instance(width: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = saga_datasets::workflows::montage_graph(&mut rng, width);
    let sp = saga_datasets::workflows::spec("montage").unwrap();
    let net = saga_datasets::workflows::sample_chameleon_network(&mut rng, &sp);
    Instance::new(net, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(
            chains_instance(15, 1).to_json(),
            chains_instance(15, 1).to_json()
        );
        let m = montage_instance(8, 2);
        assert!(m.graph.task_count() > 20);
    }
}
