//! One micro-benchmark per paper table/figure harness, so the cost of each
//! regeneration pipeline is tracked alongside the library:
//!
//! * `table2_row` — sampling statistics for one dataset row;
//! * `fig2_cell` — benchmarking one (dataset, all-schedulers) cell batch;
//! * `fig4_cell` — one PISA pairwise cell at a reduced budget;
//! * `fig7_batch` / `fig8_batch` — a 50-instance family comparison;
//! * `app_pisa_cell` — one Section VII application-specific cell.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saga_pisa::app_specific::AppSpecific;
use saga_pisa::perturb::{initial_instance, GeneralPerturber};
use saga_pisa::{Pisa, PisaConfig};
use saga_schedulers::Scheduler;
use std::hint::black_box;

fn tiny_config(seed: u64) -> PisaConfig {
    PisaConfig {
        i_max: 60,
        restarts: 1,
        seed,
        ..PisaConfig::default()
    }
}

fn table2_row(c: &mut Criterion) {
    let gen = saga_datasets::by_name("blast").unwrap();
    c.bench_function("figures/table2_row", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            let inst = gen.sample(&mut rng);
            black_box((inst.graph.task_count(), inst.network.node_count()))
        })
    });
}

fn fig2_cell(c: &mut Criterion) {
    let gen = saga_datasets::by_name("chains").unwrap();
    let schedulers = saga_schedulers::benchmark_schedulers();
    let mut group = c.benchmark_group("figures");
    group.sample_size(20);
    group.bench_function("fig2_cell", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let inst = gen.sample(&mut rng);
            let best = schedulers
                .iter()
                .map(|s| s.schedule(&inst).makespan())
                .fold(f64::INFINITY, f64::min);
            black_box(best)
        })
    });
    group.finish();
}

fn fig4_cell(c: &mut Criterion) {
    let perturber = GeneralPerturber::default();
    let pisa = Pisa {
        target: &saga_schedulers::Heft,
        baseline: &saga_schedulers::FastestNode,
        perturber: &perturber,
        config: tiny_config(2),
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig4_cell", |b| {
        b.iter(|| black_box(pisa.run(&|rng| initial_instance(rng)).ratio))
    });
    group.finish();
}

fn fig7_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig7_batch50", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut total = 0.0;
            for _ in 0..50 {
                let inst = saga_datasets::families::heft_weak_instance(&mut rng);
                total += saga_schedulers::Heft.schedule(&inst).makespan();
            }
            black_box(total)
        })
    });
    group.bench_function("fig8_batch50", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let mut total = 0.0;
            for _ in 0..50 {
                let inst = saga_datasets::families::cpop_weak_instance(&mut rng);
                total += saga_schedulers::Cpop.schedule(&inst).makespan();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn app_pisa_cell(c: &mut Criterion) {
    let app = AppSpecific::new("blast", 1.0).unwrap();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("app_pisa_cell", |b| {
        b.iter(|| {
            black_box(
                app.run_pair(
                    &saga_schedulers::Cpop,
                    &saga_schedulers::FastestNode,
                    tiny_config(5),
                )
                .ratio,
            )
        })
    });
    group.finish();
}

fn extension_cells(c: &mut Criterion) {
    // stochastic_eval: one Monte-Carlo batch for a fixed plan
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    let inst = saga_bench::montage_instance(8, 9);
    let stoch = saga_core::stochastic::StochasticInstance::jittered(&inst, 0.2);
    let plan = saga_schedulers::Heft.schedule(&stoch.expected_instance());
    group.bench_function("stochastic_eval_cell", |b| {
        let mut rng = StdRng::seed_from_u64(10);
        b.iter(|| {
            black_box(saga_core::stochastic::static_plan_makespan(
                &plan, &stoch, 25, &mut rng,
            ))
        })
    });
    // metric_pisa: one energy-objective annealing cell
    let perturber = GeneralPerturber::default();
    group.bench_function("metric_pisa_cell", |b| {
        b.iter(|| {
            black_box(
                saga_pisa::metric::metric_search(
                    saga_pisa::metric::Objective::Energy {
                        idle_fraction: 0.2,
                        comm_energy_per_unit: 1.0,
                    },
                    &saga_schedulers::Heft,
                    &saga_schedulers::FastestNode,
                    &perturber,
                    tiny_config(11),
                    &|rng| initial_instance(rng),
                )
                .ratio,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    table2_row,
    fig2_cell,
    fig4_cell,
    fig7_batch,
    app_pisa_cell,
    extension_cells
);
criterion_main!(benches);
