//! PISA throughput: perturbation cost, single-objective evaluation cost,
//! and a short end-to-end annealing run.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saga_pisa::perturb::{initial_instance, GeneralPerturber, Perturber};
use saga_pisa::{Pisa, PisaConfig};
use std::hint::black_box;

fn bench_perturb(c: &mut Criterion) {
    c.bench_function("pisa/perturb", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut inst = initial_instance(&mut rng);
        let p = GeneralPerturber::default();
        b.iter(|| {
            p.perturb(&mut inst, &mut rng);
            black_box(inst.graph.dependency_count())
        })
    });
}

fn bench_objective(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let inst = initial_instance(&mut rng);
    let perturber = GeneralPerturber::default();
    let pisa = Pisa {
        target: &saga_schedulers::Heft,
        baseline: &saga_schedulers::Cpop,
        perturber: &perturber,
        config: PisaConfig::default(),
    };
    c.bench_function("pisa/objective_eval", |b| {
        b.iter(|| black_box(pisa.ratio(black_box(&inst))))
    });
}

fn bench_short_run(c: &mut Criterion) {
    let perturber = GeneralPerturber::default();
    let pisa = Pisa {
        target: &saga_schedulers::Heft,
        baseline: &saga_schedulers::Cpop,
        perturber: &perturber,
        config: PisaConfig {
            i_max: 50,
            restarts: 1,
            seed: 5,
            ..PisaConfig::default()
        },
    };
    let mut group = c.benchmark_group("pisa");
    group.sample_size(20);
    group.bench_function("anneal_50_iters", |b| {
        b.iter(|| black_box(pisa.run(&|rng| initial_instance(rng)).ratio))
    });
    group.finish();
}

criterion_group!(benches, bench_perturb, bench_objective, bench_short_run);
criterion_main!(benches);
