//! Schedule-generation time per algorithm, on a small chains instance and a
//! larger montage instance — the measured counterpart of Table I's
//! complexity column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let small = saga_bench::chains_instance(12, 1);
    let large = saga_bench::montage_instance(12, 2);
    let mut group = c.benchmark_group("schedulers");
    for s in saga_schedulers::benchmark_schedulers() {
        group.bench_with_input(
            BenchmarkId::new(s.name(), format!("chains_{}", small.graph.task_count())),
            &small,
            |b, inst| b.iter(|| black_box(s.schedule(black_box(inst)).makespan())),
        );
        group.bench_with_input(
            BenchmarkId::new(s.name(), format!("montage_{}", large.graph.task_count())),
            &large,
            |b, inst| b.iter(|| black_box(s.schedule(black_box(inst)).makespan())),
        );
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    // exponential references on a toy instance only
    let mut g = saga_core::TaskGraph::chain(&[0.5, 0.7, 0.9, 0.4], &[0.3, 0.2, 0.6]);
    let extra = g.add_task("x", 0.5);
    g.add_dependency(saga_core::TaskId(0), extra, 0.1).unwrap();
    let inst = saga_core::Instance::new(saga_core::Network::complete(&[1.0, 0.7], 0.8), g);
    let mut group = c.benchmark_group("exact_references");
    for s in saga_schedulers::exact_schedulers() {
        group.bench_function(s.name(), |b| {
            b.iter(|| black_box(s.schedule(black_box(&inst)).makespan()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_exact);
criterion_main!(benches);
