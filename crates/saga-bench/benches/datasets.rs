//! Generator throughput for all 16 Table II dataset rows.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("datasets");
    for gen in saga_datasets::all_generators() {
        // the IoT networks are ~100 nodes; give them fewer samples
        if matches!(gen.name, "etl" | "predict" | "stats" | "train") {
            group.sample_size(20);
        } else {
            group.sample_size(50);
        }
        group.bench_function(gen.name, |b| {
            let mut rng = StdRng::seed_from_u64(42);
            b.iter(|| black_box(gen.sample(&mut rng).graph.task_count()))
        });
    }
    group.finish();
}

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("case_study_families");
    group.bench_function("heft_weak", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(saga_datasets::families::heft_weak_instance(&mut rng)))
    });
    group.bench_function("cpop_weak", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(saga_datasets::families::cpop_weak_instance(&mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_families);
criterion_main!(benches);
