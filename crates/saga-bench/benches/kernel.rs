//! Hot-path benchmarks for the allocation-free scheduling kernel:
//!
//! * `kernel/ctx_reuse_*` vs `kernel/fresh_context_*` — one long-lived
//!   [`SchedContext`] against a fresh context per run, the trade the PISA
//!   annealer exploits tens of thousands of times per cell;
//! * `kernel/eft_query` — the inner-loop earliest-finish-time query against
//!   the cached cost tables on a half-placed 50-task instance;
//! * `pisa/quick_cell_*` — an end-to-end PISA quick-config pairwise cell on
//!   50-task instances (the acceptance-criteria workload).
//!
//! Set `BENCH_JSON=results/bench.json` to append machine-readable medians.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use saga_core::{Instance, SchedContext};
use saga_pisa::{GeneralPerturber, Pisa, PisaConfig};
use saga_schedulers::util::fixtures;
use saga_schedulers::Scheduler;
use std::hint::black_box;

fn inst_50t() -> Instance {
    fixtures::random_instance(42, 50, 4, 0.15)
}

fn bench_ctx_reuse(c: &mut Criterion) {
    let inst = inst_50t();
    let mut group = c.benchmark_group("kernel");
    for (label, s) in [
        ("heft_50t", &saga_schedulers::Heft as &dyn Scheduler),
        ("cpop_50t", &saga_schedulers::Cpop),
        ("minmin_50t", &saga_schedulers::MinMin),
    ] {
        let mut ctx = SchedContext::new();
        group.bench_function(format!("ctx_reuse_{label}"), |b| {
            b.iter(|| black_box(s.makespan_into(black_box(&inst), &mut ctx)))
        });
        group.bench_function(format!("fresh_context_{label}"), |b| {
            b.iter(|| black_box(s.schedule(black_box(&inst)).makespan()))
        });
    }
    group.finish();
}

fn bench_eft_query(c: &mut Criterion) {
    let inst = inst_50t();
    let mut ctx = SchedContext::new();
    ctx.reset(&inst);
    // place the first half of the topological order so queries see realistic
    // timelines and predecessor fans
    let order: Vec<_> = ctx.topo_order().to_vec();
    for &t in order.iter().take(order.len() / 2) {
        let (s, _) = ctx.eft(t, saga_core::NodeId(t.0 % 4), false);
        ctx.place(t, saga_core::NodeId(t.0 % 4), s);
    }
    let probe: Vec<_> = ctx.ready().to_vec();
    c.bench_function("kernel/eft_query", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &t in &probe {
                for v in ctx.nodes() {
                    acc += ctx.eft(t, v, true).1;
                }
            }
            black_box(acc)
        })
    });
}

fn bench_pisa_cell(c: &mut Criterion) {
    let init = |rng: &mut StdRng| {
        let seed = rng.gen::<u64>();
        fixtures::random_instance(seed, 50, 4, 0.15)
    };
    let mut group = c.benchmark_group("pisa");
    group.sample_size(3);
    for (label, target, baseline) in [
        (
            "quick_cell_heft_vs_cpop_50t",
            &saga_schedulers::Heft as &dyn Scheduler,
            &saga_schedulers::Cpop as &dyn Scheduler,
        ),
        (
            "quick_cell_minmin_vs_etf_50t",
            &saga_schedulers::MinMin,
            &saga_schedulers::Etf,
        ),
    ] {
        let perturber = GeneralPerturber::default();
        let pisa = Pisa {
            target,
            baseline,
            perturber: &perturber,
            config: PisaConfig::quick(11),
        };
        group.bench_function(label, |b| b.iter(|| black_box(pisa.run(&init).ratio)));
    }
    group.finish();
}

criterion_group!(benches, bench_ctx_reuse, bench_eft_query, bench_pisa_cell);
criterion_main!(benches);
