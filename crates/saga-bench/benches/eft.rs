//! Scalar vs lane-batched EFT/data-ready kernels at lockstep lane widths.
//!
//! The lockstep batch runtime (PR 7) interleaves K independent annealing
//! lanes, each with its own [`SchedContext`]; the scheduling kernels it
//! leans on answer the same two questions the scalar path asks — "when
//! does `t`'s data arrive on each node?" and "what is `t`'s EFT on each
//! node?" — but sweep all nodes per task in one batched pass
//! ([`SchedContext::data_ready_times_into`], SIMD-folded arrivals) instead
//! of re-scanning the predecessor row once per node
//! ([`SchedContext::data_ready_time`] via [`SchedContext::eft`]).
//!
//! * `eft/scalar_k{K}_{T}t` — per-node `ctx.eft` queries, the pre-batch
//!   formulation: every node visit rescans `t`'s predecessors.
//! * `eft/batched_k{K}_{T}t` — one `data_ready_times_into` pass per task,
//!   then per-node append starts from the shared ready row — the PR-7
//!   formulation.
//! * `eft/fused_k{K}_{T}t` — one [`SchedContext::eft_row_append_into`] call
//!   per task: the batched ready pass plus a branchless tail/exec compose
//!   over the whole node row — the formulation the shipped schedulers
//!   drive when the row kernels are enabled.
//!
//! K ∈ {1, 4, 8} lanes crossed with {5, 50, 250}-task instances: the tiny
//! shape mirrors the fig4 quick cells (3–5 tasks), the 50-task shape the
//! acceptance-criteria workload, the 250-task shape the sweep-latency
//! regime; each lane holds a half-placed instance so queries see realistic
//! timelines and predecessor fans.
//!
//! Set `BENCH_JSON=results/bench.json` to append machine-readable medians.

use criterion::{criterion_group, criterion_main, Criterion};
use saga_core::{Instance, NodeId, SchedContext, TaskId};
use saga_schedulers::util::fixtures;
use std::hint::black_box;

/// One lane: a half-placed instance with its warm context and the ready
/// tasks to probe.
struct Lane {
    ctx: SchedContext,
    probe: Vec<TaskId>,
}

fn lanes(k: usize, tasks: usize) -> Vec<Lane> {
    (0..k)
        .map(|lane| {
            let inst: Instance = fixtures::random_instance(0xEF7 + lane as u64, tasks, 4, 0.15);
            let mut ctx = SchedContext::new();
            ctx.reset(&inst);
            let order: Vec<_> = ctx.topo_order().to_vec();
            for &t in order.iter().take(order.len() / 2) {
                let (s, _) = ctx.eft(t, NodeId(t.0 % 4), false);
                ctx.place(t, NodeId(t.0 % 4), s);
            }
            let probe = ctx.ready().to_vec();
            Lane { ctx, probe }
        })
        .collect()
}

fn bench_eft_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("eft");
    for tasks in [5usize, 50, 250] {
        for k in [1usize, 4, 8] {
            let mut set = lanes(k, tasks);
            group.bench_function(format!("scalar_k{k}_{tasks}t"), |b| {
                b.iter(|| {
                    let mut acc = 0.0f64;
                    for lane in &set {
                        for &t in &lane.probe {
                            for v in lane.ctx.nodes() {
                                acc += lane.ctx.eft(t, v, false).1;
                            }
                        }
                    }
                    black_box(acc)
                })
            });
            group.bench_function(format!("batched_k{k}_{tasks}t"), |b| {
                let mut ready = [0.0f64; 8];
                b.iter(|| {
                    let mut acc = 0.0f64;
                    for lane in &mut set {
                        let nv = lane.ctx.node_count();
                        for &t in &lane.probe {
                            lane.ctx.data_ready_times_into(t, &mut ready[..nv]);
                            for v in lane.ctx.nodes() {
                                let start = lane.ctx.earliest_start_append(v, ready[v.index()]);
                                acc += start + lane.ctx.exec_time(t, v);
                            }
                        }
                    }
                    black_box(acc)
                })
            });
            group.bench_function(format!("fused_k{k}_{tasks}t"), |b| {
                let mut starts = [0.0f64; 8];
                let mut finishes = [0.0f64; 8];
                b.iter(|| {
                    let mut acc = 0.0f64;
                    for lane in &mut set {
                        let nv = lane.ctx.node_count();
                        for &t in &lane.probe {
                            lane.ctx
                                .eft_row_append_into(t, &mut starts[..nv], &mut finishes[..nv]);
                            for &f in &finishes[..nv] {
                                acc += f;
                            }
                        }
                    }
                    black_box(acc)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_eft_kernels);
criterion_main!(benches);
