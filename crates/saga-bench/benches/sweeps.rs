//! Frontier-sweep scheduler benchmarks: every scheduler whose inner loop is
//! a ready-frontier sweep (MinMin, MaxMin, ETF from PR 2; ERT, GDL, WBA,
//! FLB ported in PR 3) at 50, 100 and 250 tasks, with a reused context —
//! the single-core latency these ports exist to improve. GDL was the
//! slowest sweep before its port; watch that row. HEFT and CPoP ride along
//! at the same sizes: they are rank-ordered rather than frontier-swept, but
//! their insertion-policy EFT scans share the fused row kernels (PR 8), so
//! their latencies belong on the same chart.
//!
//! Set `BENCH_JSON=results/bench.json` to append machine-readable medians.

use criterion::{criterion_group, criterion_main, Criterion};
use saga_core::SchedContext;
use saga_schedulers::util::fixtures;
use saga_schedulers::Scheduler;
use std::hint::black_box;

fn bench_sweeps(c: &mut Criterion) {
    let sizes = [50usize, 100, 250];
    let sweeps: [&dyn Scheduler; 9] = [
        &saga_schedulers::MinMin,
        &saga_schedulers::MaxMin,
        &saga_schedulers::Etf,
        &saga_schedulers::Ert,
        &saga_schedulers::Gdl,
        &saga_schedulers::Wba { seed: 0xB1 },
        &saga_schedulers::Flb,
        &saga_schedulers::Heft,
        &saga_schedulers::Cpop,
    ];
    let mut group = c.benchmark_group("sweeps");
    for &tasks in &sizes {
        let inst = fixtures::random_instance(42, tasks, 4, 0.15);
        for s in sweeps {
            let mut ctx = SchedContext::new();
            group.bench_function(format!("{}_{}t", s.name().to_lowercase(), tasks), |b| {
                b.iter(|| black_box(s.makespan_into(black_box(&inst), &mut ctx)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
