//! The shared batch experiment engine.
//!
//! Every paper experiment is a grid of independent cells — (dataset ×
//! instance × scheduler), (witness × candidate), (workflow × realization) —
//! and before this engine existed each binary walked its grid sequentially,
//! rebuilding cost tables and reallocating contexts per run. The engine
//! factors the common machinery out once:
//!
//! * **Sharding** — cells fan out across rayon workers (the vendored rayon
//!   uses dynamic chunk claiming, so skewed cells — mixed-size datasets,
//!   pairwise blowup cells — don't straggle on one worker);
//! * **Context reuse** — each worker takes one warm [`SchedContext`] from a
//!   shared [`ContextPool`] via `map_init` and keeps it for its whole run,
//!   so cells allocate nothing after warm-up, and the pool keeps the warmth
//!   across batches;
//! * **Table pinning** — [`BatchEngine::makespans`] evaluates all `k`
//!   schedulers of a cell under [`SchedContext::with_pinned`], building the
//!   exec/link cost tables once per instance instead of once per
//!   (instance, scheduler);
//! * **Determinism** — cells must not share mutable state (per-cell RNG
//!   streams come from [`derive_seed`]), and results are collected in input
//!   order, so every experiment's output is bit-identical for any
//!   `RAYON_NUM_THREADS`;
//! * **Progress** — [`Progress`] emits monotone `done/total` counts from an
//!   atomic counter, coherent under concurrency (the old per-dataset
//!   `eprintln!` assumed sequential execution).

use rayon::prelude::*;
use saga_core::{BatchedSchedContext, ContextPool, Instance, SchedContext};
use saga_pisa::annealer::AnnealScratch;
use saga_pisa::{PisaResult, SearchCell};
use saga_schedulers::Scheduler;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use saga_core::derive_seed;

/// A coherent, concurrency-safe progress reporter for batch runs.
///
/// Cells tick an atomic counter; a line is printed every `total/20` cells
/// (and at completion), each as a single `eprintln!` with a monotone count —
/// so interleaved workers can never print out-of-order or garbled progress.
pub struct Progress {
    label: String,
    total: usize,
    every: usize,
    done: AtomicUsize,
    claims: AtomicUsize,
    steals: AtomicUsize,
}

impl Progress {
    /// A reporter for `total` cells under the given label.
    pub fn new(label: impl Into<String>, total: usize) -> Self {
        Progress {
            label: label.into(),
            total,
            every: (total / 20).max(1),
            done: AtomicUsize::new(0),
            claims: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        }
    }

    /// Records one completed cell, printing at the configured cadence.
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if done.is_multiple_of(self.every) || done == self.total {
            eprintln!("[{}] {done}/{} cells", self.label, self.total);
        }
    }

    /// Number of cells completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Folds one parallel run's scheduler counters into this reporter's
    /// claim/steal totals, and — under `SAGA_WORKER_STATS=1` — prints the
    /// per-worker imbalance summary.
    pub fn note_worker_stats(&self, stats: &rayon::RunStats) {
        self.claims
            .fetch_add(stats.total_claims(), Ordering::Relaxed);
        self.steals
            .fetch_add(stats.total_steals(), Ordering::Relaxed);
        if worker_stats_enabled() {
            eprintln!(
                "[{}] workers: {} claims: {:?} steals: {:?} items: {:?} imbalance: {:.2}x",
                self.label,
                stats.workers(),
                stats.claims,
                stats.steals,
                stats.items,
                stats.imbalance(),
            );
        }
    }

    /// Total chunk claims observed across the runs folded into this
    /// reporter.
    pub fn claims(&self) -> usize {
        self.claims.load(Ordering::Relaxed)
    }

    /// Total work steals observed across the runs folded into this
    /// reporter (0 under the sequential short-circuit or the legacy cursor
    /// queue).
    pub fn steals(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }
}

/// Whether per-worker scheduler summaries print after each parallel run.
/// Set `SAGA_WORKER_STATS=1` to enable; read once per process.
pub fn worker_stats_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("SAGA_WORKER_STATS").is_some_and(|v| v == "1"))
}

/// Hands the just-finished parallel run's scheduler counters to `progress`
/// (claim/steal accumulation + the optional `SAGA_WORKER_STATS` summary).
/// Advisory: the stats slot is global, so a run issued concurrently from
/// another thread may take it first — counters are diagnostics, not truth.
fn observe_workers(progress: Option<&Progress>) {
    if let (Some(p), Some(stats)) = (progress, rayon::take_last_run_stats()) {
        p.note_worker_stats(&stats);
    }
}

/// The batch evaluation engine. Owns the context pool; one engine per
/// binary is enough (and keeps contexts warm across datasets).
#[derive(Default)]
pub struct BatchEngine {
    pool: ContextPool,
}

impl BatchEngine {
    /// A fresh engine with an empty context pool.
    pub fn new() -> Self {
        BatchEngine::default()
    }

    /// Shards `cells` across workers. For cell functions that don't need a
    /// scheduling context (dataset sampling, profiling). Results come back
    /// in input order regardless of thread count.
    pub fn map<T, R>(&self, cells: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        cells.into_par_iter().map(f).collect()
    }

    /// Shards `cells` across workers, handing each worker one warm
    /// [`SchedContext`] from the pool for its whole run. Results come back
    /// in input order regardless of thread count.
    pub fn map_ctx<T, R>(
        &self,
        cells: Vec<T>,
        f: impl Fn(&mut SchedContext, T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        cells
            .into_par_iter()
            .map_init(|| self.pool.take(), |ctx, cell| f(ctx, cell))
            .collect()
    }

    /// [`map_ctx`](Self::map_ctx) on the calling thread: same pooled
    /// warm-context reuse, no fan-out. For timing-sensitive cells —
    /// concurrent workers timing wall-clock on shared cores would inflate
    /// each other's measurements and make them vary with thread count.
    pub fn map_ctx_seq<T, R>(
        &self,
        cells: Vec<T>,
        mut f: impl FnMut(&mut SchedContext, T) -> R,
    ) -> Vec<R> {
        let mut ctx = self.pool.take();
        cells.into_iter().map(|cell| f(&mut ctx, cell)).collect()
    }

    /// Runs a grid of adversarial-search cells — the fig4-class workload.
    /// Cells shard across workers via `map_init`; each worker holds one warm
    /// [`PooledContext`](saga_core::PooledContext) and one
    /// [`AnnealScratch`] for its whole run, so back-to-back cells (and every
    /// restart within a cell) reuse the same buffers. Results come back in
    /// cell order regardless of thread count, and each cell's RNG streams
    /// are baked into the cell itself, so output is bit-identical for any
    /// `RAYON_NUM_THREADS`.
    ///
    /// With a [`CellCheckpoint`], finished cells are appended to a JSONL
    /// file as they complete and cells already present (matched by
    /// [`SearchCell::key`]) are replayed instead of re-run — a multi-hour
    /// paper-scale fig4 run survives interruption.
    ///
    /// A checkpoint *write* failure (full disk, closed pipe) no longer
    /// aborts the process mid-grid: cells already in flight finish, cells
    /// not yet started are skipped (their annealing work would be discarded
    /// with the error anyway), and the first I/O error is returned — with
    /// every cell recorded before it already flushed to the file, so a
    /// `--resume` continues from there.
    pub fn run_cells(
        &self,
        cells: &[SearchCell],
        progress: Option<&Progress>,
        checkpoint: Option<&CellCheckpoint>,
    ) -> std::io::Result<Vec<PisaResult>> {
        use std::sync::atomic::{AtomicBool, Ordering};
        let write_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        let failed = AtomicBool::new(false);
        let note_write_error = |e: std::io::Error| {
            // a poisoned slot still holds a coherent Option; recover it
            // rather than abort
            let mut slot = write_error
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if slot.is_none() {
                *slot = Some(e);
            }
            failed.store(true, Ordering::Relaxed);
        };
        // Eligible pairwise cells run in lockstep lane groups; everything
        // else — other cell kinds, oversized restart counts, cells the
        // checkpoint will replay, `SAGA_NO_BATCH` — takes the scalar path.
        // The plan never changes results (both paths are bit-identical), so
        // resumed runs may group differently than the original run did.
        let units = saga_pisa::plan_units(cells, |_, cell| {
            checkpoint.is_none_or(|c| c.stored(&cell.key()).is_none())
        });
        let finish = |key: &str, res: PisaResult| {
            if let Some(c) = checkpoint {
                if let Err(e) = c.record(key, &res) {
                    note_write_error(e);
                }
            }
            if let Some(p) = progress {
                p.tick();
            }
            Some(res)
        };
        let mut by_unit: Vec<Vec<(usize, Option<PisaResult>)>> = units
            .par_iter()
            .map_init(
                || {
                    (
                        self.pool.take(),
                        AnnealScratch::default(),
                        BatchedSchedContext::default(),
                    )
                },
                |(ctx, scratch, batch), unit| {
                    // once a write failed, the run's results can never all be
                    // returned — don't burn hours annealing cells that would
                    // be thrown away with the error
                    if failed.load(Ordering::Relaxed) {
                        return unit.indices().iter().map(|&i| (i, None)).collect();
                    }
                    match unit {
                        saga_pisa::ExecUnit::Scalar(i) => {
                            let cell = &cells[*i];
                            let key = cell.key();
                            let res = match checkpoint.and_then(|c| c.stored(&key)) {
                                Some(stored) => {
                                    // replayed, not re-recorded: the file
                                    // already holds this line
                                    if let Some(p) = progress {
                                        p.tick();
                                    }
                                    Some(stored)
                                }
                                None => finish(&key, cell.run(ctx, scratch)),
                            };
                            vec![(*i, res)]
                        }
                        saga_pisa::ExecUnit::Lockstep(idxs) => {
                            let group: Vec<&SearchCell> = idxs.iter().map(|&i| &cells[i]).collect();
                            let results = saga_pisa::run_cells_lockstep(batch, &group);
                            idxs.iter()
                                .zip(results)
                                .map(|(&i, res)| (i, finish(&cells[i].key(), res)))
                                .collect()
                        }
                    }
                },
            )
            .collect();
        observe_workers(progress);
        let mut results: Vec<Option<PisaResult>> = cells.iter().map(|_| None).collect();
        for (i, res) in by_unit.drain(..).flatten() {
            results[i] = res;
        }
        let first_error = write_error
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match first_error {
            Some(e) => Err(e),
            None => Ok(results
                .into_iter()
                // saga-lint: allow(error-discipline) — cells return None only after `failed` is set, which always records an error first; with no error recorded every cell ran
                .map(|r| r.expect("no cell skipped without a recorded error"))
                .collect()),
        }
    }

    /// [`run_cells`](Self::run_cells) for experiment binaries: a checkpoint
    /// write failure prints the error — noting that every cell recorded
    /// before it is already flushed and resumable — and exits nonzero
    /// instead of returning. Keeps the four PISA drivers' failure behavior
    /// identical.
    pub fn run_cells_or_exit(
        &self,
        cells: &[SearchCell],
        progress: Option<&Progress>,
        checkpoint: Option<&CellCheckpoint>,
    ) -> Vec<PisaResult> {
        self.run_cells(cells, progress, checkpoint)
            .unwrap_or_else(|e| {
                eprintln!(
                    "fatal: checkpoint write failed: {e} — cells recorded before the failure \
                     are flushed; re-run with --resume after freeing space"
                );
                std::process::exit(1);
            })
    }

    /// The fused fig2-class dataset loop: cell `k` *generates* instance `k`
    /// from its own derived seed (`derive_seed(seed, k)`) and immediately
    /// evaluates every scheduler on it under pinned cost tables, all inside
    /// the worker — so dataset sampling shards across cores along with the
    /// evaluation instead of bottlenecking on one sequential generation
    /// pass (the old layout's limit at 1000-instance budgets). Returns
    /// `out[instance][scheduler]` makespans in instance order; per-cell
    /// seeds and order-preserving collection keep the output bit-identical
    /// for any `RAYON_NUM_THREADS`, and identical to generating the
    /// instances up front with the same per-instance seeds.
    pub fn dataset_makespans(
        &self,
        schedulers: &[Box<dyn Scheduler>],
        gen: &saga_datasets::DatasetGenerator,
        count: usize,
        seed: u64,
        progress: Option<&Progress>,
    ) -> Vec<Vec<f64>> {
        let rows: Vec<Vec<f64>> = (0..count)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map_init(
                || self.pool.take(),
                |ctx, k| {
                    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                        derive_seed(seed, k as u64),
                    );
                    let inst = gen.sample(&mut rng);
                    let row = ctx.with_pinned(&inst, |ctx| {
                        schedulers
                            .iter()
                            .map(|s| s.makespan_into(&inst, ctx))
                            .collect::<Vec<f64>>()
                    });
                    if let Some(p) = progress {
                        p.tick();
                    }
                    row
                },
            )
            .collect();
        observe_workers(progress);
        rows
    }

    /// Runs every scheduler on every instance — the fig2-class inner loop.
    /// Returns `out[instance][scheduler]` makespans. Per instance, the cost
    /// tables are built once and shared across all scheduler runs
    /// ([`SchedContext::with_pinned`]); instances shard across workers.
    pub fn makespans(
        &self,
        schedulers: &[Box<dyn Scheduler>],
        instances: &[Instance],
        progress: Option<&Progress>,
    ) -> Vec<Vec<f64>> {
        let rows: Vec<Vec<f64>> = instances
            .par_iter()
            .map_init(
                || self.pool.take(),
                |ctx, inst| {
                    let row = ctx.with_pinned(inst, |ctx| {
                        schedulers
                            .iter()
                            .map(|s| s.makespan_into(inst, ctx))
                            .collect::<Vec<f64>>()
                    });
                    if let Some(p) = progress {
                        p.tick();
                    }
                    row
                },
            )
            .collect();
        observe_workers(progress);
        rows
    }

    /// [`dataset_makespans`](Self::dataset_makespans) for *distributed,
    /// resumable* fig2-class runs: each instance row carries a stable key
    /// (`key_of(k)`), only rows in `shard` are computed (the rest come back
    /// `None`), and rows already stored in the [`RowCheckpoint`] replay
    /// instead of re-running. Computed makespans are bit-identical to the
    /// unsharded [`dataset_makespans`] path — same per-instance seed
    /// streams, same pinned-table evaluation — so the union of all shards'
    /// checkpoints reconstructs the 1-host run exactly.
    ///
    /// A checkpoint write failure skips rows not yet started (mirroring
    /// [`run_cells`](Self::run_cells)) and returns the first I/O error with
    /// everything recorded before it already flushed.
    #[allow(clippy::too_many_arguments)]
    pub fn dataset_makespans_sharded(
        &self,
        schedulers: &[Box<dyn Scheduler>],
        gen: &saga_datasets::DatasetGenerator,
        count: usize,
        seed: u64,
        key_of: &(impl Fn(usize) -> String + Sync),
        shard: saga_pisa::ShardSpec,
        progress: Option<&Progress>,
        checkpoint: Option<&RowCheckpoint>,
    ) -> std::io::Result<Vec<Option<Vec<f64>>>> {
        use std::sync::atomic::AtomicBool;
        let write_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        let failed = AtomicBool::new(false);
        let rows: Vec<Option<Vec<f64>>> = (0..count)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map_init(
                || self.pool.take(),
                |ctx, k| {
                    let key = key_of(k);
                    if !shard.contains_key(&key) {
                        return None;
                    }
                    if let Some(stored) = checkpoint.and_then(|c| c.stored(&key)) {
                        // replayed, not re-recorded: the file already holds
                        // this line
                        if let Some(p) = progress {
                            p.tick();
                        }
                        return Some(stored);
                    }
                    if failed.load(Ordering::Relaxed) {
                        // a failed checkpoint write means the run can't
                        // complete; don't burn work that would be discarded
                        return None;
                    }
                    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                        derive_seed(seed, k as u64),
                    );
                    let inst = gen.sample(&mut rng);
                    let row = ctx.with_pinned(&inst, |ctx| {
                        schedulers
                            .iter()
                            .map(|s| s.makespan_into(&inst, ctx))
                            .collect::<Vec<f64>>()
                    });
                    if let Some(c) = checkpoint {
                        if let Err(e) = c.record(&key, &row) {
                            let mut slot = write_error
                                .lock()
                                .unwrap_or_else(|poisoned| poisoned.into_inner());
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            failed.store(true, Ordering::Relaxed);
                        }
                    }
                    if let Some(p) = progress {
                        p.tick();
                    }
                    Some(row)
                },
            )
            .collect();
        observe_workers(progress);
        let first_error = write_error
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match first_error {
            Some(e) => Err(e),
            None => Ok(rows),
        }
    }
}

/// One completed cell, as persisted in the checkpoint JSONL. The ratio and
/// initial-ratio fields are stored as `f64::to_bits` hex strings — the
/// checkpoint must replay *bit-identical* results, and JSON float printing
/// wouldn't round-trip exactly (nor encode the unbounded cells' infinities).
/// `ratio` repeats the value as a plain float purely for human readers;
/// `None` encodes an unbounded cell, mirroring the witness-library format.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CellRecord {
    key: String,
    ratio_bits: String,
    initial_bits: String,
    evaluations: usize,
    ratio: Option<f64>,
    instance: serde_json::Value,
}

impl CellRecord {
    fn new(key: &str, res: &PisaResult) -> std::io::Result<Self> {
        let instance = serde_json::from_str(&res.instance.to_json())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(CellRecord {
            key: key.to_string(),
            ratio_bits: format!("{:016x}", res.ratio.to_bits()),
            initial_bits: format!("{:016x}", res.initial_ratio.to_bits()),
            evaluations: res.evaluations,
            ratio: res.ratio.is_finite().then_some(res.ratio),
            instance,
        })
    }

    fn result(&self) -> Option<PisaResult> {
        let bits = |s: &str| u64::from_str_radix(s, 16).ok().map(f64::from_bits);
        Some(PisaResult {
            instance: Instance::from_json(&self.instance.to_string()).ok()?,
            ratio: bits(&self.ratio_bits)?,
            initial_ratio: bits(&self.initial_bits)?,
            evaluations: self.evaluations,
        })
    }
}

/// A JSONL checkpoint for [`BatchEngine::run_cells`]: every finished cell is
/// appended (and flushed) as it completes, and a resumed run replays stored
/// cells instead of re-running them. Cells are matched by
/// [`SearchCell::key`], which encodes the budget and seed — changing
/// `--imax`/`--restarts`/`--seed` makes old lines unmatchable rather than
/// silently wrong. Malformed lines (e.g. a half-written line from a crash)
/// are skipped with a warning, so a torn checkpoint only costs re-running
/// the affected cell.
pub struct CellCheckpoint {
    done: BTreeMap<String, PisaResult>,
    file: Mutex<std::fs::File>,
    skipped: usize,
}

impl CellCheckpoint {
    /// Opens `path` for checkpointing. With `resume`, existing well-formed
    /// lines are loaded for replay and new cells append after them;
    /// otherwise the file is truncated and the run starts clean.
    ///
    /// Malformed resume lines are counted ([`skipped`](Self::skipped)) and
    /// summarized on stderr — a corrupted checkpoint is visible instead of
    /// quietly re-running its cells.
    pub fn open(path: &std::path::Path, resume: bool) -> std::io::Result<Self> {
        let mut done = BTreeMap::new();
        let mut unterminated = false;
        let mut skipped = 0usize;
        if resume {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    unterminated = !text.is_empty() && !text.ends_with('\n');
                    for (lineno, line) in text.lines().enumerate() {
                        if line.trim().is_empty() {
                            continue;
                        }
                        let parsed = serde_json::from_str::<CellRecord>(line)
                            .ok()
                            .and_then(|r| Some((r.key.clone(), r.result()?)));
                        match parsed {
                            Some((key, res)) => {
                                done.insert(key, res);
                            }
                            None => {
                                skipped += 1;
                                eprintln!(
                                    "[checkpoint] skipping malformed line {} of {}",
                                    lineno + 1,
                                    path.display()
                                );
                            }
                        }
                    }
                    if skipped > 0 {
                        eprintln!(
                            "[checkpoint] {} corrupted/unparseable line(s) skipped in {} — \
                             the affected cells will re-run",
                            skipped,
                            path.display()
                        );
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(resume)
            .truncate(!resume)
            .write(true)
            .open(path)?;
        if unterminated {
            // a crash mid-append left a torn final line (already skipped
            // above); terminate it so the next record starts on its own
            // line instead of merging into — and corrupting — the tear
            writeln!(file)?;
        }
        Ok(CellCheckpoint {
            done,
            file: Mutex::new(file),
            skipped,
        })
    }

    /// Number of cells loaded from the file for replay.
    pub fn loaded(&self) -> usize {
        self.done.len()
    }

    /// Number of malformed/unparseable lines skipped while loading for
    /// resume (0 for a fresh run).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// The stored result for `key`, if the checkpoint has it.
    pub fn stored(&self, key: &str) -> Option<PisaResult> {
        self.done.get(key).cloned()
    }

    /// Appends one finished cell and flushes, so an interruption loses at
    /// most the cells in flight. An I/O failure (full disk, closed pipe) is
    /// returned instead of panicking, so the driver can finish the batch
    /// and surface the error with everything already recorded still intact.
    pub fn record(&self, key: &str, res: &PisaResult) -> std::io::Result<()> {
        let line = serde_json::to_string(&CellRecord::new(key, res)?)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        // a poisoned file mutex still wraps a usable handle: the writer that
        // panicked completed or abandoned its line, and ours appends whole
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        writeln!(file, "{line}")?;
        file.flush()
    }
}

/// One keyed makespan row, as persisted in a [`RowCheckpoint`] JSONL.
/// Makespans are stored as space-joined `f64::to_bits` hex words — replay
/// must be bit-identical and JSON float printing wouldn't round-trip
/// infinities or the last ulp.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RowRecord {
    key: String,
    bits: String,
}

impl RowRecord {
    fn new(key: &str, row: &[f64]) -> Self {
        RowRecord {
            key: key.to_string(),
            bits: row
                .iter()
                .map(|m| format!("{:016x}", m.to_bits()))
                .collect::<Vec<_>>()
                .join(" "),
        }
    }

    fn row(&self) -> Option<Vec<f64>> {
        if self.bits.trim().is_empty() {
            return Some(Vec::new());
        }
        self.bits
            .split_whitespace()
            .map(|w| u64::from_str_radix(w, 16).ok().map(f64::from_bits))
            .collect()
    }
}

/// A JSONL checkpoint for keyed makespan rows — the fig2-class analogue of
/// [`CellCheckpoint`] (there is no [`SearchCell`] behind a benchmarking
/// row, so the row's key string is the contract instead). Same semantics:
/// append-and-flush per row, resume replays stored keys, torn lines are
/// counted and skipped, a tear is newline-terminated so later appends
/// can't merge into it.
pub struct RowCheckpoint {
    done: BTreeMap<String, Vec<f64>>,
    file: Mutex<std::fs::File>,
    skipped: usize,
}

impl RowCheckpoint {
    /// Opens `path` for checkpointing; with `resume`, existing well-formed
    /// lines load for replay (malformed ones are counted and reported),
    /// otherwise the file is truncated.
    pub fn open(path: &std::path::Path, resume: bool) -> std::io::Result<Self> {
        let mut done = BTreeMap::new();
        let mut unterminated = false;
        let mut skipped = 0usize;
        if resume {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    unterminated = !text.is_empty() && !text.ends_with('\n');
                    for (lineno, line) in text.lines().enumerate() {
                        if line.trim().is_empty() {
                            continue;
                        }
                        let parsed = serde_json::from_str::<RowRecord>(line)
                            .ok()
                            .and_then(|r| Some((r.key.clone(), r.row()?)));
                        match parsed {
                            Some((key, row)) => {
                                done.insert(key, row);
                            }
                            None => {
                                skipped += 1;
                                eprintln!(
                                    "[checkpoint] skipping malformed line {} of {}",
                                    lineno + 1,
                                    path.display()
                                );
                            }
                        }
                    }
                    if skipped > 0 {
                        eprintln!(
                            "[checkpoint] {} corrupted/unparseable line(s) skipped in {} — \
                             the affected rows will re-run",
                            skipped,
                            path.display()
                        );
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(resume)
            .truncate(!resume)
            .write(true)
            .open(path)?;
        if unterminated {
            // terminate the torn final line so the next append starts clean
            writeln!(file)?;
        }
        Ok(RowCheckpoint {
            done,
            file: Mutex::new(file),
            skipped,
        })
    }

    /// Number of rows loaded from the file for replay.
    pub fn loaded(&self) -> usize {
        self.done.len()
    }

    /// Number of malformed/unparseable lines skipped while loading.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// The stored makespan row for `key`, if present.
    pub fn stored(&self, key: &str) -> Option<Vec<f64>> {
        self.done.get(key).cloned()
    }

    /// Appends one finished row and flushes; I/O failures are returned, not
    /// panicked, mirroring [`CellCheckpoint::record`].
    pub fn record(&self, key: &str, row: &[f64]) -> std::io::Result<()> {
        let line = serde_json::to_string(&RowRecord::new(key, row))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        writeln!(file, "{line}")?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_schedulers::benchmark_schedulers;

    fn instances(n: usize) -> Vec<Instance> {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let gen = saga_datasets::by_name("chains").unwrap();
        gen.sample_many(&mut rng, n)
    }

    #[test]
    fn makespans_match_the_sequential_path() {
        let scheds = benchmark_schedulers();
        let insts = instances(4);
        let engine = BatchEngine::new();
        let batched = engine.makespans(&scheds, &insts, None);
        for (inst, row) in insts.iter().zip(&batched) {
            let sequential = crate::makespans(&scheds, inst);
            assert_eq!(
                row.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
                sequential.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
                "engine must be bit-identical to the sequential path"
            );
        }
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        // the engine API guarantees input-order collection; exercise the
        // sharded path against the forced-sequential path
        let scheds = benchmark_schedulers();
        let insts = instances(6);
        let engine = BatchEngine::new();
        let a: Vec<Vec<u64>> = engine
            .makespans(&scheds, &insts, None)
            .into_iter()
            .map(|row| row.into_iter().map(f64::to_bits).collect())
            .collect();
        let b: Vec<Vec<u64>> = insts
            .iter()
            .map(|inst| {
                crate::makespans(&scheds, inst)
                    .into_iter()
                    .map(f64::to_bits)
                    .collect()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn map_ctx_reuses_pooled_contexts_across_batches() {
        let engine = BatchEngine::new();
        let insts = instances(3);
        let _: Vec<f64> = engine.map_ctx(insts.iter().collect(), |ctx, inst| {
            saga_schedulers::Heft.makespan_into(inst, ctx)
        });
        assert!(
            engine.pool.idle() >= 1,
            "workers must return contexts to the pool"
        );
        let before = engine.pool.idle();
        let _: Vec<f64> = engine.map_ctx(insts.iter().collect(), |ctx, inst| {
            saga_schedulers::Heft.makespan_into(inst, ctx)
        });
        let threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        assert!(
            engine.pool.idle() <= before.max(threads),
            "second batch must reuse pooled contexts, not mint new ones per cell"
        );
    }

    fn quick_cells() -> Vec<SearchCell> {
        use saga_pisa::metric::Objective;
        use saga_pisa::{cell_config, PisaConfig};
        let base = PisaConfig {
            i_max: 60,
            restarts: 2,
            seed: 0xCE11,
            ..PisaConfig::default()
        };
        vec![
            SearchCell::pair("HEFT", "CPoP", cell_config(base, 0)),
            SearchCell::pair("CPoP", "FastestNode", cell_config(base, 1)),
            SearchCell::metric(
                Objective::RentalCost,
                "HEFT",
                "FastestNode",
                cell_config(base, 2),
            ),
            SearchCell::app("blast", 0.5, "CPoP", "FastestNode", cell_config(base, 3)),
        ]
    }

    #[test]
    fn run_cells_matches_the_pooled_runner_bit_for_bit() {
        let cells = quick_cells();
        let engine = BatchEngine::new();
        let a = engine.run_cells(&cells, None, None).unwrap();
        let b = saga_pisa::run_cells_pooled(&cells);
        for ((cell, x), y) in cells.iter().zip(&a).zip(&b) {
            assert_eq!(x.ratio.to_bits(), y.ratio.to_bits(), "{}", cell.label);
            assert_eq!(x.instance.to_json(), y.instance.to_json(), "{}", cell.label);
        }
    }

    #[test]
    fn checkpoint_replays_stored_cells_exactly() {
        let cells = quick_cells();
        let engine = BatchEngine::new();
        let path = std::env::temp_dir().join(format!(
            "saga_ckpt_test_{}_replay.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let ck = CellCheckpoint::open(&path, false).unwrap();
        let fresh = engine.run_cells(&cells, None, Some(&ck)).unwrap();
        drop(ck);
        let ck = CellCheckpoint::open(&path, true).unwrap();
        assert_eq!(ck.loaded(), cells.len());
        let replayed = engine.run_cells(&cells, None, Some(&ck)).unwrap();
        for ((cell, a), b) in cells.iter().zip(&fresh).zip(&replayed) {
            assert_eq!(a.ratio.to_bits(), b.ratio.to_bits(), "{}", cell.label);
            assert_eq!(
                a.initial_ratio.to_bits(),
                b.initial_ratio.to_bits(),
                "{}",
                cell.label
            );
            assert_eq!(a.evaluations, b.evaluations, "{}", cell.label);
            assert_eq!(a.instance.to_json(), b.instance.to_json(), "{}", cell.label);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_skips_torn_lines_and_stale_keys() {
        let cells = quick_cells();
        let engine = BatchEngine::new();
        let path =
            std::env::temp_dir().join(format!("saga_ckpt_test_{}_torn.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ck = CellCheckpoint::open(&path, false).unwrap();
        engine.run_cells(&cells[..2], None, Some(&ck)).unwrap();
        drop(ck);
        // simulate a crash mid-append
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"key\":\"pair/HEFT~CPoP#trunc").unwrap();
        }
        let ck = CellCheckpoint::open(&path, true).unwrap();
        assert_eq!(ck.loaded(), 2, "torn line must be dropped, good ones kept");
        assert_eq!(
            ck.skipped(),
            1,
            "the torn line must be counted and reported"
        );
        // a different budget produces different keys: nothing replays
        let mut other = quick_cells();
        for c in &mut other {
            c.config.i_max += 1;
        }
        assert!(ck.stored(&other[0].key()).is_none());
        // appending after the tear must start a fresh line — the remaining
        // cells recorded now have to survive another resume intact
        engine.run_cells(&cells, None, Some(&ck)).unwrap();
        drop(ck);
        let ck = CellCheckpoint::open(&path, true).unwrap();
        assert_eq!(
            ck.loaded(),
            cells.len(),
            "records appended after a torn line must not merge into it"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn progress_counts_monotonically() {
        let p = Progress::new("test", 10);
        for _ in 0..10 {
            p.tick();
        }
        assert_eq!(p.completed(), 10);
    }

    #[test]
    fn progress_accumulates_scheduler_counters() {
        let p = Progress::new("test", 4);
        p.note_worker_stats(&rayon::RunStats {
            claims: vec![2, 1],
            steals: vec![0, 1],
            items: vec![3, 1],
        });
        p.note_worker_stats(&rayon::RunStats {
            claims: vec![1],
            steals: vec![0],
            items: vec![4],
        });
        assert_eq!(p.claims(), 4);
        assert_eq!(p.steals(), 1);
    }

    #[test]
    fn row_checkpoint_round_trips_bits_and_counts_tears() {
        let path =
            std::env::temp_dir().join(format!("saga_rowckpt_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ck = RowCheckpoint::open(&path, false).unwrap();
        let row = vec![1.5, f64::INFINITY, 0.1 + 0.2];
        ck.record("fig2/chains#k0#s0000000000000001", &row).unwrap();
        ck.record("fig2/chains#k1#s0000000000000001", &[]).unwrap();
        drop(ck);
        // simulate a crash mid-append
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"key\":\"fig2/chains#k2").unwrap();
        }
        let ck = RowCheckpoint::open(&path, true).unwrap();
        assert_eq!(ck.loaded(), 2);
        assert_eq!(ck.skipped(), 1);
        let replay = ck.stored("fig2/chains#k0#s0000000000000001").unwrap();
        assert_eq!(
            replay.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
            row.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
            "replay must be bit-identical, infinities included"
        );
        assert_eq!(
            ck.stored("fig2/chains#k1#s0000000000000001").unwrap(),
            vec![]
        );
        // appending after the tear starts a fresh line
        ck.record("fig2/chains#k3#s0000000000000001", &[2.0])
            .unwrap();
        drop(ck);
        let ck = RowCheckpoint::open(&path, true).unwrap();
        assert_eq!(ck.loaded(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_dataset_rows_cover_exactly_and_match_unsharded() {
        use saga_pisa::ShardSpec;
        let gen = saga_datasets::by_name("chains").unwrap();
        let scheds = benchmark_schedulers();
        let engine = BatchEngine::new();
        let count = 6;
        let seed = 0xF162;
        let key_of = |k: usize| format!("fig2/chains#k{k}#s{seed:016x}");
        let full = engine.dataset_makespans(&scheds, &gen, count, seed, None);
        let mut merged: Vec<Option<Vec<f64>>> = vec![None; count];
        for index in 0..3u64 {
            let shard = ShardSpec { index, count: 3 };
            let rows = engine
                .dataset_makespans_sharded(&scheds, &gen, count, seed, &key_of, shard, None, None)
                .unwrap();
            for (k, row) in rows.into_iter().enumerate() {
                if let Some(row) = row {
                    assert!(merged[k].is_none(), "row {k} computed by two shards");
                    merged[k] = Some(row);
                }
            }
        }
        for (k, row) in merged.into_iter().enumerate() {
            let row = row.unwrap_or_else(|| panic!("row {k} computed by no shard"));
            assert_eq!(
                row.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
                full[k].iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
                "sharded row {k} must match the unsharded run bit-for-bit"
            );
        }
    }

    #[test]
    fn sharded_dataset_rows_replay_from_checkpoint() {
        use saga_pisa::ShardSpec;
        let gen = saga_datasets::by_name("chains").unwrap();
        let scheds = benchmark_schedulers();
        let engine = BatchEngine::new();
        let seed = 0xF162;
        let key_of = |k: usize| format!("fig2/chains#k{k}#s{seed:016x}");
        let path =
            std::env::temp_dir().join(format!("saga_rowckpt_shard_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ck = RowCheckpoint::open(&path, false).unwrap();
        let fresh = engine
            .dataset_makespans_sharded(
                &scheds,
                &gen,
                4,
                seed,
                &key_of,
                ShardSpec::FULL,
                None,
                Some(&ck),
            )
            .unwrap();
        drop(ck);
        let ck = RowCheckpoint::open(&path, true).unwrap();
        assert_eq!(ck.loaded(), 4);
        let replayed = engine
            .dataset_makespans_sharded(
                &scheds,
                &gen,
                4,
                seed,
                &key_of,
                ShardSpec::FULL,
                None,
                Some(&ck),
            )
            .unwrap();
        for (a, b) in fresh.iter().zip(&replayed) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(
                a.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
