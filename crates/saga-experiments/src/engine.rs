//! The shared batch experiment engine.
//!
//! Every paper experiment is a grid of independent cells — (dataset ×
//! instance × scheduler), (witness × candidate), (workflow × realization) —
//! and before this engine existed each binary walked its grid sequentially,
//! rebuilding cost tables and reallocating contexts per run. The engine
//! factors the common machinery out once:
//!
//! * **Sharding** — cells fan out across rayon workers (the vendored rayon
//!   uses dynamic chunk claiming, so skewed cells — mixed-size datasets,
//!   pairwise blowup cells — don't straggle on one worker);
//! * **Context reuse** — each worker takes one warm [`SchedContext`] from a
//!   shared [`ContextPool`] via `map_init` and keeps it for its whole run,
//!   so cells allocate nothing after warm-up, and the pool keeps the warmth
//!   across batches;
//! * **Table pinning** — [`BatchEngine::makespans`] evaluates all `k`
//!   schedulers of a cell under [`SchedContext::with_pinned`], building the
//!   exec/link cost tables once per instance instead of once per
//!   (instance, scheduler);
//! * **Determinism** — cells must not share mutable state (per-cell RNG
//!   streams come from [`derive_seed`]), and results are collected in input
//!   order, so every experiment's output is bit-identical for any
//!   `RAYON_NUM_THREADS`;
//! * **Progress** — [`Progress`] emits monotone `done/total` counts from an
//!   atomic counter, coherent under concurrency (the old per-dataset
//!   `eprintln!` assumed sequential execution).

use rayon::prelude::*;
use saga_core::{ContextPool, Instance, SchedContext};
use saga_schedulers::Scheduler;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Mixes a base seed with a cell index into an independent per-cell seed
/// (splitmix64 finalizer), so parallel cells never share an RNG stream and
/// cell `i`'s stream does not depend on how many cells ran before it.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A coherent, concurrency-safe progress reporter for batch runs.
///
/// Cells tick an atomic counter; a line is printed every `total/20` cells
/// (and at completion), each as a single `eprintln!` with a monotone count —
/// so interleaved workers can never print out-of-order or garbled progress.
pub struct Progress {
    label: String,
    total: usize,
    every: usize,
    done: AtomicUsize,
}

impl Progress {
    /// A reporter for `total` cells under the given label.
    pub fn new(label: impl Into<String>, total: usize) -> Self {
        Progress {
            label: label.into(),
            total,
            every: (total / 20).max(1),
            done: AtomicUsize::new(0),
        }
    }

    /// Records one completed cell, printing at the configured cadence.
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if done.is_multiple_of(self.every) || done == self.total {
            eprintln!("[{}] {done}/{} cells", self.label, self.total);
        }
    }

    /// Number of cells completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

/// The batch evaluation engine. Owns the context pool; one engine per
/// binary is enough (and keeps contexts warm across datasets).
#[derive(Default)]
pub struct BatchEngine {
    pool: ContextPool,
}

impl BatchEngine {
    /// A fresh engine with an empty context pool.
    pub fn new() -> Self {
        BatchEngine::default()
    }

    /// Shards `cells` across workers. For cell functions that don't need a
    /// scheduling context (dataset sampling, profiling). Results come back
    /// in input order regardless of thread count.
    pub fn map<T, R>(&self, cells: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        cells.into_par_iter().map(f).collect()
    }

    /// Shards `cells` across workers, handing each worker one warm
    /// [`SchedContext`] from the pool for its whole run. Results come back
    /// in input order regardless of thread count.
    pub fn map_ctx<T, R>(
        &self,
        cells: Vec<T>,
        f: impl Fn(&mut SchedContext, T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        cells
            .into_par_iter()
            .map_init(|| self.pool.take(), |ctx, cell| f(ctx, cell))
            .collect()
    }

    /// [`map_ctx`](Self::map_ctx) on the calling thread: same pooled
    /// warm-context reuse, no fan-out. For timing-sensitive cells —
    /// concurrent workers timing wall-clock on shared cores would inflate
    /// each other's measurements and make them vary with thread count.
    pub fn map_ctx_seq<T, R>(
        &self,
        cells: Vec<T>,
        mut f: impl FnMut(&mut SchedContext, T) -> R,
    ) -> Vec<R> {
        let mut ctx = self.pool.take();
        cells.into_iter().map(|cell| f(&mut ctx, cell)).collect()
    }

    /// Runs every scheduler on every instance — the fig2-class inner loop.
    /// Returns `out[instance][scheduler]` makespans. Per instance, the cost
    /// tables are built once and shared across all scheduler runs
    /// ([`SchedContext::with_pinned`]); instances shard across workers.
    pub fn makespans(
        &self,
        schedulers: &[Box<dyn Scheduler>],
        instances: &[Instance],
        progress: Option<&Progress>,
    ) -> Vec<Vec<f64>> {
        instances
            .par_iter()
            .map_init(
                || self.pool.take(),
                |ctx, inst| {
                    let row = ctx.with_pinned(inst, |ctx| {
                        schedulers
                            .iter()
                            .map(|s| s.makespan_into(inst, ctx))
                            .collect::<Vec<f64>>()
                    });
                    if let Some(p) = progress {
                        p.tick();
                    }
                    row
                },
            )
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_schedulers::benchmark_schedulers;

    fn instances(n: usize) -> Vec<Instance> {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let gen = saga_datasets::by_name("chains").unwrap();
        gen.sample_many(&mut rng, n)
    }

    #[test]
    fn makespans_match_the_sequential_path() {
        let scheds = benchmark_schedulers();
        let insts = instances(4);
        let engine = BatchEngine::new();
        let batched = engine.makespans(&scheds, &insts, None);
        for (inst, row) in insts.iter().zip(&batched) {
            let sequential = crate::makespans(&scheds, inst);
            assert_eq!(
                row.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
                sequential.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
                "engine must be bit-identical to the sequential path"
            );
        }
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        // the engine API guarantees input-order collection; exercise the
        // sharded path against the forced-sequential path
        let scheds = benchmark_schedulers();
        let insts = instances(6);
        let engine = BatchEngine::new();
        let a: Vec<Vec<u64>> = engine
            .makespans(&scheds, &insts, None)
            .into_iter()
            .map(|row| row.into_iter().map(f64::to_bits).collect())
            .collect();
        let b: Vec<Vec<u64>> = insts
            .iter()
            .map(|inst| {
                crate::makespans(&scheds, inst)
                    .into_iter()
                    .map(f64::to_bits)
                    .collect()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn map_ctx_reuses_pooled_contexts_across_batches() {
        let engine = BatchEngine::new();
        let insts = instances(3);
        let _: Vec<f64> = engine.map_ctx(insts.iter().collect(), |ctx, inst| {
            saga_schedulers::Heft.makespan_into(inst, ctx)
        });
        assert!(
            engine.pool.idle() >= 1,
            "workers must return contexts to the pool"
        );
        let before = engine.pool.idle();
        let _: Vec<f64> = engine.map_ctx(insts.iter().collect(), |ctx, inst| {
            saga_schedulers::Heft.makespan_into(inst, ctx)
        });
        let threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        assert!(
            engine.pool.idle() <= before.max(threads),
            "second batch must reuse pooled contexts, not mint new ones per cell"
        );
    }

    #[test]
    fn derive_seed_decorrelates_neighbours() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // stable across calls (documented: cell streams are reproducible)
        assert_eq!(a, derive_seed(42, 0));
    }

    #[test]
    fn progress_counts_monotonically() {
        let p = Progress::new("test", 10);
        for _ in 0..10 {
            p.tick();
        }
        assert_eq!(p.completed(), 10);
    }
}
