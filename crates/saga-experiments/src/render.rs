//! Text rendering of the paper's heatmaps and CSV serialization.

/// Formats a ratio the way the paper's heatmap cells do.
pub fn cell(r: f64) -> String {
    saga_pisa::PairwiseMatrix::format_cell(r)
}

/// Renders a labelled matrix as an aligned text table. `rows[i][j]` pairs
/// with `row_names[i]` and `col_names[j]`.
pub fn matrix(
    title: &str,
    row_names: &[String],
    col_names: &[String],
    rows: &[Vec<f64>],
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let rw = row_names.iter().map(|s| s.len()).max().unwrap_or(4).max(4);
    let cw = col_names.iter().map(|s| s.len()).max().unwrap_or(6).max(6) + 1;
    out.push_str(&format!("{:>rw$} ", ""));
    for c in col_names {
        out.push_str(&format!("{c:>cw$}"));
    }
    out.push('\n');
    for (name, row) in row_names.iter().zip(rows) {
        out.push_str(&format!("{name:>rw$} "));
        for &v in row {
            out.push_str(&format!("{:>cw$}", cell(v)));
        }
        out.push('\n');
    }
    out
}

/// Serializes a labelled matrix to CSV (`inf` for unbounded cells).
pub fn matrix_csv(row_names: &[String], col_names: &[String], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str("baseline");
    for c in col_names {
        out.push(',');
        out.push_str(c);
    }
    out.push('\n');
    for (name, row) in row_names.iter().zip(rows) {
        out.push_str(name);
        for &v in row {
            out.push(',');
            if v.is_infinite() {
                out.push_str("inf");
            } else {
                out.push_str(&format!("{v:.6}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Five-number summary line for a makespan sample (the information content
/// of the paper's box plots in Figs. 7b/8b).
pub fn five_number_summary(label: &str, xs: &[f64]) -> String {
    let mut s: Vec<f64> = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |p: f64| s[((s.len() - 1) as f64 * p).round() as usize];
    format!(
        "{label:>8}: min {:8.3}  q1 {:8.3}  median {:8.3}  q3 {:8.3}  max {:8.3}",
        s[0],
        q(0.25),
        q(0.5),
        q(0.75),
        s[s.len() - 1]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_renders_all_cells() {
        let rows = vec![vec![1.0, 2.5], vec![f64::INFINITY, 1.0]];
        let names = vec!["A".to_string(), "B".to_string()];
        let s = matrix("T", &names, &names, &rows);
        assert!(s.contains("2.50"));
        assert!(s.contains("> 1000"));
        assert_eq!(s.lines().count(), 4); // title + header + 2 rows
    }

    #[test]
    fn csv_round_trips_infinity_as_token() {
        let rows = vec![vec![f64::INFINITY]];
        let s = matrix_csv(&["r".to_string()], &["c".to_string()], &rows);
        assert!(s.contains("inf"));
        assert!(s.starts_with("baseline,c\n"));
    }

    #[test]
    fn five_number_summary_is_sorted() {
        let s = five_number_summary("x", &[3.0, 1.0, 2.0]);
        assert!(s.contains("min    1.000"));
        assert!(s.contains("max    3.000"));
    }
}
