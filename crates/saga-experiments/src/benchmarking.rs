//! The traditional benchmarking methodology of Section V: run every
//! scheduler on every instance of a dataset and report makespan ratios
//! against the best baseline on each instance.
//!
//! Two drivers share the statistics code: [`benchmark_dataset`] walks the
//! grid sequentially (the pre-engine reference path, kept for perf
//! comparison and as the semantic baseline), and
//! [`benchmark_dataset_engine`] shards the same cells across the
//! [`BatchEngine`](crate::engine::BatchEngine) with generation fused into
//! each cell — instance `k` always comes from the stream
//! `derive_seed(seed, k)`, so both drivers sample identical instances and
//! produce bit-identical `RatioStats` at any thread count.

use crate::engine::{BatchEngine, Progress};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saga_core::Instance;
use saga_datasets::DatasetGenerator;
use saga_schedulers::Scheduler;

/// Summary statistics of a scheduler's makespan ratios over a dataset.
#[derive(Debug, Clone, Copy)]
pub struct RatioStats {
    /// Largest ratio (the paper's Fig. 2 cell label).
    pub max: f64,
    /// Median ratio.
    pub median: f64,
    /// Mean ratio (infinite ratios excluded; count reported separately).
    pub mean_finite: f64,
    /// Number of instances with an unbounded ratio.
    pub unbounded: usize,
}

/// Per-instance makespan ratios for a set of schedulers: each scheduler's
/// makespan divided by the minimum makespan any scheduler achieved on that
/// instance (the paper's benchmarking objective).
pub fn instance_ratios(schedulers: &[Box<dyn Scheduler>], inst: &Instance) -> Vec<f64> {
    ratios_of(&crate::makespans(schedulers, inst))
}

/// Converts one instance's makespan row into ratios against the row's best.
pub fn ratios_of(makespans: &[f64]) -> Vec<f64> {
    let best = makespans.iter().copied().fold(f64::INFINITY, f64::min);
    makespans
        .iter()
        .map(|&m| saga_pisa::makespan_ratio(m, best))
        .collect()
}

/// Draws the same `count` instances [`benchmark_dataset`] would: instance
/// `k` comes from its own stream `derive_seed(seed, k)`, so the sequential
/// reference path and the engine's sharded generation sample identical
/// instances regardless of who generates them (and in what order).
pub fn dataset_instances(gen: &DatasetGenerator, count: usize, seed: u64) -> Vec<Instance> {
    (0..count)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(crate::engine::derive_seed(seed, k as u64));
            gen.sample(&mut rng)
        })
        .collect()
}

/// [`benchmark_dataset`] on the batch engine: generation *and* evaluation
/// fuse into per-instance cells ([`BatchEngine::dataset_makespans`]) that
/// shard across workers with pinned cost tables, then reduce to the same
/// [`RatioStats`]. Output is bit-identical to [`benchmark_dataset`] and
/// independent of `RAYON_NUM_THREADS`.
pub fn benchmark_dataset_engine(
    engine: &BatchEngine,
    schedulers: &[Box<dyn Scheduler>],
    gen: &DatasetGenerator,
    count: usize,
    seed: u64,
    progress: Option<&Progress>,
) -> Vec<RatioStats> {
    let rows = engine.dataset_makespans(schedulers, gen, count, seed, progress);
    let mut per_sched: Vec<Vec<f64>> = vec![Vec::with_capacity(count); schedulers.len()];
    for row in &rows {
        for (k, r) in ratios_of(row).into_iter().enumerate() {
            per_sched[k].push(r);
        }
    }
    per_sched.into_iter().map(|rs| summarize(&rs)).collect()
}

/// Benchmarks `schedulers` on `count` fresh instances of `gen`, returning
/// one [`RatioStats`] per scheduler (in scheduler order). The fully
/// sequential reference path: same per-instance seed derivation as the
/// engine driver, one instance and one evaluation at a time.
pub fn benchmark_dataset(
    schedulers: &[Box<dyn Scheduler>],
    gen: &DatasetGenerator,
    count: usize,
    seed: u64,
) -> Vec<RatioStats> {
    let mut per_sched: Vec<Vec<f64>> = vec![Vec::with_capacity(count); schedulers.len()];
    for k in 0..count {
        let mut rng = StdRng::seed_from_u64(crate::engine::derive_seed(seed, k as u64));
        let inst = gen.sample(&mut rng);
        for (k, r) in instance_ratios(schedulers, &inst).into_iter().enumerate() {
            per_sched[k].push(r);
        }
    }
    per_sched.into_iter().map(|rs| summarize(&rs)).collect()
}

/// Summarizes a ratio sample.
pub fn summarize(ratios: &[f64]) -> RatioStats {
    assert!(!ratios.is_empty());
    let mut sorted: Vec<f64> = ratios.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let max = *sorted.last().unwrap();
    let median = sorted[sorted.len() / 2];
    let finite: Vec<f64> = sorted.iter().copied().filter(|r| r.is_finite()).collect();
    let mean_finite = if finite.is_empty() {
        f64::INFINITY
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    };
    RatioStats {
        max,
        median,
        mean_finite,
        unbounded: ratios.len() - finite.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_schedulers::benchmark_schedulers;

    #[test]
    fn ratios_are_at_least_one_and_someone_achieves_it() {
        let gen = saga_datasets::by_name("chains").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let scheds = benchmark_schedulers();
        for _ in 0..5 {
            let inst = gen.sample(&mut rng);
            let rs = instance_ratios(&scheds, &inst);
            assert!(rs.iter().all(|&r| r >= 1.0 - 1e-9));
            assert!(rs.iter().any(|&r| (r - 1.0).abs() < 1e-9));
        }
    }

    #[test]
    fn summarize_computes_order_statistics() {
        let s = summarize(&[1.0, 3.0, 2.0, f64::INFINITY]);
        assert!(s.max.is_infinite());
        assert_eq!(s.unbounded, 1);
        assert_eq!(s.median, 3.0); // index 2 of sorted [1,2,3,inf]
        assert!((s.mean_finite - 2.0).abs() < 1e-12);
    }

    #[test]
    fn engine_driver_matches_sequential_driver_bit_for_bit() {
        let gen = saga_datasets::by_name("out_trees").unwrap();
        let scheds = benchmark_schedulers();
        let engine = crate::engine::BatchEngine::new();
        let seq = benchmark_dataset(&scheds, &gen, 4, 99);
        let par = benchmark_dataset_engine(&engine, &scheds, &gen, 4, 99, None);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.max.to_bits(), b.max.to_bits());
            assert_eq!(a.median.to_bits(), b.median.to_bits());
            assert_eq!(a.mean_finite.to_bits(), b.mean_finite.to_bits());
            assert_eq!(a.unbounded, b.unbounded);
        }
    }

    #[test]
    fn fused_generation_matches_pregenerated_instances() {
        // the engine's in-worker sampling must produce exactly the
        // instances the reference generator yields for the same seeds
        let gen = saga_datasets::by_name("montage").unwrap();
        let scheds = benchmark_schedulers();
        let engine = crate::engine::BatchEngine::new();
        let fused = engine.dataset_makespans(&scheds, &gen, 5, 7, None);
        let split = engine.makespans(&scheds, &dataset_instances(&gen, 5, 7), None);
        for (a, b) in fused.iter().zip(&split) {
            assert_eq!(
                a.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn benchmark_dataset_runs_end_to_end() {
        let gen = saga_datasets::by_name("in_trees").unwrap();
        let scheds = benchmark_schedulers();
        let stats = benchmark_dataset(&scheds, &gen, 3, 11);
        assert_eq!(stats.len(), scheds.len());
        for s in stats {
            assert!(s.max >= 1.0 - 1e-9);
        }
    }
}
