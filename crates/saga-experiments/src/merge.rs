//! Checkpoint-union logic behind the `saga-merge` bin.
//!
//! A sharded grid run leaves N checkpoint JSONL files, one per host
//! (`--shard i/N` ⇒ `…cells.shard{i}of{N}.jsonl`). [`merge_files`] unions
//! them back into one checkpoint with the guarantees distribution needs:
//!
//! * **Format-agnostic** — any JSONL whose lines are objects with a string
//!   `"key"` field merges ([`CellCheckpoint`](crate::engine::CellCheckpoint)
//!   cell records and [`RowCheckpoint`](crate::engine::RowCheckpoint) fig2
//!   rows alike). Records are *never* reserialized: the output carries each
//!   input line's exact bytes, so bit-encoded floats survive untouched.
//! * **Collision-verified** — a key appearing in several inputs must carry
//!   byte-identical record lines everywhere (a re-run shard, a doubled
//!   input); identical duplicates are dropped and counted, *conflicting*
//!   duplicates are a hard error naming the key and both files, because two
//!   different results for one deterministic cell mean a corrupted or
//!   mislabeled shard.
//! * **Torn-line-tolerant** — malformed lines (a crash mid-append on some
//!   host) are counted per input and skipped, mirroring the checkpoints'
//!   own resume behavior.
//! * **Canonical output** — records are written sorted by key. Checkpoint
//!   files append in completion order, which varies with thread count and
//!   scheduling, so byte-identity between a merged N-host run and a 1-host
//!   run is defined over this canonical form: merging the single 1-host
//!   file canonicalizes it, and the two outputs must then be byte-identical
//!   (CI enforces exactly that).

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// What [`merge_files`] did: counts for the human-readable summary and for
/// tests asserting torn/duplicate accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeSummary {
    /// Input files read.
    pub inputs: usize,
    /// Unique records written (one line per key).
    pub records: usize,
    /// Byte-identical duplicate lines dropped (same key, same bytes).
    pub duplicates: usize,
    /// Malformed/torn lines skipped across all inputs.
    pub torn: usize,
}

impl fmt::Display for MergeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} record(s) from {} file(s), {} duplicate(s) dropped, {} torn line(s) skipped",
            self.records, self.inputs, self.duplicates, self.torn
        )
    }
}

/// Why a merge refused to produce output.
#[derive(Debug)]
pub enum MergeError {
    /// Reading an input or writing the output failed.
    Io(PathBuf, std::io::Error),
    /// One key carries two different record lines — a corrupted or
    /// mislabeled shard; merging would silently pick a winner, so it's a
    /// hard error instead.
    Conflict {
        /// The colliding checkpoint key.
        key: String,
        /// The file that contributed the first record for the key.
        first: PathBuf,
        /// The file whose record for the key differs.
        second: PathBuf,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            MergeError::Conflict { key, first, second } => write!(
                f,
                "conflicting records for key `{key}`: {} and {} disagree \
                 (a deterministic cell cannot have two results — check for a \
                 mislabeled shard or a stale checkpoint)",
                first.display(),
                second.display()
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// The checkpoint key of one JSONL line, if the line is a well-formed
/// object with a string `"key"` field.
fn line_key(line: &str) -> Option<String> {
    let value: serde_json::Value = serde_json::from_str(line).ok()?;
    Some(value.get("key")?.as_str()?.to_string())
}

/// Unions checkpoint JSONL `inputs` into `out` (canonical key-sorted order,
/// original line bytes). See the [module docs](self) for the contract.
pub fn merge_files(inputs: &[PathBuf], out: &mut dyn Write) -> Result<MergeSummary, MergeError> {
    let mut records: BTreeMap<String, (String, usize)> = BTreeMap::new();
    let mut summary = MergeSummary {
        inputs: inputs.len(),
        ..MergeSummary::default()
    };
    for (file_idx, path) in inputs.iter().enumerate() {
        let text = std::fs::read_to_string(path).map_err(|e| MergeError::Io(path.clone(), e))?;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some(key) = line_key(line) else {
                summary.torn += 1;
                continue;
            };
            match records.get(&key) {
                None => {
                    records.insert(key, (line.to_string(), file_idx));
                }
                Some((existing, first_idx)) if existing == line => {
                    let _ = first_idx;
                    summary.duplicates += 1;
                }
                Some((_, first_idx)) => {
                    return Err(MergeError::Conflict {
                        key,
                        first: inputs[*first_idx].clone(),
                        second: path.clone(),
                    });
                }
            }
        }
    }
    summary.records = records.len();
    for (line, _) in records.values() {
        writeln!(out, "{line}").map_err(|e| MergeError::Io(PathBuf::from("<output>"), e))?;
    }
    Ok(summary)
}

/// [`merge_files`] writing to a path (atomically enough for CI: a temp
/// sibling renamed into place, so a crash never leaves a half-written
/// merge that looks complete).
pub fn merge_to_path(inputs: &[PathBuf], out: &Path) -> Result<MergeSummary, MergeError> {
    let tmp = out.with_extension("jsonl.tmp");
    let mut buf: Vec<u8> = Vec::new();
    let summary = merge_files(inputs, &mut buf)?;
    std::fs::write(&tmp, &buf).map_err(|e| MergeError::Io(tmp.clone(), e))?;
    std::fs::rename(&tmp, out).map_err(|e| MergeError::Io(out.to_path_buf(), e))?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, content: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("saga_merge_{}_{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn merges_disjoint_shards_sorted_by_key() {
        let a = tmp(
            "a.jsonl",
            "{\"key\":\"z\",\"v\":1}\n{\"key\":\"b\",\"v\":2}\n",
        );
        let b = tmp("b.jsonl", "{\"key\":\"a\",\"v\":3}\n");
        let mut out = Vec::new();
        let summary = merge_files(&[a.clone(), b.clone()], &mut out).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "{\"key\":\"a\",\"v\":3}\n{\"key\":\"b\",\"v\":2}\n{\"key\":\"z\",\"v\":1}\n"
        );
        assert_eq!(summary.records, 3);
        assert_eq!(summary.duplicates, 0);
        assert_eq!(summary.torn, 0);
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn merge_is_idempotent_and_canonicalizing() {
        // merging a single file sorts it by key without touching line bytes
        // — the canonical form CI compares against
        let a = tmp(
            "canon.jsonl",
            "{\"key\":\"c\",\"bits\":\"3ff0000000000000\"}\n{\"key\":\"a\",\"bits\":\"7ff0000000000000\"}\n",
        );
        let mut once = Vec::new();
        merge_files(std::slice::from_ref(&a), &mut once).unwrap();
        let canon = tmp("canon2.jsonl", std::str::from_utf8(&once).unwrap());
        let mut twice = Vec::new();
        merge_files(std::slice::from_ref(&canon), &mut twice).unwrap();
        assert_eq!(once, twice, "canonical form must be a fixed point");
        assert!(String::from_utf8(once)
            .unwrap()
            .starts_with("{\"key\":\"a\""));
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(canon);
    }

    #[test]
    fn identical_duplicates_dedupe_but_conflicts_are_fatal() {
        let a = tmp("dup_a.jsonl", "{\"key\":\"k\",\"v\":1}\n");
        let b = tmp("dup_b.jsonl", "{\"key\":\"k\",\"v\":1}\n");
        let mut out = Vec::new();
        let summary = merge_files(&[a.clone(), b.clone()], &mut out).unwrap();
        assert_eq!(summary.records, 1);
        assert_eq!(summary.duplicates, 1);

        let c = tmp("dup_c.jsonl", "{\"key\":\"k\",\"v\":2}\n");
        let err = merge_files(&[a.clone(), c.clone()], &mut Vec::new()).unwrap_err();
        match err {
            MergeError::Conflict { key, first, second } => {
                assert_eq!(key, "k");
                assert_eq!(first, a);
                assert_eq!(second, c);
            }
            other => panic!("expected Conflict, got {other}"),
        }
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
        let _ = std::fs::remove_file(c);
    }

    #[test]
    fn torn_lines_are_counted_and_skipped() {
        let a = tmp(
            "torn.jsonl",
            "{\"key\":\"good\",\"v\":1}\nnot json at all\n{\"nokey\":true}\n{\"key\":\"tr",
        );
        let mut out = Vec::new();
        let summary = merge_files(std::slice::from_ref(&a), &mut out).unwrap();
        assert_eq!(summary.records, 1);
        assert_eq!(
            summary.torn, 3,
            "bad JSON, missing key, and the tear all count"
        );
        let _ = std::fs::remove_file(a);
    }

    #[test]
    fn missing_input_is_an_io_error() {
        let missing = PathBuf::from("/nonexistent/saga_merge_test.jsonl");
        let err = merge_files(std::slice::from_ref(&missing), &mut Vec::new()).unwrap_err();
        assert!(matches!(err, MergeError::Io(p, _) if p == missing));
    }
}
