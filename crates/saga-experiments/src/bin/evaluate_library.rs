//! Scores a scheduler against a published library of adversarial witnesses
//! (e.g. `results/fig4_witnesses.jsonl` produced by the `fig4` binary) —
//! the paper's proposed workflow for evaluating *new* algorithms against
//! instances PISA already found, without re-running the search.
//!
//! Usage: `evaluate_library [scheduler] [--library PATH]`
//! (default scheduler: `Ensemble` = HEFT+CPoP+MaxMin portfolio).

use saga_experiments::cli;
use saga_pisa::library::WitnessLibrary;
use saga_schedulers::Scheduler;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = cli::positional(&args).unwrap_or("Ensemble").to_string();
    let default_path = "results/fig4_witnesses.jsonl".to_string();
    let path: String = cli::arg_or(&args, "library", default_path);

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read witness library {path}: {e} (run `fig4` first)"));
    let lib = WitnessLibrary::from_jsonl(&text).expect("well-formed library");
    println!("loaded {} witnesses from {path}", lib.records.len());
    let bad = lib.revalidate();
    println!("library revalidation mismatches: {bad}");

    let candidate: Box<dyn Scheduler> = if name.eq_ignore_ascii_case("ensemble") {
        Box::new(saga_schedulers::Ensemble::default_portfolio())
    } else {
        saga_schedulers::by_name(&name).unwrap_or_else(|| panic!("unknown scheduler {name}"))
    };

    let rows = lib.evaluate(&*candidate);
    let mut worse_than_2 = 0;
    let mut own_traps = 0;
    let mut own_total = 0;
    println!(
        "\n{:<12} {:<12} {:>10} {:>12}",
        "trap for",
        "baseline",
        "stored",
        candidate.name()
    );
    for (target, baseline, stored, cand) in &rows {
        if *cand >= 2.0 {
            worse_than_2 += 1;
        }
        if target.eq_ignore_ascii_case(candidate.name()) {
            own_total += 1;
            if *cand >= 2.0 {
                own_traps += 1;
            }
        }
        // print only the interesting rows: candidate clearly caught
        if *cand >= 2.0 {
            println!(
                "{target:<12} {baseline:<12} {:>10} {:>12}",
                saga_pisa::PairwiseMatrix::format_cell(*stored),
                saga_pisa::PairwiseMatrix::format_cell(*cand),
            );
        }
    }
    println!(
        "\n{} falls >=2x behind the baseline on {worse_than_2}/{} stored witnesses",
        candidate.name(),
        rows.len()
    );
    if own_total > 0 {
        println!(
            "(on witnesses originally targeting {}: {own_traps}/{own_total})",
            candidate.name()
        );
    }
}
