//! Scores a scheduler against a published library of adversarial witnesses
//! (e.g. `results/fig4_witnesses.jsonl` produced by the `fig4` binary) —
//! the paper's proposed workflow for evaluating *new* algorithms against
//! instances PISA already found, without re-running the search.
//!
//! The witness cells run on the batch engine: each record revalidates its
//! stored ratio *and* scores the candidate in one pinned-tables scope (the
//! exec/link tables are built once per witness for all three scheduler
//! runs), sharded across workers, with results in record order at any
//! thread count.
//!
//! Usage: `evaluate_library [scheduler] [--library PATH]`
//! (default scheduler: `Ensemble` = HEFT+CPoP+MaxMin portfolio).

use saga_experiments::cli;
use saga_experiments::engine::{BatchEngine, Progress};
use saga_pisa::library::WitnessLibrary;
use saga_pisa::makespan_ratio;
use saga_schedulers::Scheduler;

/// One scored witness record.
struct Row {
    target: String,
    baseline: String,
    stored: f64,
    candidate: f64,
    revalidated: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = cli::positional(&args).unwrap_or("Ensemble").to_string();
    let default_path = "results/fig4_witnesses.jsonl".to_string();
    let path: String = cli::arg_or(&args, "library", default_path);

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read witness library {path}: {e} (run `fig4` first)"));
    let lib = WitnessLibrary::from_jsonl(&text).expect("well-formed library");
    println!("loaded {} witnesses from {path}", lib.records.len());

    let candidate: Box<dyn Scheduler> = if name.eq_ignore_ascii_case("ensemble") {
        Box::new(saga_schedulers::Ensemble::default_portfolio())
    } else {
        saga_schedulers::by_name(&name).unwrap_or_else(|| panic!("unknown scheduler {name}"))
    };

    let engine = BatchEngine::new();
    let progress = Progress::new("evaluate_library", lib.records.len());
    let rows: Vec<Option<Row>> = engine.map_ctx(lib.records.iter().collect(), |ctx, r| {
        // candidate scoring needs only the baseline to resolve (a record
        // whose target scheduler was renamed is still a scorable trap);
        // revalidation additionally needs the target and counts as a
        // mismatch when it is unknown
        let row = saga_schedulers::by_name(&r.baseline).map(|baseline| {
            let inst = r.instance().expect("stored instance is valid");
            ctx.with_pinned(&inst, |ctx| {
                let b = baseline.makespan_into(&inst, ctx);
                let c = candidate.makespan_into(&inst, ctx);
                let stored = r.ratio_value();
                let revalidated = saga_schedulers::by_name(&r.target).is_some_and(|target| {
                    let live = makespan_ratio(target.makespan_into(&inst, ctx), b);
                    (live.is_infinite() && stored.is_infinite())
                        || (live - stored).abs() <= 1e-6 * stored.abs().max(1.0)
                });
                Row {
                    target: r.target.clone(),
                    baseline: r.baseline.clone(),
                    stored,
                    candidate: makespan_ratio(c, b),
                    revalidated,
                }
            })
        });
        progress.tick();
        row
    });
    let rows: Vec<Row> = rows.into_iter().flatten().collect();
    let bad = lib.records.len() - rows.iter().filter(|r| r.revalidated).count();
    println!("library revalidation mismatches: {bad}");

    let mut worse_than_2 = 0;
    let mut own_traps = 0;
    let mut own_total = 0;
    println!(
        "\n{:<12} {:<12} {:>10} {:>12}",
        "trap for",
        "baseline",
        "stored",
        candidate.name()
    );
    for row in &rows {
        if row.candidate >= 2.0 {
            worse_than_2 += 1;
        }
        if row.target.eq_ignore_ascii_case(candidate.name()) {
            own_total += 1;
            if row.candidate >= 2.0 {
                own_traps += 1;
            }
        }
        // print only the interesting rows: candidate clearly caught
        if row.candidate >= 2.0 {
            println!(
                "{:<12} {:<12} {:>10} {:>12}",
                row.target,
                row.baseline,
                saga_pisa::PairwiseMatrix::format_cell(row.stored),
                saga_pisa::PairwiseMatrix::format_cell(row.candidate),
            );
        }
    }
    println!(
        "\n{} falls >=2x behind the baseline on {worse_than_2}/{} stored witnesses",
        candidate.name(),
        rows.len()
    );
    if own_total > 0 {
        println!(
            "(on witnesses originally targeting {}: {own_traps}/{own_total})",
            candidate.name()
        );
    }
}
