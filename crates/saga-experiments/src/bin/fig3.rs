//! Regenerates Fig. 3: the illustrative parallel-chains instance where a
//! minor network alteration (weakening node 3's links) flips the HEFT/CPoP
//! comparison.
//!
//! Prints Gantt charts for HEFT and CPoP on (a) the paper's exact instance
//! and (b) the tie-break-robust variant (node 3 slightly faster — see
//! EXPERIMENTS.md for why the exact instance is tie-break sensitive).

use saga_core::gantt;
use saga_schedulers::util::fixtures;
use saga_schedulers::{Cpop, Heft, Scheduler};

fn show(label: &str, inst: &saga_core::Instance) {
    println!("== {label} ==");
    for sched in [&Heft as &dyn Scheduler, &Cpop as &dyn Scheduler] {
        let s = sched.schedule(inst);
        s.verify(inst).expect("valid schedule");
        println!("{} makespan {:.3}", sched.name(), s.makespan());
        println!("{}", gantt::render(inst, &s, 60));
    }
}

fn main() {
    println!("Fig. 3: HEFT vs CPoP under a minor network alteration\n");
    show(
        "paper instance, original network",
        &fixtures::fig3_original(),
    );
    show(
        "paper instance, node-3 links weakened",
        &fixtures::fig3_modified(),
    );
    show(
        "variant (node 3 speed 1.25), original links",
        &fixtures::fig3_variant_original(),
    );
    show(
        "variant (node 3 speed 1.25), weakened links",
        &fixtures::fig3_variant_modified(),
    );

    let orig = fixtures::fig3_variant_original();
    let modif = fixtures::fig3_variant_modified();
    let r_orig = Heft.schedule(&orig).makespan() / Cpop.schedule(&orig).makespan();
    let r_mod = Heft.schedule(&modif).makespan() / Cpop.schedule(&modif).makespan();
    println!("HEFT/CPoP ratio: original {r_orig:.3} -> weakened {r_mod:.3}");
    println!(
        "check: weakening node 3's links makes HEFT lose to CPoP: {}",
        r_mod > 1.0 && r_mod > r_orig
    );
}
