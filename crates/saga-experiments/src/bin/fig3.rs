//! Regenerates Fig. 3: the illustrative parallel-chains instance where a
//! minor network alteration (weakening node 3's links) flips the HEFT/CPoP
//! comparison.
//!
//! Prints Gantt charts for HEFT and CPoP on (a) the paper's exact instance
//! and (b) the tie-break-robust variant (node 3 slightly faster — see
//! EXPERIMENTS.md for why the exact instance is tie-break sensitive).
//!
//! The (variant × scheduler) cells run on the batch engine — tiny here, but
//! every experiment bin goes through the same sharded, context-pooled path,
//! and the collected results print in input order so the report is
//! identical at any thread count.

use saga_core::gantt;
use saga_experiments::engine::BatchEngine;
use saga_schedulers::util::fixtures;
use saga_schedulers::{Cpop, Heft, Scheduler};

fn main() {
    println!("Fig. 3: HEFT vs CPoP under a minor network alteration\n");
    let variants: Vec<(&str, saga_core::Instance)> = vec![
        (
            "paper instance, original network",
            fixtures::fig3_original(),
        ),
        (
            "paper instance, node-3 links weakened",
            fixtures::fig3_modified(),
        ),
        (
            "variant (node 3 speed 1.25), original links",
            fixtures::fig3_variant_original(),
        ),
        (
            "variant (node 3 speed 1.25), weakened links",
            fixtures::fig3_variant_modified(),
        ),
    ];

    let engine = BatchEngine::new();
    let schedulers: [&dyn Scheduler; 2] = [&Heft, &Cpop];
    let cells: Vec<(usize, usize)> = (0..variants.len())
        .flat_map(|i| (0..schedulers.len()).map(move |k| (i, k)))
        .collect();
    let reports: Vec<String> = engine.map_ctx(cells, |ctx, (i, k)| {
        let (_, inst) = &variants[i];
        let sched = schedulers[k];
        let s = sched.schedule_into(inst, ctx);
        s.verify(inst).expect("valid schedule");
        format!(
            "{} makespan {:.3}\n{}",
            sched.name(),
            s.makespan(),
            gantt::render(inst, &s, 60)
        )
    });
    for (chunk, (label, _)) in reports.chunks(schedulers.len()).zip(&variants) {
        println!("== {label} ==");
        for r in chunk {
            println!("{r}");
        }
    }

    let orig = fixtures::fig3_variant_original();
    let modif = fixtures::fig3_variant_modified();
    let r_orig = Heft.schedule(&orig).makespan() / Cpop.schedule(&orig).makespan();
    let r_mod = Heft.schedule(&modif).makespan() / Cpop.schedule(&modif).makespan();
    println!("HEFT/CPoP ratio: original {r_orig:.3} -> weakened {r_mod:.3}");
    println!(
        "check: weakening node 3's links makes HEFT lose to CPoP: {}",
        r_mod > 1.0 && r_mod > r_orig
    );
}
