//! `saga-merge`: unions sharded checkpoint JSONL files into one canonical
//! checkpoint.
//!
//! After N hosts run `<bin> --shard i/N`, each leaves its own checkpoint
//! (`results/fig4_cells.shard{i}of{N}.jsonl`); this bin merges them back
//! into the file a 1-host run would have produced:
//!
//! ```text
//! saga-merge --out results/fig4_cells.jsonl \
//!     results/fig4_cells.shard0of2.jsonl results/fig4_cells.shard1of2.jsonl
//! ```
//!
//! Output is canonical (key-sorted, original line bytes — see
//! [`saga_experiments::merge`]); run a 1-host checkpoint through
//! `saga-merge` by itself to canonicalize it for a byte-for-byte diff, as
//! CI does. Duplicate keys must carry byte-identical records (dropped and
//! counted); conflicting records are a hard error; torn lines are counted
//! and skipped. Exit status: 0 on success, 1 on conflict or I/O failure.
//!
//! Usage: `saga-merge --out MERGED.jsonl INPUT.jsonl [INPUT.jsonl ...]`

use saga_experiments::merge;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("fatal: --out needs a path");
                    std::process::exit(1);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: saga-merge --out MERGED.jsonl INPUT.jsonl [INPUT.jsonl ...]");
                return;
            }
            flag if flag.starts_with("--") => {
                eprintln!("fatal: unknown flag {flag}");
                std::process::exit(1);
            }
            path => inputs.push(PathBuf::from(path)),
        }
    }
    let Some(out) = out else {
        eprintln!("fatal: missing --out (usage: saga-merge --out MERGED.jsonl INPUT.jsonl ...)");
        std::process::exit(1);
    };
    if inputs.is_empty() {
        eprintln!("fatal: no input checkpoints given");
        std::process::exit(1);
    }
    match merge::merge_to_path(&inputs, &out) {
        Ok(summary) => {
            eprintln!("merged into {}: {summary}", out.display());
        }
        Err(e) => {
            eprintln!("fatal: {e}");
            std::process::exit(1);
        }
    }
}
