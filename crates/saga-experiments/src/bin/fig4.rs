//! Regenerates Fig. 4: the PISA pairwise heatmap over all 15 schedulers,
//! plus the paper's two headline claims:
//!
//! 1. every scheduler has an adversarial instance on which it is at least
//!    2x worse than some other scheduler (most are 5x);
//! 2. for nearly every pair, each direction admits a >1 ratio (no scheduler
//!    strictly dominates another).
//!
//! Runs on the batch engine's `SearchCell` runtime: the 210 ordered pairs
//! shard across rayon workers with one warm pooled context and annealing
//! scratch per worker, per-cell derived seeds (output is bit-identical for
//! any `RAYON_NUM_THREADS`), and a JSONL checkpoint — every finished cell
//! is flushed to `results/fig4_cells.jsonl`, and `--resume` replays stored
//! cells so an interrupted paper-scale run continues where it stopped.
//!
//! Usage: `fig4 [--imax N] [--restarts R] [--seed S] [--quick] [--resume]
//! [--shard i/N] [--checkpoint PATH]`. Defaults match the paper
//! (`imax 1000`, `restarts 5`); `--quick` is the CI smoke budget
//! (`imax 60`, `restarts 1`). With `--shard i/N`, this host runs only its
//! deterministic 1/N slice of the cells against a per-shard checkpoint
//! (`results/fig4_cells.shard{i}of{N}.jsonl` unless `--checkpoint`
//! overrides it) and skips rendering; merge the shards with `saga-merge`
//! and re-run unsharded with `--resume` to render from the merged file.

use saga_experiments::engine::{BatchEngine, CellCheckpoint, Progress};
use saga_experiments::{cli, render, write_results_file};
use saga_pisa::{pairwise_cells, shard_cells, PairwiseMatrix, PisaConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let imax: usize = cli::arg_or(&args, "imax", if quick { 60 } else { 1000 });
    let restarts: usize = cli::arg_or(&args, "restarts", if quick { 1 } else { 5 });
    let seed: u64 = cli::arg_or(&args, "seed", 0xF164);
    let resume = args.iter().any(|a| a == "--resume");
    let shard = cli::shard_arg(&args);
    let ckpt_path = cli::checkpoint_path(&args, shard, "results/fig4_cells.jsonl");

    let schedulers = saga_schedulers::benchmark_schedulers();
    let names: Vec<String> = schedulers.iter().map(|s| s.name().to_string()).collect();
    let all_cells = pairwise_cells(
        &schedulers,
        PisaConfig {
            i_max: imax,
            restarts,
            seed,
            ..PisaConfig::default()
        },
    );
    let total = all_cells.len();
    let cells = shard_cells(all_cells, shard);
    eprintln!(
        "running PISA for {} of {total} ordered pairs (shard {shard}, {restarts} restarts x {imax} iters)...",
        cells.len()
    );
    let checkpoint = CellCheckpoint::open(&ckpt_path, resume).expect("open checkpoint");
    if resume && checkpoint.loaded() > 0 {
        eprintln!(
            "resuming: {} cells already in {}",
            checkpoint.loaded(),
            ckpt_path.display()
        );
    }
    let engine = BatchEngine::new();
    let progress = Progress::new("fig4", cells.len());
    let t0 = std::time::Instant::now();
    let results = engine.run_cells_or_exit(&cells, Some(&progress), Some(&checkpoint));
    eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
    if !shard.is_full() {
        // a partial shard can't render the matrix; its output is the
        // checkpoint itself
        eprintln!(
            "shard {shard} complete: {} cells in {} — merge all shards with \
             `saga-merge --out results/fig4_cells.jsonl results/fig4_cells.shard*.jsonl`, \
             then render with `fig4 --resume`",
            results.len(),
            ckpt_path.display()
        );
        return;
    }
    let m = PairwiseMatrix::from_cell_results(names, results);

    // assemble: "Worst" row on top, then baseline rows (paper order)
    let mut row_names = vec!["Worst".to_string()];
    row_names.extend(m.names.iter().rev().cloned());
    let mut rows = vec![m.worst_row()];
    for i in (0..m.names.len()).rev() {
        rows.push(m.ratios[i].clone());
    }
    println!(
        "{}",
        render::matrix(
            "Fig. 4: worst-case makespan ratio of scheduler (column) vs baseline (row)",
            &row_names,
            &m.names,
            &rows,
        )
    );
    let path = write_results_file(
        "fig4_pairwise.csv",
        &render::matrix_csv(&row_names, &m.names, &rows),
    );
    // persist the witness instances for reuse by other researchers
    // (the paper's "publish PISA instances" future-work item)
    let library = saga_pisa::library::WitnessLibrary::from_matrix(&m);
    let wpath = write_results_file("fig4_witnesses.jsonl", &library.to_jsonl());
    eprintln!("wrote {} and {}", path.display(), wpath.display());

    // headline claims
    let worst = m.worst_row();
    let at_least_2x = worst.iter().filter(|&&r| r >= 2.0).count();
    let at_least_5x = worst.iter().filter(|&&r| r >= 5.0).count();
    println!(
        "check: schedulers with a >=2x adversarial loss: {at_least_2x}/{} (paper: 15/15)",
        worst.len()
    );
    println!(
        "check: schedulers with a >=5x adversarial loss: {at_least_5x}/{} (paper: 10/15)",
        worst.len()
    );
    let n = m.names.len();
    let mut both_dirs = 0;
    let mut pairs = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            pairs += 1;
            if m.ratios[i][j] > 1.0 && m.ratios[j][i] > 1.0 {
                both_dirs += 1;
            }
        }
    }
    println!("check: pairs adversarial in BOTH directions: {both_dirs}/{pairs}");
    let heft = m.names.iter().position(|s| s == "HEFT").unwrap();
    let fastest = m.names.iter().position(|s| s == "FastestNode").unwrap();
    println!(
        "check: HEFT vs FastestNode worst ratio {} (paper: 4.34)",
        render::cell(m.ratios[fastest][heft])
    );
}
