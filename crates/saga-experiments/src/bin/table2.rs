//! Regenerates Table II: the dataset inventory, with sampled statistics
//! (task counts, node counts, CCR) drawn live from each generator.
//!
//! The 16 dataset cells run on the batch engine with one derived RNG stream
//! per cell ([`derive_seed`](saga_experiments::engine::derive_seed)), so
//! sampling shards across workers, the default budget is paper-scale
//! (100 samples/dataset) and the table is bit-identical for any
//! `RAYON_NUM_THREADS`.
//!
//! Usage: `table2 [--samples N] [--seed S]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga_experiments::cli;
use saga_experiments::engine::{derive_seed, BatchEngine};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples: usize = cli::arg_or(&args, "samples", 100);
    let seed: u64 = cli::arg_or(&args, "seed", 2024);

    println!("Table II: Datasets available in SAGA-rs ({samples} samples each)\n");
    println!(
        "{:<12} {:>6} {:>8} {:>8} {:>8} {:>8}  network family",
        "Dataset", "paper#", "|T| min", "|T| max", "|V| min", "|V| max"
    );
    let generators = saga_datasets::all_generators();
    let engine = BatchEngine::new();
    let cells: Vec<usize> = (0..generators.len()).collect();
    let rows: Vec<(usize, usize, usize, usize)> = engine.map(cells, |k| {
        let gen = &generators[k];
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, k as u64));
        let mut tmin = usize::MAX;
        let mut tmax = 0;
        let mut vmin = usize::MAX;
        let mut vmax = 0;
        for _ in 0..samples {
            let inst = gen.sample(&mut rng);
            tmin = tmin.min(inst.graph.task_count());
            tmax = tmax.max(inst.graph.task_count());
            vmin = vmin.min(inst.network.node_count());
            vmax = vmax.max(inst.network.node_count());
        }
        (tmin, tmax, vmin, vmax)
    });
    for (gen, (tmin, tmax, vmin, vmax)) in generators.iter().zip(&rows) {
        let family = match gen.name {
            "in_trees" | "out_trees" | "chains" => "randomly weighted (3-5 nodes)",
            "etl" | "predict" | "stats" | "train" => "edge/fog/cloud (Varshney et al.)",
            _ => "Chameleon-cloud inspired (shared FS)",
        };
        println!(
            "{:<12} {:>6} {:>8} {:>8} {:>8} {:>8}  {}",
            gen.name, gen.paper_count, tmin, tmax, vmin, vmax, family
        );
    }
}
