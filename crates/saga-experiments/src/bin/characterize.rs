//! Characterizes all 16 datasets structurally — quantifying the paper's
//! "what family is this dataset really representative of?" discussion, and
//! profiling the witnesses PISA finds (are the adversarial instances
//! structurally unusual, or in-family?).
//!
//! The 16 dataset cells run on the batch engine with one derived RNG stream
//! per cell, so profiling shards across workers, the default budget is
//! paper-scale (100 samples/dataset) and the report is bit-identical for
//! any `RAYON_NUM_THREADS`.
//!
//! Usage: `characterize [--samples N] [--seed S]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga_datasets::characterize::{mean_profile, profile, InstanceProfile};
use saga_experiments::cli;
use saga_experiments::engine::{derive_seed, BatchEngine};
use saga_pisa::library::WitnessLibrary;

fn print_profile(label: &str, p: &InstanceProfile) {
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8.2} {:>8.2} {:>9.2}",
        label, p.tasks, p.dependencies, p.nodes, p.depth, p.width, p.parallelism, p.ccr, p.speed_cv
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples: usize = cli::arg_or(&args, "samples", 100);
    let seed: u64 = cli::arg_or(&args, "seed", 0xC0DE);

    println!("Structural profile per dataset (mean over {samples} samples)\n");
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9}",
        "dataset", "|T|", "|D|", "|V|", "depth", "width", "T1/Tinf", "CCR", "speed cv"
    );
    let generators = saga_datasets::all_generators();
    let engine = BatchEngine::new();
    let cells: Vec<usize> = (0..generators.len()).collect();
    let profiles: Vec<InstanceProfile> = engine.map(cells, |k| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, k as u64));
        mean_profile(&generators[k].sample_many(&mut rng, samples))
    });
    for (gen, p) in generators.iter().zip(&profiles) {
        print_profile(gen.name, p);
    }

    // profile the published adversarial witnesses, if present
    let path = "results/fig4_witnesses.jsonl";
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(lib) = WitnessLibrary::from_jsonl(&text) {
            println!(
                "\nPISA witness instances ({} from {path}):",
                lib.records.len()
            );
            let instances: Vec<_> = lib
                .records
                .iter()
                .map(|r| r.instance().expect("stored instance is valid"))
                .collect();
            let p = mean_profile(&instances);
            print_profile("witnesses", &p);
            // how far from the chains dataset (their seed family) did the
            // search wander?
            let chains_idx = generators
                .iter()
                .position(|g| g.name == "chains")
                .expect("chains generator");
            let base = &profiles[chains_idx];
            println!(
                "\nwitnesses vs the chains family: depth {} vs {}, width {} vs {}, CCR {:.2} vs {:.2}",
                p.depth, base.depth, p.width, base.width, p.ccr, base.ccr
            );
            let deepest = instances
                .iter()
                .map(|i| profile(i).depth)
                .max()
                .unwrap_or(0);
            println!("deepest witness: {deepest} levels");
        }
    } else {
        eprintln!("(no witness library at {path}; run `fig4` to profile witnesses too)");
    }
}
