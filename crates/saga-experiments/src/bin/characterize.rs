//! Characterizes all 16 datasets structurally — quantifying the paper's
//! "what family is this dataset really representative of?" discussion, and
//! profiling the witnesses PISA finds (are the adversarial instances
//! structurally unusual, or in-family?).
//!
//! Usage: `characterize [--samples N] [--seed S]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga_datasets::characterize::{mean_profile, profile};
use saga_experiments::cli;
use saga_pisa::library::WitnessLibrary;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples: usize = cli::arg_or(&args, "samples", 25);
    let seed: u64 = cli::arg_or(&args, "seed", 0xC0DE);

    println!("Structural profile per dataset (mean over {samples} samples)\n");
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9}",
        "dataset", "|T|", "|D|", "|V|", "depth", "width", "T1/Tinf", "CCR", "speed cv"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for gen in saga_datasets::all_generators() {
        let instances = gen.sample_many(&mut rng, samples);
        let p = mean_profile(&instances);
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8.2} {:>8.2} {:>9.2}",
            gen.name,
            p.tasks,
            p.dependencies,
            p.nodes,
            p.depth,
            p.width,
            p.parallelism,
            p.ccr,
            p.speed_cv
        );
    }

    // profile the published adversarial witnesses, if present
    let path = "results/fig4_witnesses.jsonl";
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(lib) = WitnessLibrary::from_jsonl(&text) {
            println!(
                "\nPISA witness instances ({} from {path}):",
                lib.records.len()
            );
            let instances: Vec<_> = lib.records.iter().map(|r| r.instance()).collect();
            let p = mean_profile(&instances);
            println!(
                "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8.2} {:>8.2} {:>9.2}",
                "witnesses",
                p.tasks,
                p.dependencies,
                p.nodes,
                p.depth,
                p.width,
                p.parallelism,
                p.ccr,
                p.speed_cv
            );
            // how far from the chains dataset (their seed family) did the
            // search wander?
            let chains = saga_datasets::by_name("chains").unwrap();
            let base = mean_profile(&chains.sample_many(&mut rng, samples));
            println!(
                "\nwitnesses vs the chains family: depth {} vs {}, width {} vs {}, CCR {:.2} vs {:.2}",
                p.depth, base.depth, p.width, base.width, p.ccr, base.ccr
            );
            let deepest = instances
                .iter()
                .map(|i| profile(i).depth)
                .max()
                .unwrap_or(0);
            println!("deepest witness: {deepest} levels");
        }
    } else {
        eprintln!("(no witness library at {path}; run `fig4` to profile witnesses too)");
    }
}
