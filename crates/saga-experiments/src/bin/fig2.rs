//! Regenerates Fig. 2: benchmarking the 15 polynomial schedulers on all 16
//! datasets. Each cell reports the *maximum* makespan ratio a scheduler hit
//! on the dataset (the paper's color scale tops out the same way); median
//! and unbounded counts land in the CSV.
//!
//! Runs on the batch engine: instances shard across rayon workers with one
//! warm context per worker and cost tables pinned per instance, so the
//! default budget now matches the paper's low end (100 instances/dataset;
//! the paper uses 100–1000). Output is bit-identical for any
//! `RAYON_NUM_THREADS`.
//!
//! Every instance row is a keyed unit of work
//! (`fig2/{dataset}#k{k}#s{seed}`) appended to a [`RowCheckpoint`] JSONL as
//! it completes, so paper-scale 1000-instance budgets are resumable
//! (`--resume`) and distributable: `--shard i/N` runs only this host's
//! deterministic 1/N of the rows against a per-shard checkpoint
//! (`results/fig2_rows.shard{i}of{N}.jsonl`) and skips rendering —
//! `saga-merge` the shards into `results/fig2_rows.jsonl`, then render with
//! `fig2 --resume` (every row replays from the merged file bit-exactly).
//!
//! Usage: `fig2 [--instances N] [--seed S] [--resume] [--shard i/N]
//! [--checkpoint PATH]`.

use saga_experiments::engine::{BatchEngine, Progress, RowCheckpoint};
use saga_experiments::{benchmarking, cli, render, write_results_file};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instances: usize = cli::arg_or(&args, "instances", 100);
    let seed: u64 = cli::arg_or(&args, "seed", 0xF162);
    let resume = args.iter().any(|a| a == "--resume");
    let shard = cli::shard_arg(&args);
    let ckpt_path = cli::checkpoint_path(&args, shard, "results/fig2_rows.jsonl");

    let schedulers = saga_schedulers::benchmark_schedulers();
    let sched_names: Vec<String> = schedulers.iter().map(|s| s.name().to_string()).collect();
    let generators = saga_datasets::all_generators();
    let dataset_names: Vec<String> = generators.iter().map(|g| g.name.to_string()).collect();

    let checkpoint = RowCheckpoint::open(&ckpt_path, resume).unwrap_or_else(|e| {
        eprintln!("fatal: cannot open checkpoint {}: {e}", ckpt_path.display());
        std::process::exit(1);
    });
    if resume && checkpoint.loaded() > 0 {
        eprintln!(
            "resuming: {} rows already in {}",
            checkpoint.loaded(),
            ckpt_path.display()
        );
    }
    let key_of = |dataset: &str, k: usize| format!("fig2/{dataset}#k{k}#s{seed:016x}");
    // progress totals count only this shard's rows
    let total: usize = generators
        .iter()
        .map(|g| {
            (0..instances)
                .filter(|&k| shard.contains_key(&key_of(g.name, k)))
                .count()
        })
        .sum();

    let engine = BatchEngine::new();
    let progress = Progress::new("fig2", total);
    let mut max_rows: Vec<Vec<f64>> = Vec::with_capacity(generators.len());
    let mut med_rows: Vec<Vec<f64>> = Vec::with_capacity(generators.len());
    let mut done = 0usize;
    for gen in &generators {
        let key_of_k = |k: usize| key_of(gen.name, k);
        let rows = engine
            .dataset_makespans_sharded(
                &schedulers,
                gen,
                instances,
                seed,
                &key_of_k,
                shard,
                Some(&progress),
                Some(&checkpoint),
            )
            .unwrap_or_else(|e| {
                eprintln!(
                    "fatal: checkpoint write failed: {e} — rows recorded before the failure \
                     are flushed; re-run with --resume after freeing space"
                );
                std::process::exit(1);
            });
        done += rows.iter().flatten().count();
        if !shard.is_full() {
            continue;
        }
        // a full run computes every row; reduce to the paper's statistics
        let mut per_sched: Vec<Vec<f64>> = vec![Vec::with_capacity(instances); schedulers.len()];
        for row in rows.iter().flatten() {
            for (k, r) in benchmarking::ratios_of(row).into_iter().enumerate() {
                per_sched[k].push(r);
            }
        }
        let stats: Vec<benchmarking::RatioStats> = per_sched
            .iter()
            .map(|rs| benchmarking::summarize(rs))
            .collect();
        max_rows.push(stats.iter().map(|s| s.max).collect());
        med_rows.push(stats.iter().map(|s| s.median).collect());
    }
    if !shard.is_full() {
        // a partial shard can't render the matrices; its output is the
        // checkpoint itself
        eprintln!(
            "shard {shard} complete: {done} rows in {} — merge all shards with \
             `saga-merge --out results/fig2_rows.jsonl results/fig2_rows.shard*.jsonl`, \
             then render with `fig2 --resume`",
            ckpt_path.display()
        );
        return;
    }

    println!(
        "{}",
        render::matrix(
            &format!("Fig. 2: max makespan ratio per (dataset, scheduler), {instances} instances"),
            &dataset_names,
            &sched_names,
            &max_rows,
        )
    );
    println!(
        "{}",
        render::matrix(
            "Fig. 2 (median makespan ratio)",
            &dataset_names,
            &sched_names,
            &med_rows,
        )
    );

    let csv = render::matrix_csv(&dataset_names, &sched_names, &max_rows);
    let path = write_results_file("fig2_max_ratios.csv", &csv);
    let csv = render::matrix_csv(&dataset_names, &sched_names, &med_rows);
    let path2 = write_results_file("fig2_median_ratios.csv", &csv);
    eprintln!("wrote {} and {}", path.display(), path2.display());

    // The qualitative Fig. 2 takeaways, checked live:
    let fastest_idx = sched_names.iter().position(|n| n == "FastestNode").unwrap();
    let heft_idx = sched_names.iter().position(|n| n == "HEFT").unwrap();
    let fastest_bad_somewhere = max_rows.iter().any(|row| row[fastest_idx] > 2.0);
    let heft_med: Vec<f64> = med_rows.iter().map(|r| r[heft_idx]).collect();
    println!("check: FastestNode max ratio > 2 on some dataset: {fastest_bad_somewhere}");
    println!(
        "check: HEFT median ratio stays below 1.35 on every dataset: {}",
        heft_med.iter().all(|&r| r < 1.35)
    );
}
