//! Regenerates Fig. 2: benchmarking the 15 polynomial schedulers on all 16
//! datasets. Each cell reports the *maximum* makespan ratio a scheduler hit
//! on the dataset (the paper's color scale tops out the same way); median
//! and unbounded counts land in the CSV.
//!
//! Runs on the batch engine: instances shard across rayon workers with one
//! warm context per worker and cost tables pinned per instance, so the
//! default budget now matches the paper's low end (100 instances/dataset;
//! the paper uses 100–1000). Output is bit-identical for any
//! `RAYON_NUM_THREADS`.
//!
//! Usage: `fig2 [--instances N] [--seed S]`.

use saga_experiments::engine::{BatchEngine, Progress};
use saga_experiments::{benchmarking, cli, render, write_results_file};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instances: usize = cli::arg_or(&args, "instances", 100);
    let seed: u64 = cli::arg_or(&args, "seed", 0xF162);

    let schedulers = saga_schedulers::benchmark_schedulers();
    let sched_names: Vec<String> = schedulers.iter().map(|s| s.name().to_string()).collect();
    let generators = saga_datasets::all_generators();
    let dataset_names: Vec<String> = generators.iter().map(|g| g.name.to_string()).collect();

    let engine = BatchEngine::new();
    let progress = Progress::new("fig2", generators.len() * instances);
    let mut max_rows: Vec<Vec<f64>> = Vec::with_capacity(generators.len());
    let mut med_rows: Vec<Vec<f64>> = Vec::with_capacity(generators.len());
    for gen in &generators {
        let stats = benchmarking::benchmark_dataset_engine(
            &engine,
            &schedulers,
            gen,
            instances,
            seed,
            Some(&progress),
        );
        max_rows.push(stats.iter().map(|s| s.max).collect());
        med_rows.push(stats.iter().map(|s| s.median).collect());
    }

    println!(
        "{}",
        render::matrix(
            &format!("Fig. 2: max makespan ratio per (dataset, scheduler), {instances} instances"),
            &dataset_names,
            &sched_names,
            &max_rows,
        )
    );
    println!(
        "{}",
        render::matrix(
            "Fig. 2 (median makespan ratio)",
            &dataset_names,
            &sched_names,
            &med_rows,
        )
    );

    let csv = render::matrix_csv(&dataset_names, &sched_names, &max_rows);
    let path = write_results_file("fig2_max_ratios.csv", &csv);
    let csv = render::matrix_csv(&dataset_names, &sched_names, &med_rows);
    let path2 = write_results_file("fig2_median_ratios.csv", &csv);
    eprintln!("wrote {} and {}", path.display(), path2.display());

    // The qualitative Fig. 2 takeaways, checked live:
    let fastest_idx = sched_names.iter().position(|n| n == "FastestNode").unwrap();
    let heft_idx = sched_names.iter().position(|n| n == "HEFT").unwrap();
    let fastest_bad_somewhere = max_rows.iter().any(|row| row[fastest_idx] > 2.0);
    let heft_med: Vec<f64> = med_rows.iter().map(|r| r[heft_idx]).collect();
    println!("check: FastestNode max ratio > 2 on some dataset: {fastest_bad_somewhere}");
    println!(
        "check: HEFT median ratio stays below 1.35 on every dataset: {}",
        heft_med.iter().all(|&r| r < 1.35)
    );
}
