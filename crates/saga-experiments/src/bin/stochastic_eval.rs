//! Robustness under uncertainty — the paper's stochastic-instances
//! future-work direction, made concrete: plan statically on the *expected*
//! instance, then execute the fixed plan under Monte-Carlo realizations of
//! the weights, and compare schedulers by achieved mean and tail (p95)
//! makespan.
//!
//! The (scheduler × instance) cells run on the batch engine with
//! per-instance Monte-Carlo seeds, so realizations shard across workers,
//! the default budget is larger (25 instances), and the CSV is
//! bit-identical for any `RAYON_NUM_THREADS`.
//!
//! Usage: `stochastic_eval [workflow] [--cv F] [--instances N]
//! [--samples K] [--seed S]` (default workflow `montage`, cv 0.3).

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga_core::stochastic::{static_plan_makespan, StochasticInstance};
use saga_core::Instance;
use saga_experiments::engine::{BatchEngine, Progress};
use saga_experiments::{cli, write_results_file};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workflow = cli::positional(&args).unwrap_or("montage").to_string();
    let cv: f64 = cli::arg_or(&args, "cv", 0.3);
    let instances: usize = cli::arg_or(&args, "instances", 25);
    let samples: usize = cli::arg_or(&args, "samples", 100);
    let seed: u64 = cli::arg_or(&args, "seed", 0x570C);

    let spec = saga_datasets::workflows::spec(&workflow)
        .unwrap_or_else(|| panic!("unknown workflow {workflow}"));
    let schedulers = saga_schedulers::app_specific_schedulers();
    let mut rng = StdRng::seed_from_u64(seed);

    println!(
        "Stochastic evaluation on {workflow} (cv = {cv}, {instances} instances x {samples} realizations)\n"
    );
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "scheduler", "planned", "achieved mean", "achieved p95"
    );
    let mut base_instances = Vec::with_capacity(instances);
    for _ in 0..instances {
        let g = saga_datasets::workflows::build_graph(&workflow, &mut rng);
        let net = saga_datasets::workflows::sample_chameleon_network(&mut rng, &spec);
        let mut inst = Instance::new(net, g);
        saga_datasets::ccr::set_homogeneous_ccr(&mut inst, 1.0);
        base_instances.push(inst);
    }

    // one cell per (scheduler, instance): plan on the expected instance,
    // then Monte-Carlo the fixed plan with that instance's derived seed
    let engine = BatchEngine::new();
    let progress = Progress::new("stochastic_eval", schedulers.len() * instances);
    let cells: Vec<(usize, usize)> = (0..schedulers.len())
        .flat_map(|s| (0..instances).map(move |k| (s, k)))
        .collect();
    let results: Vec<(f64, f64, f64)> = engine.map_ctx(cells, |ctx, (s, k)| {
        let stoch = StochasticInstance::jittered(&base_instances[k], cv);
        let plan = schedulers[s].schedule_into(&stoch.expected_instance(), ctx);
        let mut mc_rng = StdRng::seed_from_u64(seed ^ (k as u64) << 8);
        let (m, p) = static_plan_makespan(&plan, &stoch, samples, &mut mc_rng);
        progress.tick();
        (plan.makespan(), m, p)
    });

    let mut csv = String::from("scheduler,planned,achieved_mean,achieved_p95\n");
    for (s, sched) in schedulers.iter().enumerate() {
        let mut planned = 0.0;
        let mut mean = 0.0;
        let mut p95 = 0.0;
        for &(pl, m, p) in &results[s * instances..(s + 1) * instances] {
            planned += pl;
            mean += m;
            p95 += p;
        }
        let n = instances as f64;
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>14.3}",
            sched.name(),
            planned / n,
            mean / n,
            p95 / n
        );
        csv.push_str(&format!(
            "{},{},{},{}\n",
            sched.name(),
            planned / n,
            mean / n,
            p95 / n
        ));
    }
    let path = write_results_file(&format!("stochastic_{workflow}.csv"), &csv);
    eprintln!("wrote {}", path.display());
    println!(
        "\nnote: 'planned' is the makespan promised on the expected instance;\n\
         'achieved' is what the fixed plan delivers when weights deviate (cv = {cv})."
    );
}
