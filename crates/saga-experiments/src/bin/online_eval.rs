//! The price of non-clairvoyance: compares online dispatch policies against
//! offline HEFT as task arrivals are staggered more and more — the paper's
//! "online scheduling" future-work direction, measured.
//!
//! Usage: `online_eval [workflow] [--instances N] [--seed S]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saga_core::Instance;
use saga_experiments::{cli, write_results_file};
use saga_schedulers::online::{simulate_online, OnlineEft, OnlineOlb, ReleaseTimes};
use saga_schedulers::Scheduler;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workflow = cli::positional(&args).unwrap_or("blast").to_string();
    let instances: usize = cli::arg_or(&args, "instances", 10);
    let seed: u64 = cli::arg_or(&args, "seed", 0x0411);

    let spec = saga_datasets::workflows::spec(&workflow)
        .unwrap_or_else(|| panic!("unknown workflow {workflow}"));
    let mut rng = StdRng::seed_from_u64(seed);
    println!(
        "Online vs offline on {workflow} ({instances} instances; stagger = arrival gap per level)\n"
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "stagger", "offline HEFT", "OnlineEFT", "OnlineOLB"
    );
    let mut csv = String::from("stagger,offline_heft,online_eft,online_olb\n");
    for stagger_frac in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let mut offline = 0.0;
        let mut eft = 0.0;
        let mut olb = 0.0;
        let mut inner = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..instances {
            let g = saga_datasets::workflows::build_graph(&workflow, &mut rng);
            let net = saga_datasets::workflows::sample_chameleon_network(&mut rng, &spec);
            let mut inst = Instance::new(net, g);
            saga_datasets::ccr::set_homogeneous_ccr(&mut inst, 1.0);
            let h = saga_schedulers::Heft.schedule(&inst).makespan();
            offline += h;
            // stagger proportional to the offline makespan scale
            let stagger = stagger_frac * h / 4.0;
            let jitters: Vec<f64> = (0..inst.graph.task_count())
                .map(|_| inner.gen_range(0.0..=stagger.max(1e-12)))
                .collect();
            let releases = ReleaseTimes::staggered(&inst, stagger, |i| jitters[i] * 0.1);
            let se = simulate_online(&inst, &releases, &OnlineEft);
            releases.verify(&inst, &se).expect("valid online schedule");
            eft += se.makespan();
            let so = simulate_online(&inst, &releases, &OnlineOlb);
            releases.verify(&inst, &so).expect("valid online schedule");
            olb += so.makespan();
        }
        let n = instances as f64;
        println!(
            "{:>8.2} {:>14.1} {:>14.1} {:>14.1}",
            stagger_frac,
            offline / n,
            eft / n,
            olb / n
        );
        csv.push_str(&format!(
            "{},{},{},{}\n",
            stagger_frac,
            offline / n,
            eft / n,
            olb / n
        ));
    }
    let path = write_results_file(&format!("online_{workflow}.csv"), &csv);
    eprintln!("wrote {}", path.display());
    println!(
        "\noffline HEFT sees the whole graph at t=0; the online policies pay\n\
         for both non-clairvoyance and the arrival-induced idle time."
    );
}
