//! The price of non-clairvoyance: compares online dispatch policies against
//! offline HEFT as task arrivals are staggered more and more — the paper's
//! "online scheduling" future-work direction, measured.
//!
//! Runs on the batch engine: each (stagger, instance) pair is a cell with
//! its own derived seed — generation, the offline HEFT run (pooled
//! context), and both online simulations shard across workers with
//! order-preserving collection, so the CSV is bit-identical for any
//! `RAYON_NUM_THREADS`.
//!
//! Usage: `online_eval [workflow] [--instances N] [--seed S]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saga_core::Instance;
use saga_experiments::engine::{derive_seed, BatchEngine, Progress};
use saga_experiments::{cli, write_results_file};
use saga_schedulers::online::{simulate_online, OnlineEft, OnlineOlb, ReleaseTimes};
use saga_schedulers::Scheduler;

const STAGGERS: [f64; 5] = [0.0, 0.25, 0.5, 1.0, 2.0];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workflow = cli::positional(&args).unwrap_or("blast").to_string();
    let instances: usize = cli::arg_or(&args, "instances", 10);
    let seed: u64 = cli::arg_or(&args, "seed", 0x0411);

    let spec = saga_datasets::workflows::spec(&workflow)
        .unwrap_or_else(|| panic!("unknown workflow {workflow}"));
    println!(
        "Online vs offline on {workflow} ({instances} instances; stagger = arrival gap per level)\n"
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "stagger", "offline HEFT", "OnlineEFT", "OnlineOLB"
    );

    let engine = BatchEngine::new();
    let progress = Progress::new("online_eval", STAGGERS.len() * instances);
    let cells: Vec<(usize, usize)> = (0..STAGGERS.len())
        .flat_map(|si| (0..instances).map(move |k| (si, k)))
        .collect();
    let rows: Vec<(f64, f64, f64)> = engine.map_ctx(cells, |ctx, (si, k)| {
        let stagger_frac = STAGGERS[si];
        let cell_seed = derive_seed(seed, (si * instances + k) as u64);
        let mut rng = StdRng::seed_from_u64(cell_seed);
        let g = saga_datasets::workflows::build_graph(&workflow, &mut rng);
        let net = saga_datasets::workflows::sample_chameleon_network(&mut rng, &spec);
        let mut inst = Instance::new(net, g);
        saga_datasets::ccr::set_homogeneous_ccr(&mut inst, 1.0);
        let h = saga_schedulers::Heft.makespan_into(&inst, ctx);
        // stagger proportional to the offline makespan scale; jitters from
        // a cell-local stream (the pre-engine driver shared one stream
        // across a stagger row, which serialized generation)
        let stagger = stagger_frac * h / 4.0;
        let mut jitter_rng = StdRng::seed_from_u64(cell_seed ^ 0xABCD);
        let jitters: Vec<f64> = (0..inst.graph.task_count())
            .map(|_| jitter_rng.gen_range(0.0..=stagger.max(1e-12)))
            .collect();
        let releases = ReleaseTimes::staggered(&inst, stagger, |i| jitters[i] * 0.1);
        let se = simulate_online(&inst, &releases, &OnlineEft);
        releases.verify(&inst, &se).expect("valid online schedule");
        let so = simulate_online(&inst, &releases, &OnlineOlb);
        releases.verify(&inst, &so).expect("valid online schedule");
        progress.tick();
        (h, se.makespan(), so.makespan())
    });

    let mut csv = String::from("stagger,offline_heft,online_eft,online_olb\n");
    for (si, &stagger_frac) in STAGGERS.iter().enumerate() {
        let chunk = &rows[si * instances..(si + 1) * instances];
        let n = instances as f64;
        let offline: f64 = chunk.iter().map(|r| r.0).sum::<f64>() / n;
        let eft: f64 = chunk.iter().map(|r| r.1).sum::<f64>() / n;
        let olb: f64 = chunk.iter().map(|r| r.2).sum::<f64>() / n;
        println!("{stagger_frac:>8.2} {offline:>14.1} {eft:>14.1} {olb:>14.1}");
        csv.push_str(&format!("{stagger_frac},{offline},{eft},{olb}\n"));
    }
    let path = write_results_file(&format!("online_{workflow}.csv"), &csv);
    eprintln!("wrote {}", path.display());
    println!(
        "\noffline HEFT sees the whole graph at t=0; the online policies pay\n\
         for both non-clairvoyance and the arrival-induced idle time."
    );
}
