//! Ablation: does PISA need simulated annealing? Compares annealing,
//! hill-climbing, and a random walk at identical budgets over a panel of
//! scheduler pairs (a design-choice ablation flagged in DESIGN.md; the
//! paper proposes exploring other meta-heuristics as future work).
//!
//! Runs on the batch engine's `SearchCell` runtime: one `Ablation` cell per
//! (pair, strategy, trial), sharded across workers with pooled contexts and
//! per-cell derived seeds — bit-identical at any `RAYON_NUM_THREADS` —
//! with a JSONL checkpoint (`--resume`).
//!
//! Usage: `ablation_search [--imax N] [--restarts R] [--seed S] [--trials K]
//! [--resume] [--shard i/N] [--checkpoint PATH]`. With `--shard i/N` only
//! that slice of the cells runs, against a per-shard checkpoint, and the
//! summary is skipped; `saga-merge` the shards and re-run with `--resume`.

use saga_experiments::engine::{BatchEngine, CellCheckpoint, Progress};
use saga_experiments::{cli, render, write_results_file};
use saga_pisa::ablation::Strategy;
use saga_pisa::{shard_cells, PisaConfig, SearchCell};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let resume = args.iter().any(|a| a == "--resume");
    let shard = cli::shard_arg(&args);
    let ckpt_path = cli::checkpoint_path(&args, shard, "results/ablation_search_cells.jsonl");
    let config = PisaConfig {
        i_max: cli::arg_or(&args, "imax", 1000),
        restarts: cli::arg_or(&args, "restarts", 5),
        seed: cli::arg_or(&args, "seed", 0xAB1A),
        ..PisaConfig::default()
    };
    let trials: usize = cli::arg_or(&args, "trials", 5);

    let pairs = [
        ("HEFT", "CPoP"),
        ("CPoP", "HEFT"),
        ("HEFT", "FastestNode"),
        ("MinMin", "MaxMin"),
        ("WBA", "HEFT"),
        ("MCT", "HEFT"),
    ];
    println!(
        "Ablation: best adversarial ratio by search strategy \
         ({} restarts x {} iters, mean over {trials} seeds)\n",
        config.restarts, config.i_max
    );

    // Cells in (pair, strategy, trial) nesting. Trials within one
    // (pair, strategy) must compare across strategies at matched seeds, so
    // the trial's config seed is shared per (pair, trial) and only the
    // strategy varies — exactly the old driver's seed pairing, expressed as
    // cells. The cell label carries the trial index (via the seed in the
    // key), keeping checkpoint keys unique.
    let mut cells = Vec::with_capacity(pairs.len() * Strategy::ALL.len() * trials);
    for (pi, (a, b)) in pairs.iter().enumerate() {
        for strategy in Strategy::ALL {
            for k in 0..trials {
                let cfg = PisaConfig {
                    seed: saga_core::derive_seed(config.seed, (pi * trials + k) as u64),
                    ..config
                };
                cells.push(SearchCell::ablation(strategy, a, b, cfg));
            }
        }
    }
    let total = cells.len();
    let cells = shard_cells(cells, shard);
    let checkpoint = CellCheckpoint::open(&ckpt_path, resume).expect("open checkpoint");
    if resume && checkpoint.loaded() > 0 {
        eprintln!(
            "resuming: {} cells already in {}",
            checkpoint.loaded(),
            ckpt_path.display()
        );
    }
    let engine = BatchEngine::new();
    let progress = Progress::new("ablation_search", cells.len());
    let results = engine.run_cells_or_exit(&cells, Some(&progress), Some(&checkpoint));
    if !shard.is_full() {
        // a partial shard can't compute the cross-strategy summary; its
        // output is the checkpoint itself
        eprintln!(
            "shard {shard} complete: {} of {total} cells in {} — merge all shards with \
             saga-merge, then summarize with `ablation_search --resume`",
            results.len(),
            ckpt_path.display()
        );
        return;
    }
    let mut results = results.into_iter();

    let col_names: Vec<String> = Strategy::ALL.iter().map(|s| s.name().to_string()).collect();
    let mut row_names = Vec::new();
    let mut rows = Vec::new();
    let mut wins = vec![0usize; Strategy::ALL.len()];
    for (a, b) in pairs {
        let mut means = Vec::new();
        let mut trial_best: Vec<Vec<f64>> = vec![Vec::new(); Strategy::ALL.len()];
        for strategy_trials in trial_best.iter_mut() {
            let mut total = 0.0;
            for _ in 0..trials {
                let res = results.next().expect("one result per cell");
                let r = if res.ratio.is_finite() {
                    res.ratio
                } else {
                    1000.0
                };
                total += r;
                strategy_trials.push(r);
            }
            means.push(total / trials as f64);
        }
        // count per-trial wins (ties split to the earlier strategy)
        #[allow(clippy::needless_range_loop)] // k indexes parallel per-strategy vectors
        for k in 0..trial_best[0].len() {
            let mut best = 0;
            for si in 1..Strategy::ALL.len() {
                if trial_best[si][k] > trial_best[best][k] {
                    best = si;
                }
            }
            wins[best] += 1;
        }
        row_names.push(format!("{a} vs {b}"));
        rows.push(means);
    }
    println!(
        "{}",
        render::matrix(
            "mean best ratio (1000 = unbounded)",
            &row_names,
            &col_names,
            &rows
        )
    );
    println!("per-trial wins across all pairs:");
    for (s, w) in Strategy::ALL.iter().zip(&wins) {
        println!("  {:<12} {w}", s.name());
    }
    let path = write_results_file(
        "ablation_search.csv",
        &render::matrix_csv(&row_names, &col_names, &rows),
    );
    eprintln!("wrote {}", path.display());
}
