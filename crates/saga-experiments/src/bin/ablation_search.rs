//! Ablation: does PISA need simulated annealing? Compares annealing,
//! hill-climbing, and a random walk at identical budgets over a panel of
//! scheduler pairs (a design-choice ablation flagged in DESIGN.md; the
//! paper proposes exploring other meta-heuristics as future work).
//!
//! Usage: `ablation_search [--imax N] [--restarts R] [--seed S] [--trials K]`.

use saga_experiments::{cli, render, write_results_file};
use saga_pisa::ablation::{search, Strategy};
use saga_pisa::perturb::{initial_instance, GeneralPerturber};
use saga_pisa::PisaConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = PisaConfig {
        i_max: cli::arg_or(&args, "imax", 1000),
        restarts: cli::arg_or(&args, "restarts", 5),
        seed: cli::arg_or(&args, "seed", 0xAB1A),
        ..PisaConfig::default()
    };
    let trials: usize = cli::arg_or(&args, "trials", 5);

    let pairs = [
        ("HEFT", "CPoP"),
        ("CPoP", "HEFT"),
        ("HEFT", "FastestNode"),
        ("MinMin", "MaxMin"),
        ("WBA", "HEFT"),
        ("MCT", "HEFT"),
    ];
    println!(
        "Ablation: best adversarial ratio by search strategy \
         ({} restarts x {} iters, mean over {trials} seeds)\n",
        config.restarts, config.i_max
    );
    let col_names: Vec<String> = Strategy::ALL.iter().map(|s| s.name().to_string()).collect();
    let mut row_names = Vec::new();
    let mut rows = Vec::new();
    let mut wins = vec![0usize; Strategy::ALL.len()];
    for (a, b) in pairs {
        let target = saga_schedulers::by_name(a).unwrap();
        let baseline = saga_schedulers::by_name(b).unwrap();
        let perturber = GeneralPerturber::default();
        let mut means = Vec::new();
        let mut trial_best: Vec<Vec<f64>> = vec![Vec::new(); Strategy::ALL.len()];
        for (si, strategy) in Strategy::ALL.into_iter().enumerate() {
            let mut total = 0.0;
            for k in 0..trials {
                let cfg = PisaConfig {
                    seed: config.seed.wrapping_add(1000 * k as u64),
                    ..config
                };
                let res = search(&*target, &*baseline, &perturber, cfg, strategy, &|rng| {
                    initial_instance(rng)
                });
                let r = if res.ratio.is_finite() {
                    res.ratio
                } else {
                    1000.0
                };
                total += r;
                trial_best[si].push(r);
            }
            means.push(total / trials as f64);
        }
        // count per-trial wins (ties split to the earlier strategy)
        #[allow(clippy::needless_range_loop)] // k indexes parallel per-strategy vectors
        for k in 0..trial_best[0].len() {
            let mut best = 0;
            for si in 1..Strategy::ALL.len() {
                if trial_best[si][k] > trial_best[best][k] {
                    best = si;
                }
            }
            wins[best] += 1;
        }
        row_names.push(format!("{a} vs {b}"));
        rows.push(means);
    }
    println!(
        "{}",
        render::matrix(
            "mean best ratio (1000 = unbounded)",
            &row_names,
            &col_names,
            &rows
        )
    );
    println!("per-trial wins across all pairs:");
    for (s, w) in Strategy::ALL.iter().zip(&wins) {
        println!("  {:<12} {w}", s.name());
    }
    let path = write_results_file(
        "ablation_search.csv",
        &render::matrix_csv(&row_names, &col_names, &rows),
    );
    eprintln!("wrote {}", path.display());
}
