//! Regenerates Table I: the scheduler inventory, with the model each
//! algorithm was designed for, its scheduling complexity, and any formal
//! guarantee — straight from the implementations' module documentation.
//!
//! The complexity column is now *measured* too: the (scheduler) cells run
//! through the batch engine's sequential path (`map_ctx_seq` — one warm
//! pooled context, no fan-out, because concurrently timed cells would
//! inflate each other's wall-clock on shared cores) against a fixed
//! 50-task/4-node instance, so the printed µs put the asymptotic claims
//! next to live numbers and do not vary with `RAYON_NUM_THREADS`. The
//! exponential reference solvers are not timed (they would dominate the
//! table's runtime), as in the paper's experiments.
//!
//! Usage: `table1 [--reps N]` (default 20 repetitions per scheduler).

use saga_experiments::{cli, engine::BatchEngine};
use saga_schedulers::util::fixtures;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reps: usize = cli::arg_or(&args, "reps", 20);

    println!("Table I: Schedulers implemented in SAGA-rs\n");
    println!(
        "{:<12} {:<38} {:<22} {:>12}  Design model / notes",
        "Abbrev", "Algorithm", "Complexity", "us/sched*"
    );
    let rows = [
        (
            "BIL",
            "Best Imaginary Level",
            "O(|T|^2 |V| log|V|)",
            "unrelated machines; optimal on chains",
        ),
        (
            "BnB",
            "Branch & bound + binary search",
            "exponential",
            "SMT substitute; (1+eps)-OPT reference",
        ),
        (
            "BruteForce",
            "Exhaustive search",
            "exponential",
            "optimal reference, toy instances only",
        ),
        (
            "CPoP",
            "Critical Path on Processor",
            "O(|T|^2 |V|)",
            "heterogeneous; CP pinned to fastest node",
        ),
        (
            "Duplex",
            "Best of MinMin and MaxMin",
            "O(|T|^2 |V|)",
            "independent-task heuristic on ready sets",
        ),
        (
            "ETF",
            "Earliest Task First",
            "O(|T| |V|^2)",
            "homogeneous nodes; (2-1/n)OPT+C bound",
        ),
        (
            "FCP",
            "Fast Critical Path",
            "O(|T| log|V| + |D|)",
            "homogeneous links; 2-candidate nodes",
        ),
        (
            "FLB",
            "Fast Load Balancing",
            "O(|T| log|V| + |D|)",
            "homogeneous links; earliest-finish greedy",
        ),
        (
            "FastestNode",
            "Serial on fastest node",
            "O(|T|)",
            "baseline; never communicates",
        ),
        (
            "GDL",
            "Generalized Dynamic Level (DLS)",
            "O(|V|^3 |T|)",
            "unrelated machines; dynamic levels",
        ),
        (
            "HEFT",
            "Heterogeneous Earliest Finish Time",
            "O(|T|^2 |V|)",
            "heterogeneous; insertion-based EFT",
        ),
        (
            "MCT",
            "Minimum Completion Time",
            "O(|T|^2 |V|)",
            "HEFT minus insertion and priorities",
        ),
        (
            "MET",
            "Minimum Execution Time",
            "O(|T| |V|)",
            "serializes under related machines",
        ),
        (
            "MaxMin",
            "MaxMin",
            "O(|T|^2 |V|)",
            "big rocks first on ready sets",
        ),
        (
            "MinMin",
            "MinMin",
            "O(|T|^2 |V|)",
            "cheapest completion first on ready sets",
        ),
        (
            "OLB",
            "Opportunistic Load Balancing",
            "O(|T| |V|)",
            "first-idle node, ignores speeds",
        ),
        (
            "WBA",
            "Workflow-Based Application",
            "O(|T| |D| |V|)",
            "randomized min-increase placement",
        ),
    ];

    // one engine batch: cell = one scheduler timed `reps` times (sequential
    // path — parallel timing would contend for cores and skew the numbers)
    let inst = fixtures::random_instance(42, 50, 4, 0.15);
    let engine = BatchEngine::new();
    let cells: Vec<&str> = rows.iter().map(|&(abbrev, ..)| abbrev).collect();
    let micros: Vec<Option<f64>> = engine.map_ctx_seq(cells, |ctx, abbrev| {
        let sched = saga_schedulers::by_name(abbrev).expect("roster scheduler");
        if matches!(abbrev, "BnB" | "BruteForce") {
            return None; // exponential references: not timed
        }
        // warm-up run, then the timed repetitions
        std::hint::black_box(sched.makespan_into(&inst, ctx));
        let t = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(sched.makespan_into(&inst, ctx));
        }
        Some(t.elapsed().as_secs_f64() * 1e6 / reps as f64)
    });

    for ((abbrev, name, complexity, notes), us) in rows.iter().zip(&micros) {
        let measured = match us {
            Some(us) => format!("{us:>12.1}"),
            None => format!("{:>12}", "-"),
        };
        println!("{abbrev:<12} {name:<38} {complexity:<22} {measured}  {notes}");
    }
    println!("\n* mean over {reps} runs on a fixed 50-task, 4-node instance");
    println!(
        "{} polynomial-time schedulers are benchmarked (Fig. 2) and compared\n\
         adversarially (Fig. 4); BruteForce and BnB are exponential references\n\
         excluded from those experiments, as in the paper.",
        saga_schedulers::benchmark_schedulers().len()
    );
}
