//! Regenerates Table I: the scheduler inventory, with the model each
//! algorithm was designed for, its scheduling complexity, and any formal
//! guarantee — straight from the implementations' module documentation.

fn main() {
    println!("Table I: Schedulers implemented in SAGA-rs\n");
    println!(
        "{:<12} {:<38} {:<22} Design model / notes",
        "Abbrev", "Algorithm", "Complexity"
    );
    let rows = [
        (
            "BIL",
            "Best Imaginary Level",
            "O(|T|^2 |V| log|V|)",
            "unrelated machines; optimal on chains",
        ),
        (
            "BnB",
            "Branch & bound + binary search",
            "exponential",
            "SMT substitute; (1+eps)-OPT reference",
        ),
        (
            "BruteForce",
            "Exhaustive search",
            "exponential",
            "optimal reference, toy instances only",
        ),
        (
            "CPoP",
            "Critical Path on Processor",
            "O(|T|^2 |V|)",
            "heterogeneous; CP pinned to fastest node",
        ),
        (
            "Duplex",
            "Best of MinMin and MaxMin",
            "O(|T|^2 |V|)",
            "independent-task heuristic on ready sets",
        ),
        (
            "ETF",
            "Earliest Task First",
            "O(|T| |V|^2)",
            "homogeneous nodes; (2-1/n)OPT+C bound",
        ),
        (
            "FCP",
            "Fast Critical Path",
            "O(|T| log|V| + |D|)",
            "homogeneous links; 2-candidate nodes",
        ),
        (
            "FLB",
            "Fast Load Balancing",
            "O(|T| log|V| + |D|)",
            "homogeneous links; earliest-finish greedy",
        ),
        (
            "FastestNode",
            "Serial on fastest node",
            "O(|T|)",
            "baseline; never communicates",
        ),
        (
            "GDL",
            "Generalized Dynamic Level (DLS)",
            "O(|V|^3 |T|)",
            "unrelated machines; dynamic levels",
        ),
        (
            "HEFT",
            "Heterogeneous Earliest Finish Time",
            "O(|T|^2 |V|)",
            "heterogeneous; insertion-based EFT",
        ),
        (
            "MCT",
            "Minimum Completion Time",
            "O(|T|^2 |V|)",
            "HEFT minus insertion and priorities",
        ),
        (
            "MET",
            "Minimum Execution Time",
            "O(|T| |V|)",
            "serializes under related machines",
        ),
        (
            "MaxMin",
            "MaxMin",
            "O(|T|^2 |V|)",
            "big rocks first on ready sets",
        ),
        (
            "MinMin",
            "MinMin",
            "O(|T|^2 |V|)",
            "cheapest completion first on ready sets",
        ),
        (
            "OLB",
            "Opportunistic Load Balancing",
            "O(|T| |V|)",
            "first-idle node, ignores speeds",
        ),
        (
            "WBA",
            "Workflow-Based Application",
            "O(|T| |D| |V|)",
            "randomized min-increase placement",
        ),
    ];
    for (abbrev, name, complexity, notes) in rows {
        println!("{abbrev:<12} {name:<38} {complexity:<22} {notes}");
    }
    println!();
    println!(
        "{} polynomial-time schedulers are benchmarked (Fig. 2) and compared\n\
         adversarially (Fig. 4); BruteForce and BnB are exponential references\n\
         excluded from those experiments, as in the paper.",
        saga_schedulers::benchmark_schedulers().len()
    );
}
