//! Regenerates Fig. 8: 1000 draws from the wide fork-join family (expensive
//! join messages, weak link between the two fastest nodes) on which CPoP
//! performs poorly against HEFT.
//!
//! Runs on the batch engine: each instance is a cell with its own derived
//! seed — generation and both scheduler runs (under one pinned table build)
//! shard across workers, with order-preserving collection, so the CSV is
//! bit-identical for any `RAYON_NUM_THREADS`.
//!
//! Usage: `fig8 [--instances N] [--seed S]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saga_datasets::families::cpop_weak_instance;
use saga_experiments::engine::{derive_seed, BatchEngine, Progress};
use saga_experiments::{cli, render, write_results_file};
use saga_schedulers::{Cpop, Heft, Scheduler};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instances: usize = cli::arg_or(&args, "instances", 1000);
    let seed: u64 = cli::arg_or(&args, "seed", 0xF168);

    let engine = BatchEngine::new();
    let progress = Progress::new("fig8", instances);
    let pairs: Vec<(f64, f64)> = engine.map_ctx((0..instances).collect(), |ctx, k| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, k as u64));
        let inst = cpop_weak_instance(&mut rng);
        let row = ctx.with_pinned(&inst, |ctx| {
            (
                Heft.makespan_into(&inst, ctx),
                Cpop.makespan_into(&inst, ctx),
            )
        });
        progress.tick();
        row
    });
    let heft: Vec<f64> = pairs.iter().map(|&(h, _)| h).collect();
    let cpop: Vec<f64> = pairs.iter().map(|&(_, c)| c).collect();
    println!("Fig. 8: makespans on the CPoP-weak wide fork-join family ({instances} instances)\n");
    println!("{}", render::five_number_summary("CPoP", &cpop));
    println!("{}", render::five_number_summary("HEFT", &heft));
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    println!(
        "\nmean makespan: CPoP {:.3}, HEFT {:.3} (ratio {:.3})",
        mean(&cpop),
        mean(&heft),
        mean(&cpop) / mean(&heft)
    );
    println!(
        "check: CPoP clearly worse on this family: {}",
        mean(&cpop) > 1.1 * mean(&heft)
    );
    let mut csv = String::from("instance,heft,cpop\n");
    for i in 0..instances {
        csv.push_str(&format!("{i},{},{}\n", heft[i], cpop[i]));
    }
    let path = write_results_file("fig8_makespans.csv", &csv);
    eprintln!("wrote {}", path.display());
}
