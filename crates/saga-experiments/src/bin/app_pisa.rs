//! Regenerates Figs. 10–19 (and Appendix A): application-specific PISA for
//! the scientific workflows, at CCR ∈ {0.2, 0.5, 1, 2, 5}, over the paper's
//! Section VII scheduler subset (CPoP, FastestNode, HEFT, MaxMin, MinMin,
//! WBA). For each CCR the top row is traditional benchmarking (max ratio
//! over in-family instances) and the remaining rows are the worst-case
//! ratios PISA found — the paper's exact figure layout.
//!
//! Runs on the batch engine's `SearchCell` runtime: one `App` cell per
//! (CCR, ordered pair), sharded across workers with pooled contexts and
//! per-cell derived seeds (bit-identical at any `RAYON_NUM_THREADS`), and a
//! per-workflow JSONL checkpoint (`--resume`). The benchmarking rows run on
//! the engine too: instances generate in parallel from per-instance derived
//! seeds and all schedulers evaluate under pinned cost tables.
//!
//! Usage: `app_pisa [workflow|all] [--instances N] [--imax N] [--restarts R]
//! [--ccr X] [--seed S] [--resume] [--shard i/N] [--checkpoint PATH]`.
//! Default workflow: `srasearch`; defaults trade the paper's CPU-hours for
//! minutes (see EXPERIMENTS.md). With `--shard i/N` only that slice of each
//! workflow's cells runs, against per-shard checkpoints
//! (`…_cells.shard{i}of{N}.jsonl`; `--checkpoint` overrides the path for
//! single-workflow runs), and rendering is skipped — `saga-merge` the
//! shards, then re-run with `--resume` to render.

use saga_experiments::engine::{derive_seed, BatchEngine, CellCheckpoint, Progress};
use saga_experiments::{benchmarking, cli, render, write_results_file};
use saga_pisa::annealer::PisaConfig;
use saga_pisa::app_specific::AppSpecific;
use saga_pisa::{cell_config, shard_cells, SearchCell, ShardSpec};

#[allow(clippy::too_many_arguments)] // a binary's main-loop helper, not API
fn run_workflow(
    engine: &BatchEngine,
    workflow: &str,
    ccrs: &[f64],
    instances: usize,
    config: PisaConfig,
    resume: bool,
    shard: ShardSpec,
    ckpt_override: Option<&str>,
) {
    let schedulers = saga_schedulers::app_specific_schedulers();
    let names: Vec<String> = schedulers.iter().map(|s| s.name().to_string()).collect();
    let n = names.len();

    // one cell grid over every (ccr, ordered pair), shared checkpoint
    let mut cells = Vec::with_capacity(ccrs.len() * (n * n - n));
    for &ccr in ccrs {
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                cells.push(SearchCell::app(
                    workflow,
                    ccr,
                    &names[j],
                    &names[i],
                    cell_config(config, cells.len() as u64),
                ));
            }
        }
    }
    let total = cells.len();
    let cells = shard_cells(cells, shard);
    let base = format!("results/app_pisa_{workflow}_cells.jsonl");
    let ckpt_path = match ckpt_override {
        Some(p) => std::path::PathBuf::from(p),
        None => shard.checkpoint_path(std::path::Path::new(&base)),
    };
    let checkpoint = CellCheckpoint::open(&ckpt_path, resume).expect("open checkpoint");
    if resume && checkpoint.loaded() > 0 {
        eprintln!(
            "resuming: {} cells already in {}",
            checkpoint.loaded(),
            ckpt_path.display()
        );
    }
    let progress = Progress::new(format!("app_pisa/{workflow}"), cells.len());
    let results = engine.run_cells_or_exit(&cells, Some(&progress), Some(&checkpoint));
    if !shard.is_full() {
        // a partial shard can't render the per-CCR matrices; its output is
        // the checkpoint itself
        eprintln!(
            "shard {shard} complete: {} of {total} cells in {} — merge all shards with \
             saga-merge, then render with `app_pisa {workflow} --resume`",
            results.len(),
            ckpt_path.display()
        );
        return;
    }
    let mut results = results.into_iter();

    for (ci, &ccr) in ccrs.iter().enumerate() {
        let app = AppSpecific::new(workflow, ccr).expect("known workflow");

        // --- benchmarking row (traditional approach) ---
        // per-instance derived seeds, generated in parallel, evaluated with
        // pinned tables; order-preserving, so thread-count independent
        let bench_seed = derive_seed(config.seed, 0xB000 + ci as u64);
        let insts: Vec<saga_core::Instance> = engine.map((0..instances).collect(), |k| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(derive_seed(
                bench_seed, k as u64,
            ));
            app.initial_instance(&mut rng)
        });
        let rows = engine.makespans(&schedulers, &insts, None);
        let mut per_sched: Vec<Vec<f64>> = vec![Vec::with_capacity(instances); n];
        for row in &rows {
            for (k, r) in benchmarking::ratios_of(row).into_iter().enumerate() {
                per_sched[k].push(r);
            }
        }
        let bench_row: Vec<f64> = per_sched
            .iter()
            .map(|rs| benchmarking::summarize(rs).max)
            .collect();

        // --- PISA matrix from this CCR's slice of the cell results ---
        let mut ratios = vec![vec![1.0f64; n]; n];
        for (i, row) in ratios.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                if i == j {
                    continue;
                }
                *slot = results.next().expect("one result per cell").ratio;
            }
        }

        // assemble: baseline rows (reverse order like the paper), then the
        // benchmarking row at the bottom
        let mut row_names: Vec<String> = names.iter().rev().cloned().collect();
        row_names.push("Benchmarking".to_string());
        let mut rows: Vec<Vec<f64>> = (0..n).rev().map(|i| ratios[i].clone()).collect();
        rows.push(bench_row);

        println!(
            "{}",
            render::matrix(
                &format!("{workflow} (CCR = {ccr}): PISA worst-case + benchmarking max ratios"),
                &row_names,
                &names,
                &rows,
            )
        );
        let csv = render::matrix_csv(&row_names, &names, &rows);
        let fname = format!("app_pisa_{workflow}_ccr{ccr}.csv");
        let path = write_results_file(&fname, &csv);
        eprintln!("wrote {}", path.display());

        // the Section VII takeaway, checked live: for how many schedulers
        // does PISA expose a worse case than the benchmarking row shows?
        let bench_row = rows.last().unwrap().clone();
        let mut exposed = Vec::new();
        for (j, name) in names.iter().enumerate() {
            let pisa_worst = (0..n).map(|i| ratios[i][j]).fold(0.0, f64::max);
            if pisa_worst > bench_row[j] * 1.05 {
                exposed.push(format!(
                    "{name} ({} vs bench {})",
                    render::cell(pisa_worst),
                    render::cell(bench_row[j])
                ));
            }
        }
        println!(
            "check: PISA exposes worse-than-benchmarking cases for {}/{} schedulers: {}\n",
            exposed.len(),
            n,
            exposed.join(", ")
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workflow = cli::positional(&args).unwrap_or("srasearch").to_string();
    let instances: usize = cli::arg_or(&args, "instances", 15);
    let resume = args.iter().any(|a| a == "--resume");
    let shard = cli::shard_arg(&args);
    let ckpt_override = cli::arg_str(&args, "checkpoint");
    let config = PisaConfig {
        i_max: cli::arg_or(&args, "imax", 300),
        restarts: cli::arg_or(&args, "restarts", 2),
        seed: cli::arg_or(&args, "seed", 0xA551),
        ..PisaConfig::default()
    };
    let ccr_arg: f64 = cli::arg_or(&args, "ccr", 0.0);
    let ccrs: Vec<f64> = if ccr_arg > 0.0 {
        vec![ccr_arg]
    } else {
        saga_datasets::ccr::PAPER_CCRS.to_vec()
    };

    let workflows: Vec<&str> = if workflow == "all" {
        saga_datasets::workflows::WORKFLOW_NAMES.to_vec()
    } else {
        vec![workflow.as_str()]
    };
    if ckpt_override.is_some() && workflows.len() > 1 {
        eprintln!("fatal: --checkpoint only applies to single-workflow runs (per-workflow files)");
        std::process::exit(2);
    }
    let engine = BatchEngine::new();
    for wf in workflows {
        println!("=== Section VII: application-specific PISA for {wf} ===\n");
        run_workflow(
            &engine,
            wf,
            &ccrs,
            instances,
            config,
            resume,
            shard,
            ckpt_override.as_deref(),
        );
    }
}
