//! Regenerates Figs. 10–19 (and Appendix A): application-specific PISA for
//! the scientific workflows, at CCR ∈ {0.2, 0.5, 1, 2, 5}, over the paper's
//! Section VII scheduler subset (CPoP, FastestNode, HEFT, MaxMin, MinMin,
//! WBA). For each CCR the top row is traditional benchmarking (max ratio
//! over in-family instances) and the remaining rows are the worst-case
//! ratios PISA found — the paper's exact figure layout.
//!
//! Usage: `app_pisa [workflow|all] [--instances N] [--imax N] [--restarts R]
//! [--ccr X] [--seed S]`. Default workflow: `srasearch`; defaults trade the
//! paper's CPU-hours for minutes (see EXPERIMENTS.md).

use rayon::prelude::*;
use saga_experiments::{benchmarking, cli, render, write_results_file};
use saga_pisa::annealer::PisaConfig;
use saga_pisa::app_specific::AppSpecific;

fn run_workflow(workflow: &str, ccrs: &[f64], instances: usize, config: PisaConfig) {
    let schedulers = saga_schedulers::app_specific_schedulers();
    let names: Vec<String> = schedulers.iter().map(|s| s.name().to_string()).collect();
    let n = names.len();

    for &ccr in ccrs {
        let app = AppSpecific::new(workflow, ccr).expect("known workflow");

        // --- benchmarking row (traditional approach) ---
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
            config.seed.wrapping_add((ccr * 1000.0) as u64),
        );
        let mut per_sched: Vec<Vec<f64>> = vec![Vec::with_capacity(instances); n];
        for _ in 0..instances {
            let inst = app.initial_instance(&mut rng);
            for (k, r) in benchmarking::instance_ratios(&schedulers, &inst)
                .into_iter()
                .enumerate()
            {
                per_sched[k].push(r);
            }
        }
        let bench_row: Vec<f64> = per_sched
            .iter()
            .map(|rs| benchmarking::summarize(rs).max)
            .collect();

        // --- PISA matrix ---
        let cells: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .collect();
        let results: Vec<((usize, usize), f64)> = cells
            .par_iter()
            .map(|&(i, j)| {
                let cfg = PisaConfig {
                    seed: config
                        .seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((i * n + j) as u64)
                        .wrapping_add((ccr * 7919.0) as u64),
                    ..config
                };
                let res = app.run_pair(&*schedulers[j], &*schedulers[i], cfg);
                ((i, j), res.ratio)
            })
            .collect();
        let mut ratios = vec![vec![1.0f64; n]; n];
        for ((i, j), r) in results {
            ratios[i][j] = r;
        }

        // assemble: baseline rows (reverse order like the paper), then the
        // benchmarking row at the bottom
        let mut row_names: Vec<String> = names.iter().rev().cloned().collect();
        row_names.push("Benchmarking".to_string());
        let mut rows: Vec<Vec<f64>> = (0..n).rev().map(|i| ratios[i].clone()).collect();
        rows.push(bench_row);

        println!(
            "{}",
            render::matrix(
                &format!("{workflow} (CCR = {ccr}): PISA worst-case + benchmarking max ratios"),
                &row_names,
                &names,
                &rows,
            )
        );
        let csv = render::matrix_csv(&row_names, &names, &rows);
        let fname = format!("app_pisa_{workflow}_ccr{ccr}.csv");
        let path = write_results_file(&fname, &csv);
        eprintln!("wrote {}", path.display());

        // the Section VII takeaway, checked live: for how many schedulers
        // does PISA expose a worse case than the benchmarking row shows?
        let bench_row = rows.last().unwrap().clone();
        let mut exposed = Vec::new();
        for (j, name) in names.iter().enumerate() {
            let pisa_worst = (0..n).map(|i| ratios[i][j]).fold(0.0, f64::max);
            if pisa_worst > bench_row[j] * 1.05 {
                exposed.push(format!(
                    "{name} ({} vs bench {})",
                    render::cell(pisa_worst),
                    render::cell(bench_row[j])
                ));
            }
        }
        println!(
            "check: PISA exposes worse-than-benchmarking cases for {}/{} schedulers: {}\n",
            exposed.len(),
            n,
            exposed.join(", ")
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workflow = cli::positional(&args).unwrap_or("srasearch").to_string();
    let instances: usize = cli::arg_or(&args, "instances", 15);
    let config = PisaConfig {
        i_max: cli::arg_or(&args, "imax", 300),
        restarts: cli::arg_or(&args, "restarts", 2),
        seed: cli::arg_or(&args, "seed", 0xA551),
        ..PisaConfig::default()
    };
    let ccr_arg: f64 = cli::arg_or(&args, "ccr", 0.0);
    let ccrs: Vec<f64> = if ccr_arg > 0.0 {
        vec![ccr_arg]
    } else {
        saga_datasets::ccr::PAPER_CCRS.to_vec()
    };

    let workflows: Vec<&str> = if workflow == "all" {
        saga_datasets::workflows::WORKFLOW_NAMES.to_vec()
    } else {
        vec![workflow.as_str()]
    };
    for wf in workflows {
        println!("=== Section VII: application-specific PISA for {wf} ===\n");
        run_workflow(wf, &ccrs, instances, config);
    }
}
