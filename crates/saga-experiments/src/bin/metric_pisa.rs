//! Adversarial comparison under alternative metrics (energy, rental cost,
//! throughput) — the paper's "other performance metrics" future-work item.
//! Runs the generic annealer with each objective for a panel of scheduler
//! pairs and prints the worst-case metric ratios side by side.
//!
//! Runs on the batch engine's `SearchCell` runtime: one `Metric` cell per
//! (pair, objective), sharded across workers with pooled contexts and
//! per-cell derived seeds — output is bit-identical for any
//! `RAYON_NUM_THREADS` (CI diffs the CSV between 1- and 4-worker runs) —
//! with a JSONL checkpoint (`--resume`).
//!
//! Usage: `metric_pisa [--imax N] [--restarts R] [--seed S] [--quick]
//! [--resume] [--shard i/N] [--checkpoint PATH]`. `--quick` is the CI smoke
//! budget (`imax 60`, `restarts 1`). With `--shard i/N` only that slice of
//! the cells runs, against a per-shard checkpoint, and rendering is
//! skipped; `saga-merge` the shards and re-run with `--resume` to render.

use saga_experiments::engine::{BatchEngine, CellCheckpoint, Progress};
use saga_experiments::{cli, render, write_results_file};
use saga_pisa::metric::Objective;
use saga_pisa::{cell_config, shard_cells, PisaConfig, SearchCell};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let resume = args.iter().any(|a| a == "--resume");
    let shard = cli::shard_arg(&args);
    let ckpt_path = cli::checkpoint_path(&args, shard, "results/metric_pisa_cells.jsonl");
    let config = PisaConfig {
        i_max: cli::arg_or(&args, "imax", if quick { 60 } else { 400 }),
        restarts: cli::arg_or(&args, "restarts", if quick { 1 } else { 3 }),
        seed: cli::arg_or(&args, "seed", 0x3E71C),
        ..PisaConfig::default()
    };
    let objectives = [
        Objective::Makespan,
        Objective::Energy {
            idle_fraction: 0.2,
            comm_energy_per_unit: 1.0,
        },
        Objective::RentalCost,
        Objective::Throughput,
    ];
    let pairs = [
        ("HEFT", "FastestNode"),
        ("FastestNode", "HEFT"),
        ("CPoP", "HEFT"),
        ("MinMin", "MaxMin"),
    ];

    // cells in (pair-major, objective-minor) order so each output row is a
    // contiguous slice of the results
    let mut cells = Vec::with_capacity(pairs.len() * objectives.len());
    for (a, b) in pairs {
        for obj in objectives {
            cells.push(SearchCell::metric(
                obj,
                a,
                b,
                cell_config(config, cells.len() as u64),
            ));
        }
    }
    let total = cells.len();
    let cells = shard_cells(cells, shard);
    let checkpoint = CellCheckpoint::open(&ckpt_path, resume).expect("open checkpoint");
    if resume && checkpoint.loaded() > 0 {
        eprintln!(
            "resuming: {} cells already in {}",
            checkpoint.loaded(),
            ckpt_path.display()
        );
    }
    let engine = BatchEngine::new();
    let progress = Progress::new("metric_pisa", cells.len());
    let results = engine.run_cells_or_exit(&cells, Some(&progress), Some(&checkpoint));
    if !shard.is_full() {
        // a partial shard can't render the matrix; its output is the
        // checkpoint itself
        eprintln!(
            "shard {shard} complete: {} of {total} cells in {} — merge all shards with \
             saga-merge, then render with `metric_pisa --resume`",
            results.len(),
            ckpt_path.display()
        );
        return;
    }

    let col_names: Vec<String> = objectives.iter().map(|o| o.name().to_string()).collect();
    let row_names: Vec<String> = pairs.iter().map(|(a, b)| format!("{a} vs {b}")).collect();
    let rows: Vec<Vec<f64>> = results
        .chunks(objectives.len())
        .map(|chunk| chunk.iter().map(|r| r.ratio).collect())
        .collect();
    println!(
        "{}",
        render::matrix(
            "Adversarial worst-case ratios by metric (pair rows, metric columns)",
            &row_names,
            &col_names,
            &rows,
        )
    );
    let path = write_results_file(
        "metric_pisa.csv",
        &render::matrix_csv(&row_names, &col_names, &rows),
    );
    eprintln!("wrote {}", path.display());
    println!(
        "takeaway: weaknesses are metric-dependent — a scheduler can be\n\
         makespan-competitive yet adversarially bad on energy or cost."
    );
}
