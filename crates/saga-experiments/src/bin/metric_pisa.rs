//! Adversarial comparison under alternative metrics (energy, rental cost,
//! throughput) — the paper's "other performance metrics" future-work item.
//! Runs the generic annealer with each objective for a panel of scheduler
//! pairs and prints the worst-case metric ratios side by side.
//!
//! Usage: `metric_pisa [--imax N] [--restarts R] [--seed S]`.

use saga_experiments::{cli, render, write_results_file};
use saga_pisa::metric::{metric_search, Objective};
use saga_pisa::perturb::{initial_instance, GeneralPerturber};
use saga_pisa::PisaConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = PisaConfig {
        i_max: cli::arg_or(&args, "imax", 400),
        restarts: cli::arg_or(&args, "restarts", 3),
        seed: cli::arg_or(&args, "seed", 0x3E71C),
        ..PisaConfig::default()
    };
    let objectives = [
        Objective::Makespan,
        Objective::Energy {
            idle_fraction: 0.2,
            comm_energy_per_unit: 1.0,
        },
        Objective::RentalCost,
        Objective::Throughput,
    ];
    let pairs = [
        ("HEFT", "FastestNode"),
        ("FastestNode", "HEFT"),
        ("CPoP", "HEFT"),
        ("MinMin", "MaxMin"),
    ];

    let col_names: Vec<String> = objectives.iter().map(|o| o.name().to_string()).collect();
    let mut row_names = Vec::new();
    let mut rows = Vec::new();
    for (a, b) in pairs {
        let target = saga_schedulers::by_name(a).unwrap();
        let baseline = saga_schedulers::by_name(b).unwrap();
        let perturber = GeneralPerturber::default();
        let mut row = Vec::new();
        for (oi, obj) in objectives.iter().enumerate() {
            let cfg = PisaConfig {
                seed: config.seed.wrapping_add(oi as u64 * 7919),
                ..config
            };
            let res = metric_search(*obj, &*target, &*baseline, &perturber, cfg, &|rng| {
                initial_instance(rng)
            });
            row.push(res.ratio);
        }
        row_names.push(format!("{a} vs {b}"));
        rows.push(row);
    }
    println!(
        "{}",
        render::matrix(
            "Adversarial worst-case ratios by metric (pair rows, metric columns)",
            &row_names,
            &col_names,
            &rows,
        )
    );
    let path = write_results_file(
        "metric_pisa.csv",
        &render::matrix_csv(&row_names, &col_names, &rows),
    );
    eprintln!("wrote {}", path.display());
    println!(
        "takeaway: weaknesses are metric-dependent — a scheduler can be\n\
         makespan-competitive yet adversarially bad on energy or cost."
    );
}
