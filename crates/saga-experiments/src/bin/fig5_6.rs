//! Regenerates Figs. 5 and 6: the HEFT-vs-CPoP case studies. Runs PISA in
//! both directions and prints the found instances (task graph, network,
//! both Gantt charts) — the raw material of the paper's Section VI-B
//! analysis.
//!
//! Usage: `fig5_6 [--imax N] [--restarts R] [--seed S]`.

use saga_core::gantt;
use saga_experiments::{cli, write_results_file};
use saga_pisa::perturb::initial_instance;
use saga_pisa::{GeneralPerturber, Pisa, PisaConfig};
use saga_schedulers::{Cpop, Heft, Scheduler};

fn case(target: &dyn Scheduler, baseline: &dyn Scheduler, config: PisaConfig, file: &str) {
    let perturber = GeneralPerturber::default();
    let pisa = Pisa {
        target,
        baseline,
        perturber: &perturber,
        config,
    };
    let res = pisa.run(&|rng| initial_instance(rng));
    println!(
        "== {} vs {}: worst ratio {:.3} (initial {:.3}, {} evaluations) ==",
        target.name(),
        baseline.name(),
        res.ratio,
        res.initial_ratio,
        res.evaluations
    );
    let inst = &res.instance;
    println!(
        "instance: {} tasks, {} deps, {} nodes",
        inst.graph.task_count(),
        inst.graph.dependency_count(),
        inst.network.node_count()
    );
    for t in inst.graph.tasks() {
        println!("  task {t} cost {:.3}", inst.graph.cost(t));
    }
    for (a, b, c) in inst.graph.dependencies() {
        println!("  dep {a} -> {b} size {c:.3}");
    }
    for v in inst.network.nodes() {
        println!("  node {v} speed {:.3}", inst.network.speed(v));
    }
    for u in inst.network.nodes() {
        for v in inst.network.nodes() {
            if u < v {
                println!("  link {u}-{v} strength {:.3}", inst.network.link(u, v));
            }
        }
    }
    for s in [target, baseline] {
        let sched = s.schedule(inst);
        sched.verify(inst).expect("valid");
        println!("{} makespan {:.3}", s.name(), sched.makespan());
        println!("{}", gantt::render(inst, &sched, 60));
    }
    let path = write_results_file(file, &inst.to_json());
    eprintln!("witness written to {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = PisaConfig {
        i_max: cli::arg_or(&args, "imax", 1000),
        restarts: cli::arg_or(&args, "restarts", 5),
        seed: cli::arg_or(&args, "seed", 0xF165),
        ..PisaConfig::default()
    };
    println!("Figs. 5-6: adversarial case studies between HEFT and CPoP\n");
    // Fig. 5: HEFT performs worse than CPoP (paper found 1.55x)
    case(&Heft, &Cpop, config, "fig5_heft_vs_cpop.json");
    // Fig. 6: CPoP performs worse than HEFT (paper found 2.83x)
    case(&Cpop, &Heft, config, "fig6_cpop_vs_heft.json");
}
