//! # saga-experiments
//!
//! Regeneration harnesses for every table and figure of the PISA paper.
//! Each binary prints the same rows/series the paper reports (text heatmaps
//! instead of matplotlib) and writes CSVs under `results/`:
//!
//! | binary     | reproduces                                               |
//! |------------|----------------------------------------------------------|
//! | `table1`   | Table I — scheduler inventory                            |
//! | `table2`   | Table II — dataset inventory (with sampled statistics)   |
//! | `fig2`     | Fig. 2 — benchmarking 15 schedulers on 16 datasets       |
//! | `fig3`     | Fig. 3 — the HEFT/CPoP network-alteration example        |
//! | `fig4`     | Fig. 4 — PISA pairwise heatmap                           |
//! | `fig5_6`   | Figs. 5–6 — HEFT vs CPoP adversarial case studies        |
//! | `fig7`     | Fig. 7 — family where HEFT performs poorly               |
//! | `fig8`     | Fig. 8 — family where CPoP performs poorly               |
//! | `app_pisa` | Figs. 10–19 — application-specific PISA per workflow     |
//!
//! Budgets are CLI-tunable (`--instances`, `--imax`, `--restarts`) because
//! the paper's full budgets take CPU-hours; defaults are sized to finish in
//! minutes while preserving every qualitative claim. EXPERIMENTS.md records
//! paper-vs-measured values.

use saga_core::Instance;
use saga_schedulers::Scheduler;

pub mod benchmarking;
pub mod cli;
pub mod engine;
pub mod merge;
pub mod render;

/// Evaluates every scheduler on one instance and returns the makespans in
/// scheduler order. One scheduling context is reused across the sweep.
pub fn makespans(schedulers: &[Box<dyn Scheduler>], inst: &Instance) -> Vec<f64> {
    let mut ctx = saga_core::SchedContext::new();
    schedulers
        .iter()
        .map(|s| s.makespan_into(inst, &mut ctx))
        .collect()
}

/// Writes `content` to `results/<name>` (creating the directory), returning
/// the path. The fallible variant for callers that can report the error in
/// their own way; the binaries use [`write_results_file`].
pub fn try_write_results_file(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Writes `content` to `results/<name>` (creating the directory), returning
/// the path. Failures are fatal — experiments must not silently drop data —
/// but exit cleanly with the path and cause instead of a panic backtrace.
pub fn write_results_file(name: &str, content: &str) -> std::path::PathBuf {
    try_write_results_file(name, content).unwrap_or_else(|e| {
        eprintln!("fatal: cannot write results/{name}: {e}");
        std::process::exit(1);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_schedulers::benchmark_schedulers;

    #[test]
    fn makespans_align_with_scheduler_order() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let inst = saga_datasets::random_graphs::sample_chains(&mut rng);
        let scheds = benchmark_schedulers();
        let ms = makespans(&scheds, &inst);
        assert_eq!(ms.len(), scheds.len());
        assert!(ms.iter().all(|&m| m > 0.0));
    }
}
