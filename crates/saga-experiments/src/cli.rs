//! Minimal argument parsing shared by the experiment binaries (no external
//! CLI crate needed for `--flag value` pairs).

/// Returns the value following `--name`, parsed, or `default`.
pub fn arg_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    let flag = format!("--{name}");
    args.windows(2)
        .find(|w| w[0] == flag)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Returns the raw string following `--name`, if present.
pub fn arg_str(args: &[String], name: &str) -> Option<String> {
    let flag = format!("--{name}");
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

/// Parses `--shard i/N` into a [`ShardSpec`](saga_pisa::ShardSpec)
/// (defaulting to the full grid when absent), exiting with a usage message
/// on a malformed spec — a bad shard silently treated as full would run N×
/// the intended work and collide with its siblings' checkpoints.
pub fn shard_arg(args: &[String]) -> saga_pisa::ShardSpec {
    match arg_str(args, "shard") {
        None => saga_pisa::ShardSpec::FULL,
        Some(spec) => saga_pisa::ShardSpec::parse(&spec).unwrap_or_else(|e| {
            eprintln!("fatal: {e} (expected --shard i/N, e.g. --shard 0/4)");
            std::process::exit(2);
        }),
    }
}

/// The checkpoint path for this run: `--checkpoint PATH` verbatim if given,
/// otherwise `base` with the shard's `.shard{i}of{N}` suffix (no suffix for
/// a full run — 1-host runs keep their historical filenames).
pub fn checkpoint_path(
    args: &[String],
    shard: saga_pisa::ShardSpec,
    base: &str,
) -> std::path::PathBuf {
    match arg_str(args, "checkpoint") {
        Some(p) => std::path::PathBuf::from(p),
        None => shard.checkpoint_path(std::path::Path::new(base)),
    }
}

/// Returns the first positional (non-flag) argument, if any.
pub fn positional(args: &[String]) -> Option<&str> {
    let mut skip = false;
    for a in args.iter().skip(1) {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flag_values() {
        let args = v(&["prog", "--instances", "42", "--imax", "100"]);
        assert_eq!(arg_or(&args, "instances", 0usize), 42);
        assert_eq!(arg_or(&args, "imax", 0usize), 100);
        assert_eq!(arg_or(&args, "missing", 7u64), 7);
    }

    #[test]
    fn finds_positional_between_flags() {
        let args = v(&["prog", "--imax", "100", "blast", "--seed", "1"]);
        assert_eq!(positional(&args), Some("blast"));
        assert_eq!(positional(&v(&["prog", "--imax", "9"])), None);
    }

    #[test]
    fn unparseable_value_falls_back() {
        let args = v(&["prog", "--instances", "many"]);
        assert_eq!(arg_or(&args, "instances", 5usize), 5);
    }

    #[test]
    fn shard_defaults_to_full_and_parses_specs() {
        assert!(shard_arg(&v(&["prog"])).is_full());
        let s = shard_arg(&v(&["prog", "--shard", "1/4"]));
        assert_eq!((s.index, s.count), (1, 4));
    }

    #[test]
    fn checkpoint_path_prefers_explicit_flag() {
        let shard = saga_pisa::ShardSpec { index: 1, count: 2 };
        assert_eq!(
            checkpoint_path(&v(&["prog"]), shard, "results/x_cells.jsonl"),
            std::path::Path::new("results/x_cells.shard1of2.jsonl")
        );
        assert_eq!(
            checkpoint_path(
                &v(&["prog", "--checkpoint", "/tmp/mine.jsonl"]),
                shard,
                "results/x_cells.jsonl"
            ),
            std::path::Path::new("/tmp/mine.jsonl")
        );
    }
}
