//! Minimal argument parsing shared by the experiment binaries (no external
//! CLI crate needed for `--flag value` pairs).

/// Returns the value following `--name`, parsed, or `default`.
pub fn arg_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    let flag = format!("--{name}");
    args.windows(2)
        .find(|w| w[0] == flag)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Returns the first positional (non-flag) argument, if any.
pub fn positional(args: &[String]) -> Option<&str> {
    let mut skip = false;
    for a in args.iter().skip(1) {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flag_values() {
        let args = v(&["prog", "--instances", "42", "--imax", "100"]);
        assert_eq!(arg_or(&args, "instances", 0usize), 42);
        assert_eq!(arg_or(&args, "imax", 0usize), 100);
        assert_eq!(arg_or(&args, "missing", 7u64), 7);
    }

    #[test]
    fn finds_positional_between_flags() {
        let args = v(&["prog", "--imax", "100", "blast", "--seed", "1"]);
        assert_eq!(positional(&args), Some("blast"));
        assert_eq!(positional(&v(&["prog", "--imax", "9"])), None);
    }

    #[test]
    fn unparseable_value_falls_back() {
        let args = v(&["prog", "--instances", "many"]);
        assert_eq!(arg_or(&args, "instances", 5usize), 5);
    }
}
