//! Scientific-workflow dataset generators (9 of the 16 Table II rows).
//!
//! The paper builds these with the WfCommons synthetic generator fitted to
//! Pegasus/Makeflow execution traces. Offline we reproduce each workflow's
//! *structure* (the rigid shapes of the paper's Fig. 9 and the published
//! workflow galleries) and model the weights as clipped gaussians around
//! per-stage scale constants, bounded by per-workflow observed ranges — the
//! quantities the application-specific PISA of Section VII needs (it scales
//! its perturbations to the min/max runtime and I/O observed per workflow).
//!
//! Networks are "Chameleon-cloud inspired": a handful of near-homogeneous
//! machines whose speeds are sampled from a fitted distribution, with
//! **infinite** link strength because Chameleon uses a shared filesystem
//! (communication absorbed into computation), exactly as in the paper.

use rand::rngs::StdRng;
use rand::Rng;
use saga_core::dist::{clipped_gaussian, uniform_usize};
use saga_core::{Instance, Network, TaskGraph, TaskId};

/// Observed-range constants for one workflow application (the role played by
/// WfCommons trace data in the paper).
#[derive(Debug, Clone, Copy)]
pub struct WorkflowSpec {
    /// Dataset name.
    pub name: &'static str,
    /// (min, max) task runtime in reference-machine seconds.
    pub runtime_range: (f64, f64),
    /// (min, max) task I/O size in MB.
    pub io_range: (f64, f64),
    /// (min, max) machine speedup factor for the Chameleon-style network.
    pub speed_range: (f64, f64),
}

/// Per-workflow specs. Scale constants are modeled (see module docs), chosen
/// so relative stage weights match the published workflow profiles.
pub fn spec(name: &str) -> Option<WorkflowSpec> {
    let s = match name {
        "blast" => WorkflowSpec {
            name: "blast",
            runtime_range: (5.0, 600.0),
            io_range: (0.1, 200.0),
            speed_range: (0.8, 1.4),
        },
        "bwa" => WorkflowSpec {
            name: "bwa",
            runtime_range: (2.0, 400.0),
            io_range: (0.1, 300.0),
            speed_range: (0.8, 1.4),
        },
        "cycles" => WorkflowSpec {
            name: "cycles",
            runtime_range: (1.0, 300.0),
            io_range: (0.05, 50.0),
            speed_range: (0.8, 1.4),
        },
        "epigenomics" => WorkflowSpec {
            name: "epigenomics",
            runtime_range: (2.0, 800.0),
            io_range: (0.5, 400.0),
            speed_range: (0.8, 1.4),
        },
        "genome" => WorkflowSpec {
            name: "genome",
            runtime_range: (10.0, 1200.0),
            io_range: (1.0, 500.0),
            speed_range: (0.8, 1.4),
        },
        "montage" => WorkflowSpec {
            name: "montage",
            runtime_range: (1.0, 300.0),
            io_range: (0.5, 150.0),
            speed_range: (0.8, 1.4),
        },
        "seismology" => WorkflowSpec {
            name: "seismology",
            runtime_range: (1.0, 120.0),
            io_range: (0.05, 30.0),
            speed_range: (0.8, 1.4),
        },
        "soykb" => WorkflowSpec {
            name: "soykb",
            runtime_range: (5.0, 900.0),
            io_range: (0.5, 350.0),
            speed_range: (0.8, 1.4),
        },
        "srasearch" => WorkflowSpec {
            name: "srasearch",
            runtime_range: (2.0, 500.0),
            io_range: (0.2, 250.0),
            speed_range: (0.8, 1.4),
        },
        _ => return None,
    };
    Some(s)
}

/// Names of the nine scientific workflows, alphabetical.
pub const WORKFLOW_NAMES: [&str; 9] = [
    "blast",
    "bwa",
    "cycles",
    "epigenomics",
    "genome",
    "montage",
    "seismology",
    "soykb",
    "srasearch",
];

fn cost(rng: &mut StdRng, scale: f64, spec: &WorkflowSpec) -> f64 {
    clipped_gaussian(
        rng,
        scale,
        scale / 3.0,
        spec.runtime_range.0,
        spec.runtime_range.1,
    )
}

fn io(rng: &mut StdRng, scale: f64, spec: &WorkflowSpec) -> f64 {
    clipped_gaussian(rng, scale, scale / 3.0, spec.io_range.0, spec.io_range.1)
}

/// Samples a Chameleon-cloud-style network: 4–10 machines, speeds from the
/// fitted (clipped gaussian) distribution, infinite link strength (shared
/// filesystem).
pub fn sample_chameleon_network(rng: &mut StdRng, spec: &WorkflowSpec) -> Network {
    let n = uniform_usize(rng, 4, 10);
    let (lo, hi) = spec.speed_range;
    let mid = 0.5 * (lo + hi);
    let speeds: Vec<f64> = (0..n)
        .map(|_| clipped_gaussian(rng, mid, (hi - lo) / 6.0, lo, hi))
        .collect();
    Network::complete(&speeds, f64::INFINITY)
}

/// blast (the paper's Fig. 9b): `split -> n x blastall -> {cat_blast, cat}`
/// — every search task feeds both merge tasks.
pub fn blast_graph(rng: &mut StdRng, n: usize) -> TaskGraph {
    let sp = spec("blast").unwrap();
    let mut g = TaskGraph::new();
    let split = g.add_task("split_fasta", cost(rng, 30.0, &sp));
    let mut searches = Vec::with_capacity(n);
    for i in 0..n {
        let t = g.add_task(format!("blastall_{i}"), cost(rng, 300.0, &sp));
        g.add_dependency(split, t, io(rng, 5.0, &sp)).unwrap();
        searches.push(t);
    }
    let cat_blast = g.add_task("cat_blast", cost(rng, 20.0, &sp));
    let cat = g.add_task("cat", cost(rng, 10.0, &sp));
    for &s in &searches {
        g.add_dependency(s, cat_blast, io(rng, 20.0, &sp)).unwrap();
        g.add_dependency(s, cat, io(rng, 2.0, &sp)).unwrap();
    }
    g
}

/// bwa: `fastq_reduce -> n x bwa_align -> cat_bwa -> final sort`.
pub fn bwa_graph(rng: &mut StdRng, n: usize) -> TaskGraph {
    let sp = spec("bwa").unwrap();
    let mut g = TaskGraph::new();
    let reduce = g.add_task("fastq_reduce", cost(rng, 40.0, &sp));
    let cat = g.add_task("cat_bwa", cost(rng, 30.0, &sp));
    for i in 0..n {
        let t = g.add_task(format!("bwa_{i}"), cost(rng, 150.0, &sp));
        g.add_dependency(reduce, t, io(rng, 10.0, &sp)).unwrap();
        g.add_dependency(t, cat, io(rng, 15.0, &sp)).unwrap();
    }
    let sort = g.add_task("sort_sam", cost(rng, 60.0, &sp));
    g.add_dependency(cat, sort, io(rng, 40.0, &sp)).unwrap();
    g
}

/// cycles (agroecosystem): `n` independent crop simulations, each
/// `cycles -> fpi_summary`, all feeding one `cycles_plots` aggregate.
pub fn cycles_graph(rng: &mut StdRng, n: usize) -> TaskGraph {
    let sp = spec("cycles").unwrap();
    let mut g = TaskGraph::new();
    let plots = g.add_task("cycles_plots", cost(rng, 45.0, &sp));
    for i in 0..n {
        let sim = g.add_task(format!("cycles_{i}"), cost(rng, 180.0, &sp));
        let sum = g.add_task(format!("fpi_summary_{i}"), cost(rng, 40.0, &sp));
        g.add_dependency(sim, sum, io(rng, 8.0, &sp)).unwrap();
        g.add_dependency(sum, plots, io(rng, 2.0, &sp)).unwrap();
    }
    g
}

/// epigenomics: `m` sequencing lanes, each a rigid 4-stage pipeline
/// (`split -> filter -> map -> merge_lane`), joined by a global
/// `merge -> index` tail.
pub fn epigenomics_graph(rng: &mut StdRng, lanes: usize, fanout: usize) -> TaskGraph {
    let sp = spec("epigenomics").unwrap();
    let mut g = TaskGraph::new();
    let merge = g.add_task("merge_all", cost(rng, 200.0, &sp));
    for l in 0..lanes {
        let split = g.add_task(format!("split_{l}"), cost(rng, 30.0, &sp));
        let lane_merge = g.add_task(format!("merge_lane_{l}"), cost(rng, 60.0, &sp));
        for f in 0..fanout {
            let filt = g.add_task(format!("filter_{l}_{f}"), cost(rng, 90.0, &sp));
            let map = g.add_task(format!("map_{l}_{f}"), cost(rng, 300.0, &sp));
            g.add_dependency(split, filt, io(rng, 20.0, &sp)).unwrap();
            g.add_dependency(filt, map, io(rng, 15.0, &sp)).unwrap();
            g.add_dependency(map, lane_merge, io(rng, 25.0, &sp))
                .unwrap();
        }
        g.add_dependency(lane_merge, merge, io(rng, 50.0, &sp))
            .unwrap();
    }
    let index = g.add_task("index", cost(rng, 80.0, &sp));
    g.add_dependency(merge, index, io(rng, 60.0, &sp)).unwrap();
    g
}

/// 1000genome: `n` per-individual tasks feed two `sifting` reducers, whose
/// outputs drive per-population `merge -> frequency` pairs.
pub fn genome_graph(rng: &mut StdRng, individuals: usize, populations: usize) -> TaskGraph {
    let sp = spec("genome").unwrap();
    let mut g = TaskGraph::new();
    let mut indiv = Vec::with_capacity(individuals);
    for i in 0..individuals {
        indiv.push(g.add_task(format!("individuals_{i}"), cost(rng, 500.0, &sp)));
    }
    let sift_a = g.add_task("sifting_a", cost(rng, 60.0, &sp));
    let sift_b = g.add_task("sifting_b", cost(rng, 60.0, &sp));
    for &t in &indiv {
        g.add_dependency(t, sift_a, io(rng, 30.0, &sp)).unwrap();
        g.add_dependency(t, sift_b, io(rng, 30.0, &sp)).unwrap();
    }
    for p in 0..populations {
        let merge = g.add_task(format!("individuals_merge_{p}"), cost(rng, 150.0, &sp));
        let freq = g.add_task(format!("frequency_{p}"), cost(rng, 90.0, &sp));
        g.add_dependency(sift_a, merge, io(rng, 40.0, &sp)).unwrap();
        g.add_dependency(sift_b, merge, io(rng, 40.0, &sp)).unwrap();
        g.add_dependency(merge, freq, io(rng, 20.0, &sp)).unwrap();
    }
    g
}

/// montage: the classic layered mosaic pipeline —
/// `n x mProject -> ~1.5n x mDiffFit -> mConcatFit -> mBgModel ->
/// n x mBackground -> mImgtbl -> mAdd -> mShrink -> mJPEG`.
pub fn montage_graph(rng: &mut StdRng, n: usize) -> TaskGraph {
    let sp = spec("montage").unwrap();
    let mut g = TaskGraph::new();
    let projects: Vec<TaskId> = (0..n)
        .map(|i| g.add_task(format!("mProject_{i}"), cost(rng, 60.0, &sp)))
        .collect();
    // overlaps between consecutive projections (ring-ish, ~n pairs)
    let concat = g.add_task("mConcatFit", cost(rng, 30.0, &sp));
    for i in 0..n {
        let d = g.add_task(format!("mDiffFit_{i}"), cost(rng, 10.0, &sp));
        g.add_dependency(projects[i], d, io(rng, 10.0, &sp))
            .unwrap();
        g.add_dependency(projects[(i + 1) % n], d, io(rng, 10.0, &sp))
            .unwrap();
        g.add_dependency(d, concat, io(rng, 1.0, &sp)).unwrap();
    }
    let bgmodel = g.add_task("mBgModel", cost(rng, 60.0, &sp));
    g.add_dependency(concat, bgmodel, io(rng, 1.0, &sp))
        .unwrap();
    let imgtbl = g.add_task("mImgtbl", cost(rng, 20.0, &sp));
    for (i, &p) in projects.iter().enumerate() {
        let b = g.add_task(format!("mBackground_{i}"), cost(rng, 10.0, &sp));
        g.add_dependency(p, b, io(rng, 15.0, &sp)).unwrap();
        g.add_dependency(bgmodel, b, io(rng, 1.0, &sp)).unwrap();
        g.add_dependency(b, imgtbl, io(rng, 15.0, &sp)).unwrap();
    }
    let madd = g.add_task("mAdd", cost(rng, 120.0, &sp));
    g.add_dependency(imgtbl, madd, io(rng, 30.0, &sp)).unwrap();
    let shrink = g.add_task("mShrink", cost(rng, 30.0, &sp));
    g.add_dependency(madd, shrink, io(rng, 40.0, &sp)).unwrap();
    let jpeg = g.add_task("mJPEG", cost(rng, 10.0, &sp));
    g.add_dependency(shrink, jpeg, io(rng, 5.0, &sp)).unwrap();
    g
}

/// seismology: `n` parallel deconvolutions feeding a single wrapper — the
/// widest, shallowest workflow in the set.
pub fn seismology_graph(rng: &mut StdRng, n: usize) -> TaskGraph {
    let sp = spec("seismology").unwrap();
    let mut g = TaskGraph::new();
    let wrapper = g.add_task("sift_misfit", cost(rng, 20.0, &sp));
    for i in 0..n {
        let t = g.add_task(format!("sG1IterDecon_{i}"), cost(rng, 30.0, &sp));
        g.add_dependency(t, wrapper, io(rng, 1.0, &sp)).unwrap();
    }
    g
}

/// soykb: per-sample `align -> sort -> dedup -> realign` pipelines, a
/// `combine`, then two parallel `select -> filter` chains merged by
/// `merge_gcvf`.
pub fn soykb_graph(rng: &mut StdRng, samples: usize) -> TaskGraph {
    let sp = spec("soykb").unwrap();
    let mut g = TaskGraph::new();
    let combine = g.add_task("combine_variants", cost(rng, 180.0, &sp));
    for s in 0..samples {
        let align = g.add_task(format!("align_{s}"), cost(rng, 240.0, &sp));
        let sort = g.add_task(format!("sort_{s}"), cost(rng, 60.0, &sp));
        let dedup = g.add_task(format!("dedup_{s}"), cost(rng, 45.0, &sp));
        let realign = g.add_task(format!("realign_{s}"), cost(rng, 120.0, &sp));
        g.add_dependency(align, sort, io(rng, 40.0, &sp)).unwrap();
        g.add_dependency(sort, dedup, io(rng, 35.0, &sp)).unwrap();
        g.add_dependency(dedup, realign, io(rng, 30.0, &sp))
            .unwrap();
        g.add_dependency(realign, combine, io(rng, 25.0, &sp))
            .unwrap();
    }
    let merge = g.add_task("merge_gcvf", cost(rng, 60.0, &sp));
    for kind in ["snp", "indel"] {
        let select = g.add_task(format!("select_{kind}"), cost(rng, 60.0, &sp));
        let filter = g.add_task(format!("filter_{kind}"), cost(rng, 30.0, &sp));
        g.add_dependency(combine, select, io(rng, 20.0, &sp))
            .unwrap();
        g.add_dependency(select, filter, io(rng, 10.0, &sp))
            .unwrap();
        g.add_dependency(filter, merge, io(rng, 5.0, &sp)).unwrap();
    }
    g
}

/// srasearch (the paper's Fig. 9a): `n` branches of two parallel prefetch
/// tasks feeding a `fasterq_dump -> srasearch` chain, all collected by two
/// aggregators that join into one final task.
pub fn srasearch_graph(rng: &mut StdRng, n: usize) -> TaskGraph {
    let sp = spec("srasearch").unwrap();
    let mut g = TaskGraph::new();
    let t0 = g.add_task("ref_download", cost(rng, 30.0, &sp));
    let mut tails = Vec::with_capacity(n);
    for i in 0..n {
        let pre_a = g.add_task(format!("prefetch_a_{i}"), cost(rng, 60.0, &sp));
        let pre_b = g.add_task(format!("prefetch_b_{i}"), cost(rng, 60.0, &sp));
        let dump = g.add_task(format!("fasterq_dump_{i}"), cost(rng, 120.0, &sp));
        let search = g.add_task(format!("srasearch_{i}"), cost(rng, 240.0, &sp));
        g.add_dependency(t0, pre_a, io(rng, 2.0, &sp)).unwrap();
        g.add_dependency(t0, pre_b, io(rng, 2.0, &sp)).unwrap();
        g.add_dependency(pre_a, dump, io(rng, 30.0, &sp)).unwrap();
        g.add_dependency(pre_b, dump, io(rng, 30.0, &sp)).unwrap();
        g.add_dependency(dump, search, io(rng, 50.0, &sp)).unwrap();
        tails.push(search);
    }
    let agg_a = g.add_task("merge_hits", cost(rng, 30.0, &sp));
    let agg_b = g.add_task("merge_stats", cost(rng, 20.0, &sp));
    for &t in &tails {
        g.add_dependency(t, agg_a, io(rng, 10.0, &sp)).unwrap();
        g.add_dependency(t, agg_b, io(rng, 3.0, &sp)).unwrap();
    }
    let fin = g.add_task("report", cost(rng, 10.0, &sp));
    g.add_dependency(agg_a, fin, io(rng, 5.0, &sp)).unwrap();
    g.add_dependency(agg_b, fin, io(rng, 2.0, &sp)).unwrap();
    g
}

/// Builds a random-size task graph for the named workflow (the knob the
/// paper's Fig. 9 caption calls "the number of tasks may vary").
pub fn build_graph(name: &str, rng: &mut StdRng) -> TaskGraph {
    match name {
        "blast" => {
            let n = uniform_usize(rng, 8, 24);
            blast_graph(rng, n)
        }
        "bwa" => {
            let n = uniform_usize(rng, 8, 24);
            bwa_graph(rng, n)
        }
        "cycles" => {
            let n = uniform_usize(rng, 6, 16);
            cycles_graph(rng, n)
        }
        "epigenomics" => {
            let lanes = uniform_usize(rng, 2, 4);
            let fanout = uniform_usize(rng, 3, 6);
            epigenomics_graph(rng, lanes, fanout)
        }
        "genome" => {
            let individuals = uniform_usize(rng, 6, 14);
            let populations = uniform_usize(rng, 2, 4);
            genome_graph(rng, individuals, populations)
        }
        "montage" => {
            let n = uniform_usize(rng, 6, 14);
            montage_graph(rng, n)
        }
        "seismology" => {
            let n = uniform_usize(rng, 10, 40);
            seismology_graph(rng, n)
        }
        "soykb" => {
            let n = uniform_usize(rng, 4, 10);
            soykb_graph(rng, n)
        }
        "srasearch" => {
            let n = uniform_usize(rng, 4, 10);
            srasearch_graph(rng, n)
        }
        _ => panic!("unknown workflow {name}"),
    }
}

fn sample(name: &str, rng: &mut StdRng) -> Instance {
    let sp = spec(name).expect("known workflow");
    let g = build_graph(name, rng);
    Instance::new(sample_chameleon_network(rng, &sp), g)
}

/// Table II `blast` row.
pub fn sample_blast(rng: &mut StdRng) -> Instance {
    sample("blast", rng)
}
/// Table II `bwa` row.
pub fn sample_bwa(rng: &mut StdRng) -> Instance {
    sample("bwa", rng)
}
/// Table II `cycles` row.
pub fn sample_cycles(rng: &mut StdRng) -> Instance {
    sample("cycles", rng)
}
/// Table II `epigenomics` row.
pub fn sample_epigenomics(rng: &mut StdRng) -> Instance {
    sample("epigenomics", rng)
}
/// Table II `genome` row.
pub fn sample_genome(rng: &mut StdRng) -> Instance {
    sample("genome", rng)
}
/// Table II `montage` row.
pub fn sample_montage(rng: &mut StdRng) -> Instance {
    sample("montage", rng)
}
/// Table II `seismology` row.
pub fn sample_seismology(rng: &mut StdRng) -> Instance {
    sample("seismology", rng)
}
/// Table II `soykb` row.
pub fn sample_soykb(rng: &mut StdRng) -> Instance {
    sample("soykb", rng)
}
/// Table II `srasearch` row.
pub fn sample_srasearch(rng: &mut StdRng) -> Instance {
    sample("srasearch", rng)
}

/// Draws a random machine speed within the workflow's observed range (used
/// by application-specific PISA to scale network perturbations).
pub fn sample_speed(rng: &mut StdRng, sp: &WorkflowSpec) -> f64 {
    rng.gen_range(sp.speed_range.0..=sp.speed_range.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn blast_matches_fig9b_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = blast_graph(&mut rng, 10);
        assert_eq!(g.task_count(), 13);
        // single source (split) with fan-out 10
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.successors(TaskId(0)).len(), 10);
        // two sinks, each with in-degree 10
        let sinks = g.sinks();
        assert_eq!(sinks.len(), 2);
        for s in sinks {
            assert_eq!(g.predecessors(s).len(), 10);
        }
    }

    #[test]
    fn srasearch_matches_fig9a_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 5;
        let g = srasearch_graph(&mut rng, n);
        assert_eq!(g.task_count(), 1 + 4 * n + 3);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        // the final report joins exactly the two aggregators
        let fin = g.sinks()[0];
        assert_eq!(g.predecessors(fin).len(), 2);
    }

    #[test]
    fn seismology_is_a_star() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = seismology_graph(&mut rng, 12);
        assert_eq!(g.task_count(), 13);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.predecessors(TaskId(0)).len(), 12);
        assert_eq!(g.sources().len(), 12);
    }

    #[test]
    fn montage_is_layered_with_single_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = montage_graph(&mut rng, 8);
        assert_eq!(g.sinks().len(), 1, "mJPEG is the only sink");
        // depth: project -> diff -> concat -> bg -> background -> imgtbl ->
        // add -> shrink -> jpeg = 9 levels
        let order = g.topological_order();
        assert_eq!(order.len(), g.task_count());
    }

    #[test]
    fn epigenomics_lane_count_scales_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let small = epigenomics_graph(&mut rng, 2, 3);
        let big = epigenomics_graph(&mut rng, 4, 6);
        assert!(big.task_count() > small.task_count());
        assert_eq!(small.sinks().len(), 1);
    }

    #[test]
    fn chameleon_networks_have_infinite_links() {
        let mut rng = StdRng::seed_from_u64(6);
        let sp = spec("blast").unwrap();
        let n = sample_chameleon_network(&mut rng, &sp);
        assert!((4..=10).contains(&n.node_count()));
        for u in n.nodes() {
            for v in n.nodes() {
                assert!(n.link(u, v).is_infinite());
            }
            let s = n.speed(u);
            assert!(s >= sp.speed_range.0 && s <= sp.speed_range.1);
        }
        // infinite links => zero CCR contribution
        assert_eq!(n.mean_inverse_link(), 0.0);
    }

    #[test]
    fn costs_respect_spec_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for name in WORKFLOW_NAMES {
            let sp = spec(name).unwrap();
            let g = build_graph(name, &mut rng);
            for t in g.tasks() {
                let c = g.cost(t);
                assert!(
                    c >= sp.runtime_range.0 && c <= sp.runtime_range.1,
                    "{name} cost {c} outside {:?}",
                    sp.runtime_range
                );
            }
            for (_, _, c) in g.dependencies() {
                assert!(
                    c >= sp.io_range.0 && c <= sp.io_range.1,
                    "{name} io {c} outside {:?}",
                    sp.io_range
                );
            }
        }
    }

    #[test]
    fn all_workflows_have_specs_and_build() {
        let mut rng = StdRng::seed_from_u64(8);
        for name in WORKFLOW_NAMES {
            assert!(spec(name).is_some());
            let g = build_graph(name, &mut rng);
            assert!(g.task_count() >= 5, "{name} too small");
            assert_eq!(g.topological_order().len(), g.task_count());
        }
        assert!(spec("nope").is_none());
    }

    #[test]
    fn genome_structure() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = genome_graph(&mut rng, 6, 3);
        // 6 individuals + 2 sifting + 3 * (merge + freq)
        assert_eq!(g.task_count(), 6 + 2 + 6);
        assert_eq!(g.sources().len(), 6);
        assert_eq!(g.sinks().len(), 3);
    }

    #[test]
    fn soykb_structure() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = soykb_graph(&mut rng, 4);
        // 4 samples * 4 stages + combine + 2*(select+filter) + merge
        assert_eq!(g.task_count(), 16 + 1 + 4 + 1);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.sources().len(), 4);
    }
}
