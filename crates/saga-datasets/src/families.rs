//! The Section VI-B case-study instance families: structured distributions
//! of problem instances generalizing the adversarial patterns PISA found
//! between HEFT and CPoP (the paper's Figs. 7 and 8).

use rand::rngs::StdRng;
use saga_core::dist::clipped_gaussian;
use saga_core::{Instance, Network, NodeId, TaskGraph};

/// Fig. 7: a fork-join where one branch has a much higher *initial*
/// communication cost than the other — the family on which **HEFT performs
/// poorly** against CPoP.
///
/// Tasks `A` and `D` cost 1; `B` and `C` cost `N(10, 10/3)` (min 0). The
/// dependencies `A->B`, `B->D` and `C->D` cost 1 while `A->C` costs
/// `N(100, 100/3)` (min 0). The network is completely homogeneous (two
/// unit-speed nodes, unit links), as the paper uses "for simplicity".
pub fn heft_weak_instance(rng: &mut StdRng) -> Instance {
    let mut g = TaskGraph::new();
    let a = g.add_task("A", 1.0);
    let b = g.add_task("B", clipped_gaussian(rng, 10.0, 10.0 / 3.0, 0.0, f64::MAX));
    let c = g.add_task("C", clipped_gaussian(rng, 10.0, 10.0 / 3.0, 0.0, f64::MAX));
    let d = g.add_task("D", 1.0);
    g.add_dependency(a, b, 1.0).unwrap();
    g.add_dependency(
        a,
        c,
        clipped_gaussian(rng, 100.0, 100.0 / 3.0, 0.0, f64::MAX),
    )
    .unwrap();
    g.add_dependency(b, d, 1.0).unwrap();
    g.add_dependency(c, d, 1.0).unwrap();
    Instance::new(Network::complete(&[1.0, 1.0], 1.0), g)
}

/// Fig. 8: a wide fork-join whose *join* communication is ten times more
/// expensive than its fork communication, on a network whose two fastest
/// nodes share a weak link — the family on which **CPoP performs poorly**
/// against HEFT (it pins the critical path to the fastest node and then has
/// to haul the join data over the weak link).
///
/// Tasks `A`, `B..J` (9 inner tasks) and `K`: costs `N(1, 1/3)`. Fork
/// dependencies `A->inner` cost `N(1, 1/3)`; join dependencies `inner->K`
/// cost `N(10, 10/3)`. Network: 4 nodes; node 0 has speed 3, the rest
/// `N(1, 1/3)`; the link between node 0 and the second-fastest node is
/// `N(1, 1/3)` while every other link is `N(10, 5/3)`.
pub fn cpop_weak_instance(rng: &mut StdRng) -> Instance {
    let g1 = |rng: &mut StdRng| clipped_gaussian(rng, 1.0, 1.0 / 3.0, 0.0, f64::MAX);
    let g10 = |rng: &mut StdRng| clipped_gaussian(rng, 10.0, 10.0 / 3.0, 0.0, f64::MAX);

    let mut g = TaskGraph::new();
    let a = g.add_task("A", g1(rng));
    let k_cost = g1(rng);
    let mut inner = Vec::with_capacity(9);
    for i in 0..9 {
        let name = (b'B' + i as u8) as char;
        inner.push(g.add_task(name.to_string(), g1(rng)));
    }
    let k = g.add_task("K", k_cost);
    for &t in &inner {
        g.add_dependency(a, t, g1(rng)).unwrap();
        g.add_dependency(t, k, g10(rng)).unwrap();
    }

    let mut speeds = vec![3.0];
    speeds.extend((0..3).map(|_| g1(rng)));
    let mut net = Network::complete(&speeds, 1.0);
    // second-fastest node among the slow ones
    let mut second = NodeId(1);
    for v in 2..4u32 {
        if net.speed(NodeId(v)) > net.speed(second) {
            second = NodeId(v);
        }
    }
    for u in 0..4u32 {
        for v in (u + 1)..4u32 {
            let (u, v) = (NodeId(u), NodeId(v));
            let strength = if (u == NodeId(0) && v == second) || (v == NodeId(0) && u == second) {
                g1(rng)
            } else {
                clipped_gaussian(rng, 10.0, 5.0 / 3.0, 0.0, f64::MAX)
            };
            net.set_link(u, v, strength);
        }
    }
    Instance::new(net, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn heft_weak_family_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let inst = heft_weak_instance(&mut rng);
        assert_eq!(inst.graph.task_count(), 4);
        assert_eq!(inst.graph.dependency_count(), 4);
        assert_eq!(inst.network.node_count(), 2);
        // the heavy edge is A->C
        let heavy = inst
            .graph
            .dependency_cost(saga_core::TaskId(0), saga_core::TaskId(2))
            .unwrap();
        assert!(heavy > 10.0, "A->C should usually be heavy, got {heavy}");
    }

    #[test]
    fn cpop_weak_family_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = cpop_weak_instance(&mut rng);
        assert_eq!(inst.graph.task_count(), 11);
        assert_eq!(inst.graph.dependency_count(), 18);
        assert_eq!(inst.network.node_count(), 4);
        assert_eq!(inst.network.fastest_node(), NodeId(0));
        assert_eq!(inst.network.speed(NodeId(0)), 3.0);
    }

    #[test]
    fn heft_weak_family_statistically_favours_cpop() {
        // the paper's Fig. 7b: over many draws HEFT's mean makespan exceeds
        // CPoP's on this family
        use saga_schedulers::Scheduler;
        let mut rng = StdRng::seed_from_u64(2);
        let (mut heft_total, mut cpop_total) = (0.0, 0.0);
        for _ in 0..200 {
            let inst = heft_weak_instance(&mut rng);
            heft_total += saga_schedulers::Heft.schedule(&inst).makespan();
            cpop_total += saga_schedulers::Cpop.schedule(&inst).makespan();
        }
        assert!(
            heft_total > cpop_total * 1.1,
            "HEFT {heft_total} should be clearly worse than CPoP {cpop_total} on Fig. 7's family"
        );
    }

    #[test]
    fn cpop_weak_family_statistically_favours_heft() {
        // the paper's Fig. 8b mirror image
        use saga_schedulers::Scheduler;
        let mut rng = StdRng::seed_from_u64(3);
        let (mut heft_total, mut cpop_total) = (0.0, 0.0);
        for _ in 0..200 {
            let inst = cpop_weak_instance(&mut rng);
            heft_total += saga_schedulers::Heft.schedule(&inst).makespan();
            cpop_total += saga_schedulers::Cpop.schedule(&inst).makespan();
        }
        assert!(
            cpop_total > heft_total * 1.1,
            "CPoP {cpop_total} should be clearly worse than HEFT {heft_total} on Fig. 8's family"
        );
    }
}
