//! The random graph families of Table II: `in_trees`, `out_trees`, and
//! `chains`, following the methodology the paper cites from Cordeiro et al.
//!
//! * in/out-trees: 2–4 levels (uniform), branching factor 2 or 3 (uniform),
//!   node/edge weights from the clipped gaussian `N(1, 1/3)` on `[0, 2]`.
//! * parallel chains: 2–5 chains (uniform) of length 2–5 (uniform) between a
//!   shared source and sink (the fork-join shape of the paper's Fig. 3),
//!   same weight distribution.
//! * networks: complete graphs of 3–5 nodes (uniform), same weight
//!   distribution for speeds and link strengths.

use rand::rngs::StdRng;
use saga_core::dist::{uniform_usize, unit_weight};
use saga_core::{Instance, Network, NodeId, TaskGraph, TaskId};

/// Samples the paper's randomly weighted complete network: 3–5 nodes,
/// clipped-gaussian speeds and link strengths.
pub fn sample_network(rng: &mut StdRng) -> Network {
    let n = uniform_usize(rng, 3, 5);
    let speeds: Vec<f64> = (0..n).map(|_| unit_weight(rng)).collect();
    let mut net = Network::complete(&speeds, 1.0);
    for u in 0..n {
        for v in (u + 1)..n {
            net.set_link(NodeId(u as u32), NodeId(v as u32), unit_weight(rng));
        }
    }
    net
}

/// Builds a complete tree task graph. `inward = true` points edges from the
/// leaves toward the root (an in-tree, root = sink); `false` gives an
/// out-tree (root = source).
pub fn sample_tree(rng: &mut StdRng, inward: bool) -> TaskGraph {
    let levels = uniform_usize(rng, 2, 4);
    let branching = uniform_usize(rng, 2, 3);
    let mut g = TaskGraph::new();
    let root = g.add_task("n0", unit_weight(rng));
    let mut frontier = vec![root];
    for _ in 1..levels {
        let mut next = Vec::with_capacity(frontier.len() * branching);
        for &parent in &frontier {
            for _ in 0..branching {
                let id = g.add_task(format!("n{}", g.task_count()), unit_weight(rng));
                let w = unit_weight(rng);
                if inward {
                    g.add_dependency(id, parent, w).expect("tree edge");
                } else {
                    g.add_dependency(parent, id, w).expect("tree edge");
                }
                next.push(id);
            }
        }
        frontier = next;
    }
    g
}

/// Builds the parallel-chains task graph: shared source and sink with
/// `k` interior chains.
pub fn sample_parallel_chains(rng: &mut StdRng) -> TaskGraph {
    let k = uniform_usize(rng, 2, 5);
    let len = uniform_usize(rng, 2, 5);
    let mut g = TaskGraph::new();
    let src = g.add_task("src", unit_weight(rng));
    let sink_cost = unit_weight(rng);
    let mut chain_tails: Vec<TaskId> = Vec::with_capacity(k);
    for c in 0..k {
        let mut prev = src;
        for i in 0..len {
            let t = g.add_task(format!("c{c}_{i}"), unit_weight(rng));
            g.add_dependency(prev, t, unit_weight(rng))
                .expect("chain edge");
            prev = t;
        }
        chain_tails.push(prev);
    }
    let sink = g.add_task("sink", sink_cost);
    for tail in chain_tails {
        g.add_dependency(tail, sink, unit_weight(rng))
            .expect("sink edge");
    }
    g
}

/// Table II `in_trees` row: in-tree graph + random network.
pub fn sample_in_trees(rng: &mut StdRng) -> Instance {
    let g = sample_tree(rng, true);
    Instance::new(sample_network(rng), g)
}

/// Table II `out_trees` row: out-tree graph + random network.
pub fn sample_out_trees(rng: &mut StdRng) -> Instance {
    let g = sample_tree(rng, false);
    Instance::new(sample_network(rng), g)
}

/// Table II `chains` row: parallel-chains graph + random network.
pub fn sample_chains(rng: &mut StdRng) -> Instance {
    let g = sample_parallel_chains(rng);
    Instance::new(sample_network(rng), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn network_size_and_weights_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let n = sample_network(&mut rng);
            assert!((3..=5).contains(&n.node_count()));
            for v in n.nodes() {
                assert!((0.0..=2.0).contains(&n.speed(v)));
            }
            for u in n.nodes() {
                for v in n.nodes() {
                    if u != v {
                        assert!((0.0..=2.0).contains(&n.link(u, v)));
                    }
                }
            }
        }
    }

    #[test]
    fn in_tree_has_single_sink() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let g = sample_tree(&mut rng, true);
            assert_eq!(g.sinks(), vec![TaskId(0)], "root must be the only sink");
            assert!(g.task_count() >= 3); // >= 2 levels, branching >= 2
        }
    }

    #[test]
    fn out_tree_has_single_source() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let g = sample_tree(&mut rng, false);
            assert_eq!(g.sources(), vec![TaskId(0)], "root must be the only source");
        }
    }

    #[test]
    fn tree_sizes_match_levels_and_branching() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let g = sample_tree(&mut rng, true);
            // sizes must be one of sum_{i<L} b^i for L in 2..=4, b in {2,3}
            let valid: Vec<usize> = vec![
                1 + 2,
                1 + 3,
                1 + 2 + 4,
                1 + 3 + 9,
                1 + 2 + 4 + 8,
                1 + 3 + 9 + 27,
            ];
            assert!(
                valid.contains(&g.task_count()),
                "odd size {}",
                g.task_count()
            );
        }
    }

    #[test]
    fn parallel_chains_are_fork_join() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let g = sample_parallel_chains(&mut rng);
            assert_eq!(g.sources().len(), 1);
            assert_eq!(g.sinks().len(), 1);
            let k = g.successors(TaskId(0)).len();
            assert!((2..=5).contains(&k));
            // total = src + sink + k * len
            let interior = g.task_count() - 2;
            assert_eq!(interior % k, 0);
            assert!((2..=5).contains(&(interior / k)));
        }
    }

    #[test]
    fn instances_have_weights_in_paper_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = sample_chains(&mut rng);
        for t in inst.graph.tasks() {
            assert!((0.0..=2.0).contains(&inst.graph.cost(t)));
        }
        for (_, _, c) in inst.graph.dependencies() {
            assert!((0.0..=2.0).contains(&c));
        }
    }
}
