//! Structural characterization of problem instances.
//!
//! The paper's core critique is that "it is difficult to tell just what
//! broader family of problem instances a dataset is really representative
//! of". These descriptors make that discussion quantitative: depth, width,
//! parallelism, communication intensity, and network heterogeneity, per
//! instance and aggregated per dataset.

use saga_core::{ranking, Instance};

/// Structural descriptors of one problem instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceProfile {
    /// Number of tasks `|T|`.
    pub tasks: usize,
    /// Number of dependencies `|D|`.
    pub dependencies: usize,
    /// Number of compute nodes `|V|`.
    pub nodes: usize,
    /// Longest path length in edges (0 for independent tasks).
    pub depth: usize,
    /// Largest antichain approximated by the widest precedence level.
    pub width: usize,
    /// Average parallelism: total average work over critical path length
    /// (the classic `T1 / T_inf` measure on average costs).
    pub parallelism: f64,
    /// Communication-to-computation ratio of the instance.
    pub ccr: f64,
    /// Coefficient of variation of node speeds (0 = homogeneous).
    pub speed_cv: f64,
    /// Fraction of sources among tasks.
    pub source_fraction: f64,
    /// Fraction of sinks among tasks.
    pub sink_fraction: f64,
}

/// Computes the profile of an instance.
pub fn profile(inst: &Instance) -> InstanceProfile {
    let g = &inst.graph;
    let n = g.task_count();
    // levels (longest-path depth per task)
    let mut level = vec![0usize; n];
    for &t in &g.topological_order() {
        let lt = level[t.index()];
        for e in g.successors(t) {
            let l = &mut level[e.task.index()];
            *l = (*l).max(lt + 1);
        }
    }
    let depth = level.iter().copied().max().unwrap_or(0);
    let mut width = 0usize;
    for d in 0..=depth {
        width = width.max(level.iter().filter(|&&l| l == d).count());
    }

    let cp = ranking::critical_path(inst);
    let avg = ranking::AverageCosts::new(inst);
    let total_work: f64 = avg.exec.iter().sum();
    let parallelism = if cp.length > 0.0 && cp.length.is_finite() {
        total_work / cp.length
    } else {
        1.0
    };

    let speeds = inst.network.speeds();
    let mean_speed = speeds.iter().sum::<f64>() / speeds.len().max(1) as f64;
    let speed_cv = if mean_speed > 0.0 {
        let var = speeds
            .iter()
            .map(|s| (s - mean_speed) * (s - mean_speed))
            .sum::<f64>()
            / speeds.len() as f64;
        var.sqrt() / mean_speed
    } else {
        0.0
    };

    InstanceProfile {
        tasks: n,
        dependencies: g.dependency_count(),
        nodes: inst.network.node_count(),
        depth,
        width,
        parallelism,
        ccr: inst.ccr(),
        speed_cv,
        source_fraction: g.sources().len() as f64 / n.max(1) as f64,
        sink_fraction: g.sinks().len() as f64 / n.max(1) as f64,
    }
}

/// Mean profile over a set of instances (field-wise arithmetic mean;
/// non-finite CCRs are skipped and counted).
pub fn mean_profile(instances: &[Instance]) -> InstanceProfile {
    assert!(!instances.is_empty());
    let ps: Vec<InstanceProfile> = instances.iter().map(profile).collect();
    let n = ps.len() as f64;
    let finite_ccrs: Vec<f64> = ps.iter().map(|p| p.ccr).filter(|c| c.is_finite()).collect();
    InstanceProfile {
        tasks: (ps.iter().map(|p| p.tasks).sum::<usize>() as f64 / n).round() as usize,
        dependencies: (ps.iter().map(|p| p.dependencies).sum::<usize>() as f64 / n).round()
            as usize,
        nodes: (ps.iter().map(|p| p.nodes).sum::<usize>() as f64 / n).round() as usize,
        depth: (ps.iter().map(|p| p.depth).sum::<usize>() as f64 / n).round() as usize,
        width: (ps.iter().map(|p| p.width).sum::<usize>() as f64 / n).round() as usize,
        parallelism: ps.iter().map(|p| p.parallelism).sum::<f64>() / n,
        ccr: if finite_ccrs.is_empty() {
            0.0
        } else {
            finite_ccrs.iter().sum::<f64>() / finite_ccrs.len() as f64
        },
        speed_cv: ps.iter().map(|p| p.speed_cv).sum::<f64>() / n,
        source_fraction: ps.iter().map(|p| p.source_fraction).sum::<f64>() / n,
        sink_fraction: ps.iter().map(|p| p.sink_fraction).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saga_core::{Network, TaskGraph};

    #[test]
    fn chain_profile() {
        let g = TaskGraph::chain(&[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]);
        let inst = Instance::new(Network::complete(&[1.0, 1.0], 1.0), g);
        let p = profile(&inst);
        assert_eq!(p.tasks, 4);
        assert_eq!(p.depth, 3);
        assert_eq!(p.width, 1);
        assert!((p.parallelism - 4.0 / 7.0).abs() < 1e-9); // work 4, cp 4+3 comm
        assert_eq!(p.source_fraction, 0.25);
        assert_eq!(p.sink_fraction, 0.25);
        assert_eq!(p.speed_cv, 0.0);
    }

    #[test]
    fn independent_tasks_profile() {
        let mut g = TaskGraph::new();
        for i in 0..6 {
            g.add_task(format!("t{i}"), 1.0);
        }
        let inst = Instance::new(Network::complete(&[1.0, 2.0], 1.0), g);
        let p = profile(&inst);
        assert_eq!(p.depth, 0);
        assert_eq!(p.width, 6);
        assert!(p.parallelism > 5.0, "parallelism {}", p.parallelism);
        assert!(p.speed_cv > 0.0);
    }

    #[test]
    fn seismology_is_wide_and_shallow() {
        let mut rng = StdRng::seed_from_u64(0);
        let inst = crate::workflows::sample_seismology(&mut rng);
        let p = profile(&inst);
        assert_eq!(p.depth, 1);
        assert!(p.width >= 10);
        assert!(p.sink_fraction < 0.2);
    }

    #[test]
    fn montage_is_deep() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = crate::workflows::sample_montage(&mut rng);
        let p = profile(&inst);
        assert!(p.depth >= 7, "montage depth {}", p.depth);
    }

    #[test]
    fn mean_profile_averages() {
        let g1 = TaskGraph::chain(&[1.0, 1.0], &[1.0]);
        let g2 = TaskGraph::chain(&[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]);
        let n = Network::complete(&[1.0], 1.0);
        let m = mean_profile(&[Instance::new(n.clone(), g1), Instance::new(n, g2)]);
        assert_eq!(m.tasks, 3);
        assert_eq!(m.depth, 2);
    }
}
