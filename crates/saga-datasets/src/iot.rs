//! IoT data-streaming dataset generators (`etl`, `predict`, `stats`,
//! `train`) and the edge/fog/cloud networks of Varshney et al., per the
//! paper's Table II.
//!
//! Task-graph structure follows the four RIoTBench applications. Node
//! weights come from the paper's clipped gaussian (mean 35, std 25/3, min
//! 10, max 60); the application *input size* comes from the clipped gaussian
//! (mean 1000, std 500/3, min 500, max 1500) and each edge weight is the
//! input size scaled by the known input/output ratio of its producing task
//! (fixed per template, as in the paper).
//!
//! Networks: complete graphs with edge nodes (speed 1), fog nodes (speed 6)
//! and cloud nodes (speed 50); link strengths 60 between edge and fog (and,
//! to complete the graph, edge–edge and edge–cloud), 100 between fog and
//! fog/cloud, and infinite between cloud nodes — the paper's constants.

use rand::rngs::StdRng;
use saga_core::dist::{clipped_gaussian, uniform_usize};
use saga_core::{Instance, Network, TaskGraph, TaskId};

/// Node-weight distribution of the paper: `N(35, 25/3)` clipped to [10, 60].
fn task_cost(rng: &mut StdRng) -> f64 {
    clipped_gaussian(rng, 35.0, 25.0 / 3.0, 10.0, 60.0)
}

/// Input-size distribution of the paper: `N(1000, 500/3)` clipped to
/// [500, 1500].
fn input_size(rng: &mut StdRng) -> f64 {
    clipped_gaussian(rng, 1000.0, 500.0 / 3.0, 500.0, 1500.0)
}

/// One task template: display name plus the output/input ratio of the task
/// (its outgoing edges carry `incoming_size * ratio`).
struct Stage(&'static str, f64);

/// Builds a linear-with-branches pipeline from templates: `stages` is the
/// backbone; `branches` lists (attach_index, stage) side outputs that rejoin
/// at `rejoin_index` (or become sinks if `rejoin_index` is `None`).
fn pipeline(
    rng: &mut StdRng,
    stages: &[Stage],
    branches: &[(usize, Stage, Option<usize>)],
) -> TaskGraph {
    let mut g = TaskGraph::new();
    let input = input_size(rng);
    let mut ids: Vec<TaskId> = Vec::with_capacity(stages.len());
    let mut sizes: Vec<f64> = Vec::with_capacity(stages.len());
    for (i, s) in stages.iter().enumerate() {
        let id = g.add_task(s.0, task_cost(rng));
        let out = if i == 0 {
            input * s.1
        } else {
            sizes[i - 1] * s.1
        };
        if i > 0 {
            g.add_dependency(ids[i - 1], id, sizes[i - 1]).unwrap();
        }
        ids.push(id);
        sizes.push(out);
    }
    for (attach, stage, rejoin) in branches {
        let id = g.add_task(stage.0, task_cost(rng));
        let in_size = sizes[*attach];
        g.add_dependency(ids[*attach], id, in_size).unwrap();
        if let Some(r) = rejoin {
            g.add_dependency(id, ids[*r], in_size * stage.1).unwrap();
        }
    }
    g
}

/// RIoTBench ETL: parse, range & bloom filters, interpolation, join,
/// annotate, CSV-to-SenML, with MQTT-publish and store sinks.
pub fn etl_graph(rng: &mut StdRng) -> TaskGraph {
    pipeline(
        rng,
        &[
            Stage("senml_parse", 1.0),
            Stage("range_filter", 0.95),
            Stage("bloom_filter", 0.9),
            Stage("interpolate", 1.0),
            Stage("join", 1.0),
            Stage("annotate", 1.05),
            Stage("csv_to_senml", 1.0),
        ],
        &[
            // sink branches: publish + archive
            (6, Stage("mqtt_publish", 0.0), None),
            (6, Stage("azure_insert", 0.0), None),
        ],
    )
}

/// RIoTBench STATS: parse fans out to three analytics (average, Kalman +
/// sliding window, distinct count) that rejoin at a group-viz task.
pub fn stats_graph(rng: &mut StdRng) -> TaskGraph {
    let mut g = TaskGraph::new();
    let input = input_size(rng);
    let parse = g.add_task("senml_parse", task_cost(rng));
    let avg = g.add_task("average", task_cost(rng));
    let kalman = g.add_task("kalman", task_cost(rng));
    let window = g.add_task("sliding_window", task_cost(rng));
    let distinct = g.add_task("distinct_count", task_cost(rng));
    let viz = g.add_task("group_viz", task_cost(rng));
    let publish = g.add_task("mqtt_publish", task_cost(rng));
    g.add_dependency(parse, avg, input).unwrap();
    g.add_dependency(parse, kalman, input).unwrap();
    g.add_dependency(parse, distinct, input).unwrap();
    g.add_dependency(kalman, window, input * 0.9).unwrap();
    g.add_dependency(avg, viz, input * 0.1).unwrap();
    g.add_dependency(window, viz, input * 0.2).unwrap();
    g.add_dependency(distinct, viz, input * 0.05).unwrap();
    g.add_dependency(viz, publish, input * 0.3).unwrap();
    g
}

/// RIoTBench PREDICT: parse fans out to a decision tree and a linear
/// regression; both feed error estimation, then publish, with a blob read
/// feeding the model tasks.
pub fn predict_graph(rng: &mut StdRng) -> TaskGraph {
    let mut g = TaskGraph::new();
    let input = input_size(rng);
    let source = g.add_task("mqtt_subscribe", task_cost(rng));
    let blob = g.add_task("blob_read_model", task_cost(rng));
    let parse = g.add_task("senml_parse", task_cost(rng));
    let tree = g.add_task("decision_tree", task_cost(rng));
    let reg = g.add_task("linear_regression", task_cost(rng));
    let avg = g.add_task("average", task_cost(rng));
    let err = g.add_task("error_estimate", task_cost(rng));
    let publish = g.add_task("mqtt_publish", task_cost(rng));
    g.add_dependency(source, parse, input).unwrap();
    g.add_dependency(parse, tree, input).unwrap();
    g.add_dependency(parse, reg, input).unwrap();
    g.add_dependency(parse, avg, input).unwrap();
    g.add_dependency(blob, tree, input * 0.5).unwrap();
    g.add_dependency(blob, reg, input * 0.5).unwrap();
    g.add_dependency(tree, err, input * 0.2).unwrap();
    g.add_dependency(reg, err, input * 0.2).unwrap();
    g.add_dependency(avg, err, input * 0.1).unwrap();
    g.add_dependency(err, publish, input * 0.15).unwrap();
    g
}

/// RIoTBench TRAIN: timer-driven fetch, table read, model training (linear
/// regression + decision tree), blob writes, and an MQTT announce.
pub fn train_graph(rng: &mut StdRng) -> TaskGraph {
    let mut g = TaskGraph::new();
    let input = input_size(rng);
    let timer = g.add_task("timer_source", task_cost(rng));
    let fetch = g.add_task("table_read", task_cost(rng));
    let annotate = g.add_task("annotate", task_cost(rng));
    let reg = g.add_task("linear_regression_train", task_cost(rng));
    let tree = g.add_task("decision_tree_train", task_cost(rng));
    let blob_r = g.add_task("blob_write_model_r", task_cost(rng));
    let blob_t = g.add_task("blob_write_model_t", task_cost(rng));
    let publish = g.add_task("mqtt_publish", task_cost(rng));
    g.add_dependency(timer, fetch, input * 0.01).unwrap();
    g.add_dependency(fetch, annotate, input).unwrap();
    g.add_dependency(annotate, reg, input).unwrap();
    g.add_dependency(annotate, tree, input).unwrap();
    g.add_dependency(reg, blob_r, input * 0.3).unwrap();
    g.add_dependency(tree, blob_t, input * 0.3).unwrap();
    g.add_dependency(blob_r, publish, input * 0.01).unwrap();
    g.add_dependency(blob_t, publish, input * 0.01).unwrap();
    g
}

/// Samples the paper's edge/fog/cloud network: 75–125 edge nodes (speed 1),
/// 3–7 fog nodes (speed 6), 1–10 cloud nodes (speed 50); link strengths
/// edge–{edge,fog,cloud} 60, fog–{fog,cloud} 100, cloud–cloud infinite.
pub fn sample_edge_fog_cloud(rng: &mut StdRng) -> Network {
    let edge = uniform_usize(rng, 75, 125);
    let fog = uniform_usize(rng, 3, 7);
    let cloud = uniform_usize(rng, 1, 10);
    build_edge_fog_cloud(edge, fog, cloud)
}

/// Deterministic edge/fog/cloud network with explicit tier sizes.
pub fn build_edge_fog_cloud(edge: usize, fog: usize, cloud: usize) -> Network {
    #[derive(Clone, Copy, PartialEq)]
    enum Tier {
        Edge,
        Fog,
        Cloud,
    }
    let mut tiers = Vec::with_capacity(edge + fog + cloud);
    let mut speeds = Vec::with_capacity(edge + fog + cloud);
    for _ in 0..edge {
        tiers.push(Tier::Edge);
        speeds.push(1.0);
    }
    for _ in 0..fog {
        tiers.push(Tier::Fog);
        speeds.push(6.0);
    }
    for _ in 0..cloud {
        tiers.push(Tier::Cloud);
        speeds.push(50.0);
    }
    let n = speeds.len();
    let mut links = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            links[i * n + j] = if i == j {
                f64::INFINITY
            } else {
                match (tiers[i], tiers[j]) {
                    (Tier::Cloud, Tier::Cloud) => f64::INFINITY,
                    (Tier::Fog, Tier::Fog)
                    | (Tier::Fog, Tier::Cloud)
                    | (Tier::Cloud, Tier::Fog) => 100.0,
                    _ => 60.0,
                }
            };
        }
    }
    Network::from_matrix(speeds, links)
}

/// Table II `etl` row.
pub fn sample_etl(rng: &mut StdRng) -> Instance {
    Instance::new(sample_edge_fog_cloud(rng), etl_graph(rng))
}
/// Table II `predict` row.
pub fn sample_predict(rng: &mut StdRng) -> Instance {
    Instance::new(sample_edge_fog_cloud(rng), predict_graph(rng))
}
/// Table II `stats` row.
pub fn sample_stats(rng: &mut StdRng) -> Instance {
    Instance::new(sample_edge_fog_cloud(rng), stats_graph(rng))
}
/// Table II `train` row.
pub fn sample_train(rng: &mut StdRng) -> Instance {
    Instance::new(sample_edge_fog_cloud(rng), train_graph(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn task_costs_follow_paper_distribution() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let c = task_cost(&mut rng);
            assert!((10.0..=60.0).contains(&c));
        }
        let mean: f64 = (0..5000).map(|_| task_cost(&mut rng)).sum::<f64>() / 5000.0;
        assert!((mean - 35.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn input_sizes_follow_paper_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = input_size(&mut rng);
            assert!((500.0..=1500.0).contains(&s));
        }
    }

    #[test]
    fn edge_fog_cloud_network_constants() {
        let n = build_edge_fog_cloud(3, 2, 2);
        use saga_core::NodeId;
        assert_eq!(n.node_count(), 7);
        assert_eq!(n.speed(NodeId(0)), 1.0);
        assert_eq!(n.speed(NodeId(3)), 6.0);
        assert_eq!(n.speed(NodeId(5)), 50.0);
        // edge-fog 60
        assert_eq!(n.link(NodeId(0), NodeId(3)), 60.0);
        // edge-edge 60
        assert_eq!(n.link(NodeId(0), NodeId(1)), 60.0);
        // fog-fog and fog-cloud 100
        assert_eq!(n.link(NodeId(3), NodeId(4)), 100.0);
        assert_eq!(n.link(NodeId(3), NodeId(5)), 100.0);
        // edge-cloud 60
        assert_eq!(n.link(NodeId(0), NodeId(5)), 60.0);
        // cloud-cloud infinite
        assert!(n.link(NodeId(5), NodeId(6)).is_infinite());
    }

    #[test]
    fn sampled_network_sizes_in_paper_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let n = sample_edge_fog_cloud(&mut rng);
            assert!((75 + 3 + 1..=125 + 7 + 10).contains(&n.node_count()));
        }
    }

    #[test]
    fn all_four_apps_are_dags_with_right_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let etl = etl_graph(&mut rng);
        assert_eq!(etl.task_count(), 9);
        assert_eq!(etl.sinks().len(), 2, "publish + archive");
        let stats = stats_graph(&mut rng);
        assert_eq!(stats.task_count(), 7);
        assert_eq!(stats.sinks().len(), 1);
        let predict = predict_graph(&mut rng);
        assert_eq!(predict.task_count(), 8);
        assert_eq!(predict.sources().len(), 2, "subscribe + blob model");
        let train = train_graph(&mut rng);
        assert_eq!(train.task_count(), 8);
        assert_eq!(train.sinks().len(), 1);
        for g in [etl, stats, predict, train] {
            assert_eq!(g.topological_order().len(), g.task_count());
        }
    }

    #[test]
    fn pipeline_branches_can_rejoin() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = pipeline(
            &mut rng,
            &[Stage("a", 1.0), Stage("b", 1.0), Stage("c", 1.0)],
            &[(0, Stage("side", 0.5), Some(2))],
        );
        // backbone a->b->c plus side branch a->side->c
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.dependency_count(), 4);
        let side = TaskId(3);
        assert_eq!(g.predecessors(side).len(), 1);
        assert_eq!(g.successors(side).len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn edge_weights_scale_with_input_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = stats_graph(&mut rng);
        // every edge weight is within [500*0.05, 1500] by construction
        for (_, _, c) in g.dependencies() {
            assert!(
                (500.0 * 0.05 - 1e-9..=1500.0 + 1e-9).contains(&c),
                "edge {c}"
            );
        }
    }
}
