//! Communication-to-computation ratio (CCR) control for the Section VII
//! experiments.
//!
//! The paper's scientific-workflow traces contain runtimes and I/O sizes but
//! no inter-node communication rates, so it sets communication to be
//! *homogeneous* at a strength that realizes a target average CCR
//! (`average data size / communication strength` over `average execution
//! time`), for CCR ∈ {1/5, 1/2, 1, 2, 5}.

use saga_core::{Instance, Network, NodeId};

/// The five CCR operating points of Section VII.
pub const PAPER_CCRS: [f64; 5] = [0.2, 0.5, 1.0, 2.0, 5.0];

/// Replaces the instance's links with a homogeneous strength chosen so that
/// [`Instance::ccr`] equals `target`. Speeds are preserved. Returns the
/// chosen strength.
///
/// # Panics
/// Panics if `target <= 0`, or if the instance has no dependencies or no
/// average execution time (CCR undefined).
pub fn set_homogeneous_ccr(inst: &mut Instance, target: f64) -> f64 {
    assert!(target > 0.0, "CCR target must be positive");
    let avg_exec = inst.graph.mean_task_cost() * inst.network.mean_inverse_speed();
    let mean_dep = inst.graph.mean_dependency_cost();
    assert!(
        avg_exec > 0.0 && mean_dep > 0.0,
        "CCR undefined without compute and communication"
    );
    // avg_comm = mean_dep / strength ; ccr = avg_comm / avg_exec
    let strength = mean_dep / (target * avg_exec);
    let n = inst.network.node_count();
    let mut net = Network::complete(inst.network.speeds(), strength);
    // keep speeds exactly; links homogenized
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            net.set_link(NodeId(u), NodeId(v), strength);
        }
    }
    inst.network = net;
    strength
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflows;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn achieves_each_paper_ccr() {
        let mut rng = StdRng::seed_from_u64(0);
        for target in PAPER_CCRS {
            let mut inst = workflows::sample_blast(&mut rng);
            set_homogeneous_ccr(&mut inst, target);
            assert!(
                (inst.ccr() - target).abs() < 1e-9,
                "ccr {} != {target}",
                inst.ccr()
            );
        }
    }

    #[test]
    fn preserves_speeds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut inst = workflows::sample_montage(&mut rng);
        let speeds = inst.network.speeds().to_vec();
        set_homogeneous_ccr(&mut inst, 1.0);
        assert_eq!(inst.network.speeds(), &speeds[..]);
    }

    #[test]
    fn links_are_homogeneous_after() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut inst = workflows::sample_soykb(&mut rng);
        let s = set_homogeneous_ccr(&mut inst, 2.0);
        for u in inst.network.nodes() {
            for v in inst.network.nodes() {
                if u != v {
                    assert_eq!(inst.network.link(u, v), s);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut inst = workflows::sample_blast(&mut rng);
        set_homogeneous_ccr(&mut inst, 0.0);
    }
}
