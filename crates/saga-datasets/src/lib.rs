//! # saga-datasets
//!
//! The 16 problem-instance dataset generators of the paper's Table II, plus
//! the two case-study instance families of Section VI-B and a CCR helper for
//! the Section VII application-specific experiments.
//!
//! Three groups:
//!
//! * **Random graph families** (`in_trees`, `out_trees`, `chains`) paired
//!   with small randomly weighted complete networks — the classic synthetic
//!   methodology of Cordeiro et al.
//! * **Scientific workflows** (`blast`, `bwa`, `cycles`, `epigenomics`,
//!   `genome`, `montage`, `seismology`, `soykb`, `srasearch`) paired with
//!   Chameleon-cloud-style networks (shared filesystem — infinite links).
//!   The paper generates these with WfCommons from real execution traces;
//!   those traces are not redistributable, so the topologies here are
//!   structural reproductions of each workflow's published shape and the
//!   weights are clipped gaussians over per-workflow scale constants (see
//!   DESIGN.md, substitutions).
//! * **IoT streaming applications** (`etl`, `predict`, `stats`, `train`)
//!   from RIoTBench, paired with edge/fog/cloud networks per Varshney et al.
//!
//! Every generator is deterministic given an [`StdRng`] seed.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use saga_core::Instance;

pub mod ccr;
pub mod characterize;
pub mod families;
pub mod iot;
pub mod random_graphs;
pub mod workflows;

/// A named, seeded problem-instance generator (one Table II row).
pub struct DatasetGenerator {
    /// Dataset name as it appears in the paper (e.g. `"in_trees"`).
    pub name: &'static str,
    /// Number of instances the paper's dataset contains.
    pub paper_count: usize,
    sample_fn: fn(&mut StdRng) -> Instance,
}

impl DatasetGenerator {
    /// Draws one random instance.
    pub fn sample(&self, rng: &mut StdRng) -> Instance {
        (self.sample_fn)(rng)
    }

    /// Draws `count` instances.
    pub fn sample_many(&self, rng: &mut StdRng, count: usize) -> Vec<Instance> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

/// All 16 dataset generators, in the row order of the paper's Fig. 2
/// (alphabetical: blast, bwa, chains, cycles, epigenomics, etl, genome,
/// in_trees, montage, out_trees, predict, seismology, soykb, srasearch,
/// stats, train).
pub fn all_generators() -> Vec<DatasetGenerator> {
    vec![
        DatasetGenerator {
            name: "blast",
            paper_count: 100,
            sample_fn: workflows::sample_blast,
        },
        DatasetGenerator {
            name: "bwa",
            paper_count: 100,
            sample_fn: workflows::sample_bwa,
        },
        DatasetGenerator {
            name: "chains",
            paper_count: 1000,
            sample_fn: random_graphs::sample_chains,
        },
        DatasetGenerator {
            name: "cycles",
            paper_count: 100,
            sample_fn: workflows::sample_cycles,
        },
        DatasetGenerator {
            name: "epigenomics",
            paper_count: 100,
            sample_fn: workflows::sample_epigenomics,
        },
        DatasetGenerator {
            name: "etl",
            paper_count: 1000,
            sample_fn: iot::sample_etl,
        },
        DatasetGenerator {
            name: "genome",
            paper_count: 100,
            sample_fn: workflows::sample_genome,
        },
        DatasetGenerator {
            name: "in_trees",
            paper_count: 1000,
            sample_fn: random_graphs::sample_in_trees,
        },
        DatasetGenerator {
            name: "montage",
            paper_count: 100,
            sample_fn: workflows::sample_montage,
        },
        DatasetGenerator {
            name: "out_trees",
            paper_count: 1000,
            sample_fn: random_graphs::sample_out_trees,
        },
        DatasetGenerator {
            name: "predict",
            paper_count: 1000,
            sample_fn: iot::sample_predict,
        },
        DatasetGenerator {
            name: "seismology",
            paper_count: 100,
            sample_fn: workflows::sample_seismology,
        },
        DatasetGenerator {
            name: "soykb",
            paper_count: 100,
            sample_fn: workflows::sample_soykb,
        },
        DatasetGenerator {
            name: "srasearch",
            paper_count: 100,
            sample_fn: workflows::sample_srasearch,
        },
        DatasetGenerator {
            name: "stats",
            paper_count: 1000,
            sample_fn: iot::sample_stats,
        },
        DatasetGenerator {
            name: "train",
            paper_count: 1000,
            sample_fn: iot::sample_train,
        },
    ]
}

/// Looks a generator up by name.
pub fn by_name(name: &str) -> Option<DatasetGenerator> {
    all_generators()
        .into_iter()
        .find(|g| g.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sixteen_generators_in_fig2_order() {
        let names: Vec<&str> = all_generators().iter().map(|g| g.name).collect();
        assert_eq!(names.len(), 16);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "generators must be alphabetical like Fig. 2");
    }

    #[test]
    fn every_generator_yields_valid_dag_instances() {
        let mut rng = StdRng::seed_from_u64(123);
        for g in all_generators() {
            for _ in 0..3 {
                let inst = g.sample(&mut rng);
                assert!(inst.graph.task_count() > 0, "{} empty graph", g.name);
                assert!(inst.network.node_count() > 0, "{} empty network", g.name);
                // acyclicity is by construction; topological order must cover
                assert_eq!(
                    inst.graph.topological_order().len(),
                    inst.graph.task_count(),
                    "{} not a DAG",
                    g.name
                );
            }
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        for g in all_generators() {
            let a = g.sample(&mut StdRng::seed_from_u64(5));
            let b = g.sample(&mut StdRng::seed_from_u64(5));
            assert_eq!(a.to_json(), b.to_json(), "{} not reproducible", g.name);
        }
    }

    #[test]
    fn by_name_finds_all() {
        for g in all_generators() {
            assert!(by_name(g.name).is_some());
        }
        assert!(by_name("not_a_dataset").is_none());
    }

    #[test]
    fn paper_counts_match_table_ii() {
        for g in all_generators() {
            let expect = match g.name {
                "in_trees" | "out_trees" | "chains" | "etl" | "predict" | "stats" | "train" => 1000,
                _ => 100,
            };
            assert_eq!(g.paper_count, expect, "{}", g.name);
        }
    }
}
