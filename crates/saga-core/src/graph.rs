//! The task graph `G = (T, D)` of the paper's Section II.
//!
//! A directed acyclic graph whose vertices are tasks with compute cost
//! `c(t) > 0` and whose edges are data dependencies with transfer size
//! `c(t, t')`. The representation is adjacency lists in both directions,
//! indexed densely by [`TaskId`], which keeps scheduler inner loops
//! allocation-free.

use crate::{GraphError, TaskId};
use serde::{Deserialize, Serialize};

/// A weighted dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepEdge {
    /// The other endpoint (successor in `succs`, predecessor in `preds`).
    pub task: TaskId,
    /// Data size `c(t, t')` exchanged over the dependency.
    pub cost: f64,
}

/// A directed acyclic task graph with weighted tasks and dependencies.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    names: Vec<String>,
    costs: Vec<f64>,
    succs: Vec<Vec<DepEdge>>,
    preds: Vec<Vec<DepEdge>>,
    edge_count: usize,
}

impl Clone for TaskGraph {
    fn clone(&self) -> Self {
        TaskGraph {
            names: self.names.clone(),
            costs: self.costs.clone(),
            succs: self.succs.clone(),
            preds: self.preds.clone(),
            edge_count: self.edge_count,
        }
    }

    /// Reuses the destination's buffers, including the per-task name and
    /// adjacency allocations — annealing loops clone candidate instances
    /// every iteration, and this keeps them allocation-free after warm-up.
    fn clone_from(&mut self, source: &Self) {
        clone_vec_into(&mut self.names, &source.names, |dst, src| {
            dst.clear();
            dst.push_str(src);
        });
        self.costs.clear();
        self.costs.extend_from_slice(&source.costs);
        clone_vec_into(&mut self.succs, &source.succs, |dst, src| {
            dst.clear();
            dst.extend_from_slice(src);
        });
        clone_vec_into(&mut self.preds, &source.preds, |dst, src| {
            dst.clear();
            dst.extend_from_slice(src);
        });
        self.edge_count = source.edge_count;
    }
}

/// Element-wise `clone_from` for a vector, truncating or growing `dst` to
/// `src`'s length while reusing surviving elements' allocations.
fn clone_vec_into<T: Clone>(dst: &mut Vec<T>, src: &[T], reuse: impl Fn(&mut T, &T)) {
    dst.truncate(src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        reuse(d, s);
    }
    for s in &src[dst.len()..] {
        dst.push(s.clone());
    }
}

impl TaskGraph {
    /// Creates an empty task graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty task graph with room for `n` tasks.
    pub fn with_capacity(n: usize) -> Self {
        TaskGraph {
            names: Vec::with_capacity(n),
            costs: Vec::with_capacity(n),
            succs: Vec::with_capacity(n),
            preds: Vec::with_capacity(n),
            edge_count: 0,
        }
    }

    /// Adds a task with compute cost `cost` and returns its id.
    ///
    /// # Panics
    /// Panics if `cost` is negative or NaN; use [`TaskGraph::try_add_task`]
    /// for a fallible variant.
    pub fn add_task(&mut self, name: impl Into<String>, cost: f64) -> TaskId {
        self.try_add_task(name, cost).expect("invalid task cost")
    }

    /// Fallible version of [`TaskGraph::add_task`].
    pub fn try_add_task(
        &mut self,
        name: impl Into<String>,
        cost: f64,
    ) -> Result<TaskId, GraphError> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(GraphError::InvalidCost { value: cost });
        }
        let id = TaskId(self.names.len() as u32);
        self.names.push(name.into());
        self.costs.push(cost);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        Ok(id)
    }

    /// Number of tasks `|T|`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.names.len()
    }

    /// Number of dependencies `|D|`.
    #[inline]
    pub fn dependency_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all task ids in insertion order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.names.len() as u32).map(TaskId)
    }

    /// The display name of a task.
    pub fn name(&self, t: TaskId) -> &str {
        &self.names[t.index()]
    }

    /// The compute cost `c(t)`.
    #[inline]
    pub fn cost(&self, t: TaskId) -> f64 {
        self.costs[t.index()]
    }

    /// Sets the compute cost `c(t)`.
    pub fn set_cost(&mut self, t: TaskId, cost: f64) -> Result<(), GraphError> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(GraphError::InvalidCost { value: cost });
        }
        if t.index() >= self.costs.len() {
            return Err(GraphError::NoSuchTask { task: t });
        }
        self.costs[t.index()] = cost;
        Ok(())
    }

    /// Successor edges of `t` (tasks that consume `t`'s output).
    #[inline]
    pub fn successors(&self, t: TaskId) -> &[DepEdge] {
        &self.succs[t.index()]
    }

    /// Predecessor edges of `t` (tasks whose output `t` consumes).
    #[inline]
    pub fn predecessors(&self, t: TaskId) -> &[DepEdge] {
        &self.preds[t.index()]
    }

    /// Whether the dependency `(from, to)` exists.
    pub fn has_dependency(&self, from: TaskId, to: TaskId) -> bool {
        self.succs[from.index()].iter().any(|e| e.task == to)
    }

    /// The data size `c(t, t')` of a dependency, if present.
    pub fn dependency_cost(&self, from: TaskId, to: TaskId) -> Option<f64> {
        self.succs[from.index()]
            .iter()
            .find(|e| e.task == to)
            .map(|e| e.cost)
    }

    /// Adds a dependency `(from, to)` with data size `cost`.
    ///
    /// Rejects self-loops, duplicates, and edges that would form a cycle, so
    /// the graph is a DAG by construction.
    pub fn add_dependency(
        &mut self,
        from: TaskId,
        to: TaskId,
        cost: f64,
    ) -> Result<(), GraphError> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(GraphError::InvalidCost { value: cost });
        }
        if from == to {
            return Err(GraphError::SelfLoop { task: from });
        }
        if from.index() >= self.task_count() {
            return Err(GraphError::NoSuchTask { task: from });
        }
        if to.index() >= self.task_count() {
            return Err(GraphError::NoSuchTask { task: to });
        }
        if self.has_dependency(from, to) {
            return Err(GraphError::DuplicateDependency { from, to });
        }
        if self.reaches(to, from) {
            return Err(GraphError::CycleWouldForm { from, to });
        }
        self.succs[from.index()].push(DepEdge { task: to, cost });
        self.preds[to.index()].push(DepEdge { task: from, cost });
        self.edge_count += 1;
        Ok(())
    }

    /// Removes the dependency `(from, to)`.
    pub fn remove_dependency(&mut self, from: TaskId, to: TaskId) -> Result<(), GraphError> {
        self.remove_dependency_tracked(from, to).map(|_| ())
    }

    /// [`remove_dependency`](Self::remove_dependency), additionally
    /// reporting `(cost, succ position, pred position)` of the removed edge
    /// so [`restore_dependency_at`](Self::restore_dependency_at) can revert
    /// the removal with the adjacency lists in their exact original order —
    /// the undo operation in-place annealing loops rely on.
    pub fn remove_dependency_tracked(
        &mut self,
        from: TaskId,
        to: TaskId,
    ) -> Result<(f64, usize, usize), GraphError> {
        let s = &mut self.succs[from.index()];
        let Some(si) = s.iter().position(|e| e.task == to) else {
            return Err(GraphError::NoSuchDependency { from, to });
        };
        let cost = s[si].cost;
        s.swap_remove(si);
        let p = &mut self.preds[to.index()];
        let pi = p
            .iter()
            .position(|e| e.task == from)
            .expect("pred/succ lists out of sync");
        p.swap_remove(pi);
        self.edge_count -= 1;
        Ok((cost, si, pi))
    }

    /// Reverts a [`remove_dependency_tracked`](Self::remove_dependency_tracked):
    /// re-inserts the edge and swaps it back to its recorded positions, so
    /// the adjacency lists are bitwise identical to before the removal
    /// (`swap_remove` moved the last element into the hole; pushing and
    /// swapping back inverts that exactly).
    ///
    /// # Panics
    /// Panics if the recorded positions are out of range for the lists'
    /// current lengths — i.e. if the graph was mutated since the removal.
    pub fn restore_dependency_at(
        &mut self,
        from: TaskId,
        to: TaskId,
        cost: f64,
        succ_pos: usize,
        pred_pos: usize,
    ) {
        let s = &mut self.succs[from.index()];
        s.push(DepEdge { task: to, cost });
        let last = s.len() - 1;
        s.swap(succ_pos, last);
        let p = &mut self.preds[to.index()];
        p.push(DepEdge { task: from, cost });
        let last = p.len() - 1;
        p.swap(pred_pos, last);
        self.edge_count += 1;
    }

    /// Reverts the most recent [`add_dependency`](Self::add_dependency) of
    /// `(from, to)`: the edge must still be the *last* entry of both
    /// adjacency lists (nothing touched the graph since), so popping both
    /// restores the exact prior state.
    ///
    /// # Panics
    /// Panics if `(from, to)` is not the last edge of both lists.
    pub fn pop_dependency(&mut self, from: TaskId, to: TaskId) {
        let s = &mut self.succs[from.index()];
        assert_eq!(
            s.last().map(|e| e.task),
            Some(to),
            "pop_dependency: ({from}, {to}) is not the most recent succ edge"
        );
        s.pop();
        let p = &mut self.preds[to.index()];
        assert_eq!(
            p.last().map(|e| e.task),
            Some(from),
            "pop_dependency: ({from}, {to}) is not the most recent pred edge"
        );
        p.pop();
        self.edge_count -= 1;
    }

    /// Updates the data size of an existing dependency.
    pub fn set_dependency_cost(
        &mut self,
        from: TaskId,
        to: TaskId,
        cost: f64,
    ) -> Result<(), GraphError> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(GraphError::InvalidCost { value: cost });
        }
        let Some(e) = self.succs[from.index()].iter_mut().find(|e| e.task == to) else {
            return Err(GraphError::NoSuchDependency { from, to });
        };
        e.cost = cost;
        let p = self.preds[to.index()]
            .iter_mut()
            .find(|e| e.task == from)
            .expect("pred/succ lists out of sync");
        p.cost = cost;
        Ok(())
    }

    /// Iterator over all dependencies as `(from, to, cost)`.
    pub fn dependencies(&self) -> impl Iterator<Item = (TaskId, TaskId, f64)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(i, es)| es.iter().map(move |e| (TaskId(i as u32), e.task, e.cost)))
    }

    /// The `k`-th dependency in [`dependencies`](Self::dependencies) order,
    /// without materializing the edge list (the perturbation operators draw
    /// uniform edges tens of thousands of times per annealing cell).
    pub fn nth_dependency(&self, k: usize) -> Option<(TaskId, TaskId, f64)> {
        let mut remaining = k;
        for (i, es) in self.succs.iter().enumerate() {
            if remaining < es.len() {
                let e = &es[remaining];
                return Some((TaskId(i as u32), e.task, e.cost));
            }
            remaining -= es.len();
        }
        None
    }

    /// Whether `from` can reach `to` along dependencies (used for cycle checks).
    pub fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        if from == to {
            return true;
        }
        if self.task_count() <= 64 {
            return self.reaches_small(from, to);
        }
        let mut seen = vec![false; self.task_count()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(t) = stack.pop() {
            for e in &self.succs[t.index()] {
                if e.task == to {
                    return true;
                }
                if !seen[e.task.index()] {
                    seen[e.task.index()] = true;
                    stack.push(e.task);
                }
            }
        }
        false
    }

    /// Allocation-free [`reaches`](Self::reaches) for graphs of at most 64
    /// tasks: the seen set and the DFS frontier are both `u64` bitmasks.
    /// (Adversarial-search instances have 3–5 tasks, and acyclicity checks
    /// sit on the perturbation hot path.)
    fn reaches_small(&self, from: TaskId, to: TaskId) -> bool {
        let mut seen: u64 = 1 << from.index();
        let mut frontier: u64 = seen;
        while frontier != 0 {
            let t = frontier.trailing_zeros() as usize;
            frontier &= frontier - 1;
            for e in &self.succs[t] {
                if e.task == to {
                    return true;
                }
                let bit = 1u64 << e.task.index();
                if seen & bit == 0 {
                    seen |= bit;
                    frontier |= bit;
                }
            }
        }
        false
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        self.tasks()
            .filter(|t| self.preds[t.index()].is_empty())
            .collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.tasks()
            .filter(|t| self.succs[t.index()].is_empty())
            .collect()
    }

    /// In-degree of every task, indexed by task id.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.preds.iter().map(Vec::len).collect()
    }

    /// A topological order of the tasks (Kahn's algorithm).
    ///
    /// Ties are broken by task id, making the order deterministic. The graph
    /// is acyclic by construction, so this always succeeds.
    pub fn topological_order(&self) -> Vec<TaskId> {
        let n = self.task_count();
        let mut indeg = self.in_degrees();
        // A binary-heap keyed by id would also work; with the small fan-outs
        // of real workflows a sorted frontier vector is cheaper.
        let mut frontier: Vec<TaskId> = self.tasks().filter(|t| indeg[t.index()] == 0).collect();
        frontier.sort_unstable_by(|a, b| b.cmp(a)); // pop smallest id from the back
        let mut order = Vec::with_capacity(n);
        while let Some(t) = frontier.pop() {
            order.push(t);
            let mut added = false;
            for e in &self.succs[t.index()] {
                let d = &mut indeg[e.task.index()];
                *d -= 1;
                if *d == 0 {
                    frontier.push(e.task);
                    added = true;
                }
            }
            if added {
                frontier.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
        debug_assert_eq!(order.len(), n, "graph must be acyclic");
        order
    }

    /// Total compute cost over all tasks.
    pub fn total_cost(&self) -> f64 {
        self.costs.iter().sum()
    }

    /// Mean task compute cost (0 for an empty graph).
    pub fn mean_task_cost(&self) -> f64 {
        if self.costs.is_empty() {
            0.0
        } else {
            self.total_cost() / self.costs.len() as f64
        }
    }

    /// Mean dependency data size (0 when there are no dependencies).
    pub fn mean_dependency_cost(&self) -> f64 {
        if self.edge_count == 0 {
            return 0.0;
        }
        self.dependencies().map(|(_, _, c)| c).sum::<f64>() / self.edge_count as f64
    }

    /// Builds a simple chain `t0 -> t1 -> ... -> t{n-1}` with the given
    /// task costs and dependency costs (`deps.len() == costs.len() - 1`).
    pub fn chain(costs: &[f64], deps: &[f64]) -> Self {
        assert!(costs.is_empty() || deps.len() == costs.len() - 1);
        let mut g = TaskGraph::with_capacity(costs.len());
        let ids: Vec<TaskId> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| g.add_task(format!("t{i}"), c))
            .collect();
        for (i, &d) in deps.iter().enumerate() {
            g.add_dependency(ids[i], ids[i + 1], d).unwrap();
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 2.0);
        let c = g.add_task("c", 3.0);
        let d = g.add_task("d", 4.0);
        g.add_dependency(a, b, 0.1).unwrap();
        g.add_dependency(a, c, 0.2).unwrap();
        g.add_dependency(b, d, 0.3).unwrap();
        g.add_dependency(c, d, 0.4).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn add_task_assigns_dense_ids() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!((a.0, b.0, c.0, d.0), (0, 1, 2, 3));
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.dependency_count(), 4);
    }

    #[test]
    fn rejects_negative_and_nan_costs() {
        let mut g = TaskGraph::new();
        assert!(g.try_add_task("x", -1.0).is_err());
        assert!(g.try_add_task("x", f64::NAN).is_err());
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        assert!(g.add_dependency(a, b, f64::INFINITY).is_err());
        assert_eq!(g.add_dependency(a, b, 1.0), Ok(()));
        assert!(g.set_dependency_cost(a, b, -3.0).is_err());
        assert!(g.set_cost(a, f64::NAN).is_err());
    }

    #[test]
    fn rejects_cycles_self_loops_and_duplicates() {
        let (mut g, [a, b, _, d]) = diamond();
        assert_eq!(
            g.add_dependency(d, a, 1.0),
            Err(GraphError::CycleWouldForm { from: d, to: a })
        );
        assert_eq!(
            g.add_dependency(a, a, 1.0),
            Err(GraphError::SelfLoop { task: a })
        );
        assert_eq!(
            g.add_dependency(a, b, 1.0),
            Err(GraphError::DuplicateDependency { from: a, to: b })
        );
    }

    #[test]
    fn remove_dependency_keeps_lists_in_sync() {
        let (mut g, [a, b, _, d]) = diamond();
        g.remove_dependency(a, b).unwrap();
        assert!(!g.has_dependency(a, b));
        assert_eq!(g.dependency_count(), 3);
        assert!(g.predecessors(b).is_empty());
        // b -> d still present
        assert_eq!(g.dependency_cost(b, d), Some(0.3));
        assert!(g.remove_dependency(a, b).is_err());
    }

    #[test]
    fn set_dependency_cost_updates_both_directions() {
        let (mut g, [a, b, ..]) = diamond();
        g.set_dependency_cost(a, b, 9.0).unwrap();
        assert_eq!(g.dependency_cost(a, b), Some(9.0));
        assert_eq!(
            g.predecessors(b).iter().find(|e| e.task == a).unwrap().cost,
            9.0
        );
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topological_order();
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn topological_order_breaks_ties_by_id() {
        let mut g = TaskGraph::new();
        let _a = g.add_task("a", 1.0);
        let _b = g.add_task("b", 1.0);
        let _c = g.add_task("c", 1.0);
        // all independent -> order must be by id
        assert_eq!(g.topological_order(), vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn sources_and_sinks() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn reaches_is_transitive() {
        let (g, [a, b, _, d]) = diamond();
        assert!(g.reaches(a, d));
        assert!(g.reaches(b, d));
        assert!(!g.reaches(d, a));
        assert!(g.reaches(a, a));
    }

    #[test]
    fn chain_builder_matches_shape() {
        let g = TaskGraph::chain(&[1.0, 2.0, 3.0], &[0.5, 0.6]);
        assert_eq!(g.task_count(), 3);
        assert_eq!(g.dependency_count(), 2);
        assert_eq!(g.dependency_cost(TaskId(0), TaskId(1)), Some(0.5));
        assert_eq!(g.dependency_cost(TaskId(1), TaskId(2)), Some(0.6));
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(2)]);
    }

    #[test]
    fn mean_costs() {
        let (g, _) = diamond();
        assert!((g.mean_task_cost() - 2.5).abs() < 1e-12);
        assert!((g.mean_dependency_cost() - 0.25).abs() < 1e-12);
        assert_eq!(TaskGraph::new().mean_task_cost(), 0.0);
        assert_eq!(TaskGraph::new().mean_dependency_cost(), 0.0);
    }

    #[test]
    fn dependencies_iterator_yields_all_edges() {
        let (g, _) = diamond();
        let mut deps: Vec<_> = g.dependencies().collect();
        deps.sort_by_key(|a| (a.0, a.1));
        assert_eq!(deps.len(), 4);
        assert_eq!(deps[0], (TaskId(0), TaskId(1), 0.1));
    }
}
