//! ASCII Gantt-chart rendering of schedules, in the style of the paper's
//! Fig. 1c / Fig. 3 panels. Useful in examples and experiment logs.

use crate::{Instance, Schedule};

/// Renders `sched` as a fixed-width text Gantt chart.
///
/// Each node gets one row; time is scaled so the makespan spans `width`
/// character cells. Tasks are labelled by their graph name (truncated to the
/// cell width). Infinite makespans are rendered as a note instead of a chart.
pub fn render(inst: &Instance, sched: &Schedule, width: usize) -> String {
    let makespan = sched.makespan();
    if !makespan.is_finite() {
        return "<schedule with infinite makespan>\n".to_string();
    }
    if makespan <= 0.0 {
        return "<empty schedule>\n".to_string();
    }
    let width = width.max(20);
    let scale = width as f64 / makespan;
    let mut out = String::new();
    for v in inst.network.nodes() {
        let mut row = vec![b'.'; width];
        for &t in sched.node_tasks(v) {
            let a = sched.assignment(t);
            let s = ((a.start * scale).floor() as usize).min(width - 1);
            let e = ((a.finish * scale).ceil() as usize).clamp(s + 1, width);
            for c in &mut row[s..e] {
                *c = b'#';
            }
            let label = inst.graph.name(t).as_bytes();
            let cell = e - s;
            for (i, &ch) in label.iter().take(cell).enumerate() {
                row[s + i] = ch;
            }
        }
        out.push_str(&format!("{:>4} |", format!("v{}", v.0)));
        out.push_str(std::str::from_utf8(&row).expect("ascii row"));
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>5}0{}{:.3}\n",
        "",
        " ".repeat(width.saturating_sub(6)),
        makespan
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Network, NodeId, TaskGraph, TaskId};

    fn simple() -> (Instance, Schedule) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_dependency(a, b, 0.0).unwrap();
        let inst = Instance::new(Network::complete(&[1.0, 1.0], 1.0), g);
        let sched = Schedule::from_assignments(
            2,
            vec![
                Assignment {
                    task: TaskId(0),
                    node: NodeId(0),
                    start: 0.0,
                    finish: 1.0,
                },
                Assignment {
                    task: TaskId(1),
                    node: NodeId(1),
                    start: 1.0,
                    finish: 2.0,
                },
            ],
        );
        (inst, sched)
    }

    #[test]
    fn renders_one_row_per_node() {
        let (inst, sched) = simple();
        let s = render(&inst, &sched, 40);
        let rows: Vec<&str> = s.lines().collect();
        assert_eq!(rows.len(), 3); // 2 nodes + axis
        assert!(rows[0].contains('a'));
        assert!(rows[1].contains('b'));
        assert!(rows[2].contains("2.000"));
    }

    #[test]
    fn task_positions_reflect_times() {
        let (inst, sched) = simple();
        let s = render(&inst, &sched, 40);
        let rows: Vec<&str> = s.lines().collect();
        let a_col = rows[0].find('a').unwrap();
        let b_col = rows[1].find('b').unwrap();
        assert!(a_col < b_col, "a starts before b");
    }

    #[test]
    fn infinite_makespan_renders_note() {
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        let inst = Instance::new(Network::complete(&[0.0], 1.0), g);
        let sched = Schedule::from_assignments(
            1,
            vec![Assignment {
                task: TaskId(0),
                node: NodeId(0),
                start: 0.0,
                finish: f64::INFINITY,
            }],
        );
        assert!(render(&inst, &sched, 40).contains("infinite"));
    }

    #[test]
    fn empty_graph_renders_note() {
        let inst = Instance::new(Network::complete(&[1.0], 1.0), TaskGraph::new());
        let sched = Schedule::from_assignments(1, vec![]);
        assert!(render(&inst, &sched, 40).contains("empty"));
    }
}
