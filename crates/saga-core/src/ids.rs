//! Strongly-typed indices for tasks and compute nodes.
//!
//! Both wrap a `u32`: the paper's instances range from a handful of tasks to a
//! few thousand, so 32 bits is ample and keeps hot arrays of ids compact
//! (see the type-size guidance in the Rust Performance Book).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task in a [`crate::TaskGraph`].
///
/// Ids are dense: the `k`-th added task has id `k`, so they double as vector
/// indices via [`TaskId::index`].
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct TaskId(pub u32);

/// Identifier of a compute node in a [`crate::Network`].
///
/// Dense, like [`TaskId`].
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl TaskId {
    /// The id as a `usize` index into task-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The id as a `usize` index into node-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(v: u32) -> Self {
        TaskId(v)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_round_trips_through_index() {
        let t = TaskId(7);
        assert_eq!(t.index(), 7);
        assert_eq!(TaskId::from(7u32), t);
    }

    #[test]
    fn node_id_round_trips_through_index() {
        let v = NodeId(3);
        assert_eq!(v.index(), 3);
        assert_eq!(NodeId::from(3u32), v);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(TaskId(1).to_string(), "t1");
        assert_eq!(NodeId(2).to_string(), "v2");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(TaskId(1) < TaskId(2));
        assert!(NodeId(0) < NodeId(9));
    }
}
