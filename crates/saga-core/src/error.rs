//! Error types for graph mutation and schedule validation.

use crate::{NodeId, TaskId};
use std::fmt;

/// Errors raised when mutating a [`crate::TaskGraph`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum GraphError {
    /// Adding the dependency would create a directed cycle.
    CycleWouldForm { from: TaskId, to: TaskId },
    /// The dependency already exists.
    DuplicateDependency { from: TaskId, to: TaskId },
    /// A self-loop `t -> t` was requested.
    SelfLoop { task: TaskId },
    /// The referenced dependency does not exist.
    NoSuchDependency { from: TaskId, to: TaskId },
    /// The referenced task does not exist.
    NoSuchTask { task: TaskId },
    /// A task or dependency cost must be non-negative and not NaN.
    InvalidCost { value: f64 },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::CycleWouldForm { from, to } => {
                write!(f, "adding dependency {from} -> {to} would create a cycle")
            }
            GraphError::DuplicateDependency { from, to } => {
                write!(f, "dependency {from} -> {to} already exists")
            }
            GraphError::SelfLoop { task } => write!(f, "self dependency on {task}"),
            GraphError::NoSuchDependency { from, to } => {
                write!(f, "no dependency {from} -> {to}")
            }
            GraphError::NoSuchTask { task } => write!(f, "no task {task}"),
            GraphError::InvalidCost { value } => {
                write!(f, "cost {value} is invalid (must be finite and >= 0)")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Violations detected by [`crate::Schedule::verify`].
///
/// These mirror the validity constraints of the paper's Section II: every task
/// scheduled exactly once, no two tasks overlapping on a node, and every task
/// starting only after all its dependencies have finished *and* their outputs
/// have arrived at the task's node.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ScheduleError {
    /// A task from the instance was never scheduled.
    MissingTask { task: TaskId },
    /// A task references a node outside the network.
    UnknownNode { task: TaskId, node: NodeId },
    /// A task's recorded finish differs from `start + exec_time`.
    WrongFinishTime {
        task: TaskId,
        expected: f64,
        actual: f64,
    },
    /// Two tasks overlap in time on the same node.
    Overlap {
        node: NodeId,
        first: TaskId,
        second: TaskId,
    },
    /// A precedence (+ communication) constraint is violated.
    PrecedenceViolation {
        from: TaskId,
        to: TaskId,
        required: f64,
        actual: f64,
    },
    /// A start time is negative or NaN.
    InvalidStart { task: TaskId, start: f64 },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::MissingTask { task } => write!(f, "task {task} was not scheduled"),
            ScheduleError::UnknownNode { task, node } => {
                write!(f, "task {task} scheduled on unknown node {node}")
            }
            ScheduleError::WrongFinishTime {
                task,
                expected,
                actual,
            } => write!(
                f,
                "task {task} finish time {actual} != start + exec = {expected}"
            ),
            ScheduleError::Overlap {
                node,
                first,
                second,
            } => write!(f, "tasks {first} and {second} overlap on node {node}"),
            ScheduleError::PrecedenceViolation {
                from,
                to,
                required,
                actual,
            } => write!(
                f,
                "task {to} starts at {actual} before data from {from} arrives at {required}"
            ),
            ScheduleError::InvalidStart { task, start } => {
                write!(f, "task {task} has invalid start time {start}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_error_messages_are_informative() {
        let e = GraphError::CycleWouldForm {
            from: TaskId(0),
            to: TaskId(1),
        };
        assert!(e.to_string().contains("cycle"));
        assert!(GraphError::InvalidCost { value: -1.0 }
            .to_string()
            .contains("-1"));
    }

    #[test]
    fn schedule_error_messages_name_the_tasks() {
        let e = ScheduleError::PrecedenceViolation {
            from: TaskId(0),
            to: TaskId(1),
            required: 2.0,
            actual: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains("t0") && s.contains("t1"));
    }
}
