//! Stochastic problem instances — the paper's first-named future-work item
//! ("support for stochastic problem instances, with stochastic task costs,
//! data sizes, computation speeds, and communication costs").
//!
//! A [`StochasticInstance`] attaches a [`Dist`] to every weight of a
//! deterministic template. Three evaluation modes matter for offline
//! scheduling under uncertainty:
//!
//! * [`StochasticInstance::realize`] — draw one concrete [`Instance`];
//! * [`StochasticInstance::expected_instance`] — the mean-weight instance a
//!   static scheduler plans against;
//! * [`simulate_fixed`] — execute a *fixed* schedule (assignments + per-node
//!   order decided up front) under a different realization, re-deriving
//!   start/finish times — the makespan the plan actually achieves when
//!   reality deviates from the means.

use crate::dist::{clipped_gaussian, standard_normal};
use crate::{Assignment, Instance, NodeId, Schedule, TaskId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A weight distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// A deterministic weight.
    Fixed(f64),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// The paper's clipped gaussian.
    ClippedGaussian {
        /// Mean of the underlying normal.
        mean: f64,
        /// Standard deviation of the underlying normal.
        std: f64,
        /// Clip floor.
        min: f64,
        /// Clip ceiling.
        max: f64,
    },
}

impl Dist {
    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Fixed(x) => x,
            Dist::Uniform { lo, hi } => {
                if lo == hi {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
            Dist::ClippedGaussian {
                mean,
                std,
                min,
                max,
            } => clipped_gaussian(rng, mean, std, min, max),
        }
    }

    /// The distribution mean (clipping bias of the gaussian approximated by
    /// its unclipped mean clamped into range — exact for symmetric clips).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Fixed(x) => x,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::ClippedGaussian { mean, min, max, .. } => mean.clamp(min, max),
        }
    }

    /// A relative-jitter helper: `ClippedGaussian(mean, cv * mean)` clipped
    /// to `[(1 - 3cv) * mean, (1 + 3cv) * mean]` (never below 0).
    pub fn jitter(mean: f64, cv: f64) -> Dist {
        Dist::ClippedGaussian {
            mean,
            std: cv * mean,
            min: (mean * (1.0 - 3.0 * cv)).max(0.0),
            max: mean * (1.0 + 3.0 * cv),
        }
    }

    /// Exercises the RNG identically to [`Dist::sample`] without using the
    /// value (keeps realization streams aligned across elements).
    fn burn<R: Rng + ?Sized>(rng: &mut R) {
        let _ = standard_normal(rng);
    }
}

/// An instance whose weights are random variables over a fixed topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StochasticInstance {
    /// Template topology (weights unused during realization).
    template: Instance,
    task_costs: Vec<Dist>,
    dep_costs: Vec<(TaskId, TaskId, Dist)>,
    speeds: Vec<Dist>,
    /// Finite links only; infinite links stay infinite.
    links: Vec<(NodeId, NodeId, Dist)>,
}

impl StochasticInstance {
    /// Wraps a deterministic instance with every weight jittered at
    /// coefficient-of-variation `cv` around its current value.
    pub fn jittered(inst: &Instance, cv: f64) -> Self {
        let task_costs = inst
            .graph
            .tasks()
            .map(|t| Dist::jitter(inst.graph.cost(t), cv))
            .collect();
        let dep_costs = inst
            .graph
            .dependencies()
            .map(|(a, b, c)| (a, b, Dist::jitter(c, cv)))
            .collect();
        let speeds = inst
            .network
            .nodes()
            .map(|v| Dist::jitter(inst.network.speed(v), cv))
            .collect();
        let mut links = Vec::new();
        for u in inst.network.nodes() {
            for v in inst.network.nodes() {
                if u < v && inst.network.link(u, v).is_finite() {
                    links.push((u, v, Dist::jitter(inst.network.link(u, v), cv)));
                }
            }
        }
        StochasticInstance {
            template: inst.clone(),
            task_costs,
            dep_costs,
            speeds,
            links,
        }
    }

    /// Builds from explicit distributions.
    ///
    /// # Panics
    /// Panics if the distribution lists do not match the template's shape.
    pub fn new(
        template: Instance,
        task_costs: Vec<Dist>,
        dep_costs: Vec<(TaskId, TaskId, Dist)>,
        speeds: Vec<Dist>,
        links: Vec<(NodeId, NodeId, Dist)>,
    ) -> Self {
        assert_eq!(task_costs.len(), template.graph.task_count());
        assert_eq!(dep_costs.len(), template.graph.dependency_count());
        assert_eq!(speeds.len(), template.network.node_count());
        StochasticInstance {
            template,
            task_costs,
            dep_costs,
            speeds,
            links,
        }
    }

    /// The fixed topology shared by all realizations.
    pub fn template(&self) -> &Instance {
        &self.template
    }

    /// Draws a concrete instance.
    pub fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> Instance {
        let mut inst = self.template.clone();
        for (t, d) in self.template.graph.tasks().zip(&self.task_costs) {
            let v = d.sample(rng).max(0.0);
            inst.graph.set_cost(t, v).expect("non-negative sample");
        }
        for (a, b, d) in &self.dep_costs {
            let v = d.sample(rng).max(0.0);
            inst.graph
                .set_dependency_cost(*a, *b, v)
                .expect("edge exists in template");
        }
        for (v, d) in self.template.network.nodes().zip(&self.speeds) {
            inst.network.set_speed(v, d.sample(rng).max(0.0));
        }
        for (u, v, d) in &self.links {
            inst.network.set_link(*u, *v, d.sample(rng).max(0.0));
        }
        // keep the stream length fixed regardless of template weights
        Dist::burn(rng);
        inst
    }

    /// The deterministic mean-weight instance (what a static scheduler sees).
    pub fn expected_instance(&self) -> Instance {
        let mut inst = self.template.clone();
        for (t, d) in self.template.graph.tasks().zip(&self.task_costs) {
            inst.graph.set_cost(t, d.mean().max(0.0)).unwrap();
        }
        for (a, b, d) in &self.dep_costs {
            inst.graph
                .set_dependency_cost(*a, *b, d.mean().max(0.0))
                .unwrap();
        }
        for (v, d) in self.template.network.nodes().zip(&self.speeds) {
            inst.network.set_speed(v, d.mean().max(0.0));
        }
        for (u, v, d) in &self.links {
            inst.network.set_link(*u, *v, d.mean().max(0.0));
        }
        inst
    }
}

/// Executes a fixed plan under a (possibly different) realization: node
/// assignments and per-node execution order are kept, start times are
/// re-derived as `max(previous task on the node finishes, all input data
/// arrives)`. Returns the re-timed schedule.
///
/// # Panics
/// Panics if `plan` does not cover exactly the tasks of `realized`.
pub fn simulate_fixed(plan: &Schedule, realized: &Instance) -> Schedule {
    let g = &realized.graph;
    let n = &realized.network;
    assert_eq!(plan.assignments().len(), g.task_count());

    // execution order: per node, the plan's recorded order; across nodes we
    // process tasks in a precedence-respecting sweep
    let mut node_next: Vec<usize> = vec![0; plan.node_count()];
    let mut node_free: Vec<f64> = vec![0.0; plan.node_count()];
    let mut finish: Vec<Option<f64>> = vec![None; g.task_count()];
    let mut out: Vec<Assignment> = Vec::with_capacity(g.task_count());

    let mut progressed = true;
    while out.len() < g.task_count() {
        assert!(
            progressed,
            "fixed plan deadlocked under realization (cyclic node orders)"
        );
        progressed = false;
        for v in 0..plan.node_count() {
            let queue = plan.node_tasks(NodeId(v as u32));
            while node_next[v] < queue.len() {
                let t = queue[node_next[v]];
                // ready iff every predecessor has finished
                let mut data_ready = 0.0f64;
                let mut ready = true;
                for e in g.predecessors(t) {
                    match finish[e.task.index()] {
                        None => {
                            ready = false;
                            break;
                        }
                        Some(f) => {
                            let from = plan.assignment(e.task).node;
                            let arrive = f + n.comm_time(e.cost, from, NodeId(v as u32));
                            data_ready = data_ready.max(arrive);
                        }
                    }
                }
                if !ready {
                    break;
                }
                let start = node_free[v].max(data_ready);
                let fin = start + n.exec_time(g.cost(t), NodeId(v as u32));
                node_free[v] = fin;
                finish[t.index()] = Some(fin);
                out.push(Assignment {
                    task: t,
                    node: NodeId(v as u32),
                    start,
                    finish: fin,
                });
                node_next[v] += 1;
                progressed = true;
            }
        }
    }
    Schedule::from_assignments(plan.node_count(), out)
}

/// Monte-Carlo estimate of the makespan a statically planned schedule
/// achieves over `samples` realizations: returns `(mean, p95)`.
pub fn static_plan_makespan<R: Rng + ?Sized>(
    plan: &Schedule,
    stoch: &StochasticInstance,
    samples: usize,
    rng: &mut R,
) -> (f64, f64) {
    assert!(samples > 0);
    let mut ms: Vec<f64> = (0..samples)
        .map(|_| {
            let realized = stoch.realize(rng);
            simulate_fixed(plan, &realized).makespan()
        })
        .collect();
    ms.sort_by(f64::total_cmp);
    let mean = ms.iter().sum::<f64>() / samples as f64;
    let p95 = ms[((samples - 1) as f64 * 0.95).round() as usize];
    (mean, p95)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, TaskGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> Instance {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 2.0);
        let b = g.add_task("b", 3.0);
        let c = g.add_task("c", 1.0);
        g.add_dependency(a, b, 1.0).unwrap();
        g.add_dependency(a, c, 1.0).unwrap();
        Instance::new(Network::complete(&[1.0, 2.0], 1.0), g)
    }

    #[test]
    fn dist_means_and_bounds() {
        assert_eq!(Dist::Fixed(3.0).mean(), 3.0);
        assert_eq!(Dist::Uniform { lo: 1.0, hi: 3.0 }.mean(), 2.0);
        let j = Dist::jitter(10.0, 0.1);
        assert_eq!(j.mean(), 10.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let x = j.sample(&mut rng);
            assert!((7.0..=13.0).contains(&x));
        }
    }

    #[test]
    fn zero_cv_realizations_equal_template() {
        let inst = base();
        let stoch = StochasticInstance::jittered(&inst, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let r = stoch.realize(&mut rng);
        assert_eq!(r.to_json(), inst.to_json());
        assert_eq!(stoch.expected_instance().to_json(), inst.to_json());
    }

    #[test]
    fn realizations_vary_but_topology_is_fixed() {
        let inst = base();
        let stoch = StochasticInstance::jittered(&inst, 0.2);
        let mut rng = StdRng::seed_from_u64(2);
        let r1 = stoch.realize(&mut rng);
        let r2 = stoch.realize(&mut rng);
        assert_ne!(r1.graph.cost(TaskId(0)), r2.graph.cost(TaskId(0)));
        assert_eq!(r1.graph.dependency_count(), inst.graph.dependency_count());
        assert_eq!(r1.network.node_count(), inst.network.node_count());
    }

    #[test]
    fn simulate_fixed_reproduces_plan_on_expected_instance() {
        // executing the plan on the very instance it was planned for yields
        // times at least as good (ties) for append-style schedules
        let inst = base();
        let plan = {
            // simple hand plan: a on v1, b on v1, c on v0
            let mut bld = crate::ScheduleBuilder::new(&inst);
            bld.place(TaskId(0), NodeId(1), 0.0);
            let (s, _) = bld.eft(TaskId(1), NodeId(1), false);
            bld.place(TaskId(1), NodeId(1), s);
            let (s, _) = bld.eft(TaskId(2), NodeId(0), false);
            bld.place(TaskId(2), NodeId(0), s);
            bld.finish()
        };
        let sim = simulate_fixed(&plan, &inst);
        sim.verify(&inst).unwrap();
        assert!((sim.makespan() - plan.makespan()).abs() < 1e-9);
    }

    #[test]
    fn simulated_schedules_are_valid_under_perturbed_reality() {
        let inst = base();
        let stoch = StochasticInstance::jittered(&inst, 0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let plan = {
            let mut bld = crate::ScheduleBuilder::new(&inst);
            for t in inst.graph.topological_order() {
                let (s, _) = bld.eft(t, NodeId(t.index() as u32 % 2), false);
                bld.place(t, NodeId(t.index() as u32 % 2), s);
            }
            bld.finish()
        };
        for _ in 0..20 {
            let realized = stoch.realize(&mut rng);
            let sim = simulate_fixed(&plan, &realized);
            sim.verify(&realized).unwrap();
        }
    }

    #[test]
    fn static_plan_makespan_mean_below_p95() {
        let inst = base();
        let stoch = StochasticInstance::jittered(&inst, 0.25);
        let plan = {
            let mut bld = crate::ScheduleBuilder::new(&inst);
            for t in inst.graph.topological_order() {
                let (s, _) = bld.eft(t, NodeId(0), false);
                bld.place(t, NodeId(0), s);
            }
            bld.finish()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let (mean, p95) = static_plan_makespan(&plan, &stoch, 200, &mut rng);
        assert!(mean > 0.0 && p95 >= mean);
    }

    #[test]
    fn jitter_preserves_infinite_links() {
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        let inst = Instance::new(Network::complete(&[1.0, 1.0], f64::INFINITY), g);
        let stoch = StochasticInstance::jittered(&inst, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let r = stoch.realize(&mut rng);
        assert!(r.network.link(NodeId(0), NodeId(1)).is_infinite());
    }
}
