//! Task ranking utilities shared by list schedulers.
//!
//! These implement the standard HEFT/CPoP quantities: average execution time
//! over all nodes, average communication time over all (ordered, distinct)
//! node pairs, upward rank, downward rank, and the critical path they induce.

use crate::{Instance, TaskId};

/// Precomputed average costs for an instance.
///
/// `avg_exec[t] = c(t) * mean_v 1/s(v)` and each dependency's average
/// communication time is `c(t,t') * mean_{u != v} 1/s(u,v)`.
#[derive(Debug, Clone)]
pub struct AverageCosts {
    /// Average execution time per task, indexed by task id.
    pub exec: Vec<f64>,
    /// Multiplier converting a data size into an average communication time.
    pub inv_link: f64,
}

impl AverageCosts {
    /// Computes average costs for `inst`. Zero-cost tasks and zero-size
    /// dependencies average to zero time even when mean inverse rates are
    /// infinite (zero-speed networks) — `0 * inf` would otherwise be NaN and
    /// poison every rank comparison downstream.
    pub fn new(inst: &Instance) -> Self {
        let inv_speed = inst.network.mean_inverse_speed();
        AverageCosts {
            exec: inst
                .graph
                .tasks()
                .map(|t| {
                    let c = inst.graph.cost(t);
                    if c == 0.0 {
                        0.0
                    } else {
                        c * inv_speed
                    }
                })
                .collect(),
            inv_link: inst.network.mean_inverse_link(),
        }
    }

    /// Average communication time of a dependency carrying `bytes`.
    #[inline]
    pub fn comm(&self, bytes: f64) -> f64 {
        if bytes == 0.0 {
            0.0
        } else {
            bytes * self.inv_link
        }
    }
}

/// Upward rank of every task (HEFT's priority):
/// `rank_u(t) = avg_exec(t) + max_{s in succ(t)} (avg_comm(t,s) + rank_u(s))`.
pub fn upward_rank(inst: &Instance) -> Vec<f64> {
    let avg = AverageCosts::new(inst);
    upward_rank_with(inst, &avg)
}

/// [`upward_rank`] reusing precomputed [`AverageCosts`].
pub fn upward_rank_with(inst: &Instance, avg: &AverageCosts) -> Vec<f64> {
    let order = inst.graph.topological_order();
    let mut rank = vec![0.0f64; inst.graph.task_count()];
    for &t in order.iter().rev() {
        let mut best = 0.0f64;
        for e in inst.graph.successors(t) {
            best = best.max(avg.comm(e.cost) + rank[e.task.index()]);
        }
        rank[t.index()] = avg.exec[t.index()] + best;
    }
    rank
}

/// Downward rank of every task (CPoP's second component):
/// `rank_d(t) = max_{p in pred(t)} (rank_d(p) + avg_exec(p) + avg_comm(p,t))`,
/// zero for source tasks.
pub fn downward_rank(inst: &Instance) -> Vec<f64> {
    let avg = AverageCosts::new(inst);
    downward_rank_with(inst, &avg)
}

/// [`downward_rank`] reusing precomputed [`AverageCosts`].
pub fn downward_rank_with(inst: &Instance, avg: &AverageCosts) -> Vec<f64> {
    let order = inst.graph.topological_order();
    let mut rank = vec![0.0f64; inst.graph.task_count()];
    for &t in &order {
        for e in inst.graph.successors(t) {
            let via = rank[t.index()] + avg.exec[t.index()] + avg.comm(e.cost);
            let r = &mut rank[e.task.index()];
            *r = r.max(via);
        }
    }
    rank
}

/// The critical path of the instance under average costs.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Length `|CP| = max_t rank_u(t) + rank_d(t)`.
    pub length: f64,
    /// One maximal chain achieving the length, in topological order.
    pub tasks: Vec<TaskId>,
    /// Membership mask over *all* tasks achieving the maximum (indexed by
    /// task id). This is the set CPoP pins to the fastest node: when several
    /// parallel branches tie for the critical length, CPoP serializes all of
    /// them (cf. the paper's Fig. 3e/3g, where every task lands on one node).
    pub on_path: Vec<bool>,
}

/// Extracts the critical path: all tasks whose `rank_u + rank_d` equals the
/// maximum (within a relative tolerance), plus one representative chain
/// walked from a critical source along critical successors.
pub fn critical_path(inst: &Instance) -> CriticalPath {
    let avg = AverageCosts::new(inst);
    let up = upward_rank_with(inst, &avg);
    let down = downward_rank_with(inst, &avg);
    let n = inst.graph.task_count();
    let mut length = 0.0f64;
    for i in 0..n {
        let l = up[i] + down[i];
        if l > length {
            length = l;
        }
    }
    let tol = 1e-9 * length.abs().max(1.0);
    let is_cp = |i: usize| {
        (up[i] + down[i] - length).abs() <= tol
            || (up[i] + down[i]).is_infinite() && length.is_infinite()
    };

    let mut on_path = vec![false; n];
    for (i, flag) in on_path.iter_mut().enumerate() {
        *flag = is_cp(i);
    }

    // Representative chain: start from a critical source, repeatedly follow
    // a critical successor.
    let mut tasks = Vec::new();
    let mut in_chain = vec![false; n];
    let start = inst.graph.sources().into_iter().find(|t| is_cp(t.index()));
    if let Some(mut cur) = start {
        tasks.push(cur);
        in_chain[cur.index()] = true;
        'walk: loop {
            for e in inst.graph.successors(cur) {
                if is_cp(e.task.index()) && !in_chain[e.task.index()] {
                    cur = e.task;
                    tasks.push(cur);
                    in_chain[cur.index()] = true;
                    continue 'walk;
                }
            }
            break;
        }
    }
    CriticalPath {
        length,
        tasks,
        on_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, TaskGraph};

    /// Chain a(1) -0.5-> b(2) -0.5-> c(3) on two unit-speed nodes, link 1.
    fn chain_instance() -> Instance {
        let g = TaskGraph::chain(&[1.0, 2.0, 3.0], &[0.5, 0.5]);
        Instance::new(Network::complete(&[1.0, 1.0], 1.0), g)
    }

    #[test]
    fn average_costs_on_homogeneous_network() {
        let inst = chain_instance();
        let avg = AverageCosts::new(&inst);
        assert_eq!(avg.exec, vec![1.0, 2.0, 3.0]);
        assert_eq!(avg.comm(0.5), 0.5);
    }

    #[test]
    fn upward_rank_of_chain_accumulates() {
        let inst = chain_instance();
        let up = upward_rank(&inst);
        // c: 3; b: 2 + 0.5 + 3 = 5.5; a: 1 + 0.5 + 5.5 = 7
        assert_eq!(up, vec![7.0, 5.5, 3.0]);
    }

    #[test]
    fn downward_rank_of_chain_accumulates() {
        let inst = chain_instance();
        let down = downward_rank(&inst);
        // a: 0; b: 0 + 1 + 0.5 = 1.5; c: 1.5 + 2 + 0.5 = 4
        assert_eq!(down, vec![0.0, 1.5, 4.0]);
    }

    #[test]
    fn critical_path_of_chain_is_whole_chain() {
        let inst = chain_instance();
        let cp = critical_path(&inst);
        assert_eq!(cp.length, 7.0);
        assert_eq!(cp.tasks, vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert!(cp.on_path.iter().all(|&b| b));
    }

    #[test]
    fn critical_path_picks_heavier_branch() {
        // a -> b (heavy), a -> c (light), b -> d, c -> d
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 10.0);
        let c = g.add_task("c", 1.0);
        let d = g.add_task("d", 1.0);
        g.add_dependency(a, b, 0.0).unwrap();
        g.add_dependency(a, c, 0.0).unwrap();
        g.add_dependency(b, d, 0.0).unwrap();
        g.add_dependency(c, d, 0.0).unwrap();
        let inst = Instance::new(Network::complete(&[1.0], 1.0), g);
        let cp = critical_path(&inst);
        assert_eq!(cp.tasks, vec![a, b, d]);
        assert_eq!(cp.length, 12.0);
        assert!(!cp.on_path[c.index()]);
    }

    #[test]
    fn upward_plus_downward_is_constant_on_critical_path() {
        let inst = chain_instance();
        let up = upward_rank(&inst);
        let down = downward_rank(&inst);
        let cp = critical_path(&inst);
        for t in &cp.tasks {
            assert!((up[t.index()] + down[t.index()] - cp.length).abs() < 1e-9);
        }
    }

    #[test]
    fn heterogeneous_speeds_scale_ranks() {
        let g = TaskGraph::chain(&[2.0], &[]);
        let inst = Instance::new(Network::complete(&[1.0, 2.0], 1.0), g);
        let up = upward_rank(&inst);
        // mean inverse speed = (1 + 0.5)/2 = 0.75 -> avg exec = 1.5
        assert_eq!(up, vec![1.5]);
    }
}
