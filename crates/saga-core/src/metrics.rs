//! Schedule quality metrics beyond makespan — the paper's future-work list
//! names throughput, energy consumption, and (monetary) cost. These are
//! plain functions over a (validated) [`Schedule`] so any of them can serve
//! as an adversarial objective (see `saga-pisa`'s generic annealer).

use crate::{Instance, Schedule};

/// A linear power model: each node draws `active` watts while executing and
/// `idle` watts otherwise (until the schedule's makespan); moving one data
/// unit across a finite link costs `comm_energy_per_unit` joules at both
/// endpoints combined.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    /// Active power per node, indexed by node id.
    pub active: Vec<f64>,
    /// Idle power per node, indexed by node id.
    pub idle: Vec<f64>,
    /// Energy per transferred data unit over finite links.
    pub comm_energy_per_unit: f64,
}

impl EnergyModel {
    /// A model where active power scales with node speed (faster nodes burn
    /// more), idle power is a fixed fraction of active, and communication
    /// costs `comm` joules per data unit.
    pub fn speed_proportional(inst: &Instance, idle_fraction: f64, comm: f64) -> Self {
        let active: Vec<f64> = inst
            .network
            .nodes()
            .map(|v| inst.network.speed(v))
            .collect();
        let idle = active.iter().map(|a| a * idle_fraction).collect();
        EnergyModel {
            active,
            idle,
            comm_energy_per_unit: comm,
        }
    }
}

/// Total energy of a schedule under `model`: active energy over busy
/// intervals, idle energy over the rest of `[0, makespan]`, plus
/// communication energy for every dependency crossing nodes.
///
/// Returns infinity if the makespan is infinite.
pub fn energy(inst: &Instance, sched: &Schedule, model: &EnergyModel) -> f64 {
    let makespan = sched.makespan();
    if !makespan.is_finite() {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    for v in inst.network.nodes() {
        let busy: f64 = sched
            .node_tasks(v)
            .iter()
            .map(|&t| {
                let a = sched.assignment(t);
                a.finish - a.start
            })
            .sum();
        total += busy * model.active[v.index()] + (makespan - busy) * model.idle[v.index()];
    }
    for (from, to, bytes) in inst.graph.dependencies() {
        let fa = sched.assignment(from);
        let ta = sched.assignment(to);
        if fa.node != ta.node && bytes > 0.0 {
            total += bytes * model.comm_energy_per_unit;
        }
    }
    total
}

/// Throughput: tasks completed per unit time (`|T| / makespan`); zero for an
/// infinite makespan.
pub fn throughput(inst: &Instance, sched: &Schedule) -> f64 {
    let m = sched.makespan();
    if !m.is_finite() || m == 0.0 {
        if m == 0.0 && inst.graph.task_count() > 0 {
            return f64::INFINITY;
        }
        return 0.0;
    }
    inst.graph.task_count() as f64 / m
}

/// Monetary cost under per-node hourly prices: each node is billed for its
/// *occupied span* (first start to last finish), the cloud billing model for
/// reserved workers. Nodes never used cost nothing.
pub fn rental_cost(inst: &Instance, sched: &Schedule, price: &[f64]) -> f64 {
    assert_eq!(price.len(), inst.network.node_count());
    let mut total = 0.0;
    for v in inst.network.nodes() {
        let tasks = sched.node_tasks(v);
        if tasks.is_empty() {
            continue;
        }
        let first = sched.assignment(tasks[0]).start;
        let last = sched.assignment(tasks[tasks.len() - 1]).finish;
        total += (last - first) * price[v.index()];
    }
    total
}

/// Node utilization: busy time over `|V| * makespan` (0 when empty or
/// unbounded). A diagnostic for over-parallelization analyses.
pub fn utilization(inst: &Instance, sched: &Schedule) -> f64 {
    let m = sched.makespan();
    if !m.is_finite() || m == 0.0 || inst.network.node_count() == 0 {
        return 0.0;
    }
    let busy: f64 = inst
        .network
        .nodes()
        .flat_map(|v| sched.node_tasks(v).iter())
        .map(|&t| {
            let a = sched.assignment(t);
            a.finish - a.start
        })
        .sum();
    busy / (m * inst.network.node_count() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Network, NodeId, TaskGraph, TaskId};

    fn two_node_case() -> (Instance, Schedule) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 2.0);
        let b = g.add_task("b", 2.0);
        g.add_dependency(a, b, 4.0).unwrap();
        let inst = Instance::new(Network::complete(&[1.0, 1.0], 2.0), g);
        // a on v0 [0,2]; b on v1 after 2s comm: [4,6]
        let sched = Schedule::from_assignments(
            2,
            vec![
                Assignment {
                    task: TaskId(0),
                    node: NodeId(0),
                    start: 0.0,
                    finish: 2.0,
                },
                Assignment {
                    task: TaskId(1),
                    node: NodeId(1),
                    start: 4.0,
                    finish: 6.0,
                },
            ],
        );
        sched.verify(&inst).unwrap();
        (inst, sched)
    }

    #[test]
    fn energy_accounts_active_idle_and_comm() {
        let (inst, sched) = two_node_case();
        let model = EnergyModel {
            active: vec![10.0, 10.0],
            idle: vec![1.0, 1.0],
            comm_energy_per_unit: 0.5,
        };
        // busy 2s each at 10W = 40; idle 4s each at 1W = 8; comm 4 units * 0.5 = 2
        assert!((energy(&inst, &sched, &model) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn colocated_dependency_costs_no_comm_energy() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_dependency(a, b, 100.0).unwrap();
        let inst = Instance::new(Network::complete(&[1.0], 1.0), g);
        let sched = Schedule::from_assignments(
            1,
            vec![
                Assignment {
                    task: a,
                    node: NodeId(0),
                    start: 0.0,
                    finish: 1.0,
                },
                Assignment {
                    task: b,
                    node: NodeId(0),
                    start: 1.0,
                    finish: 2.0,
                },
            ],
        );
        let model = EnergyModel {
            active: vec![1.0],
            idle: vec![0.0],
            comm_energy_per_unit: 99.0,
        };
        assert!((energy(&inst, &sched, &model) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_and_utilization() {
        let (inst, sched) = two_node_case();
        assert!((throughput(&inst, &sched) - 2.0 / 6.0).abs() < 1e-12);
        // busy 4 over 2 nodes * 6 = 12
        assert!((utilization(&inst, &sched) - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn rental_cost_bills_occupied_spans() {
        let (inst, sched) = two_node_case();
        // v0 span [0,2] * 3 + v1 span [4,6] * 5 = 6 + 10
        assert!((rental_cost(&inst, &sched, &[3.0, 5.0]) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn speed_proportional_model_shapes() {
        let (inst, _) = two_node_case();
        let m = EnergyModel::speed_proportional(&inst, 0.2, 1.0);
        assert_eq!(m.active, vec![1.0, 1.0]);
        assert_eq!(m.idle, vec![0.2, 0.2]);
    }

    #[test]
    fn infinite_makespan_propagates() {
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        let inst = Instance::new(Network::complete(&[0.0], 1.0), g);
        let sched = Schedule::from_assignments(
            1,
            vec![Assignment {
                task: TaskId(0),
                node: NodeId(0),
                start: 0.0,
                finish: f64::INFINITY,
            }],
        );
        let model = EnergyModel {
            active: vec![1.0],
            idle: vec![0.0],
            comm_energy_per_unit: 0.0,
        };
        assert!(energy(&inst, &sched, &model).is_infinite());
        assert_eq!(throughput(&inst, &sched), 0.0);
        assert_eq!(utilization(&inst, &sched), 0.0);
    }
}
