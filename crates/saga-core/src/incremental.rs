//! Incremental delta-evaluation support: dirty regions and run traces.
//!
//! The adversarial annealer mutates one weight, one dependency, or one task
//! per iteration and then re-evaluates two schedulers from scratch. This
//! module carries the two pieces of state that let those re-evaluations
//! reuse the previous run instead:
//!
//! * a [`DirtyRegion`] — the set of tasks whose *placement inputs* (execution
//!   row, predecessor edges) changed since the last evaluation, produced
//!   from the perturbation's undo record and accumulated across rejected
//!   iterations;
//! * a [`RunTrace`] — the placement sequence `(task, node, start)` of a
//!   scheduler's previous run, plus a scheduler-defined auxiliary row (e.g.
//!   the priority vector whose ties the scheduler broke), recorded by the
//!   kernel while the run executes.
//!
//! A scheduler's incremental entry point replays the trace's prefix with
//! [`SchedContext::place`](crate::SchedContext::place) — skipping every
//! EFT/data-ready scan — until the dirty region reaches the frontier (or a
//! scheduler-specific decision check fails), then falls back to its normal
//! decision loop from that position. Replay is only performed when it is
//! provably bit-identical to the full run; the golden-determinism and
//! golden-PISA suites pin this.
//!
//! Setting the environment variable `SAGA_NO_INCREMENTAL` (to anything but
//! `0`) forces every evaluation down the full-rebuild path — CI runs the
//! golden suites once with the toggle set and diffs, so both paths stay
//! value-identical.

use crate::{NodeId, SchedContext, TaskId};

/// Maximum number of placement-dirty tasks tracked exactly; merges that
/// overflow this degrade to [`DirtyRegion::full`] (a rare multi-reject
/// pile-up — correct either way, full is just slower).
const MAX_DIRTY: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// Nothing changed since the trace was recorded.
    Clean,
    /// Only the listed tasks' placement inputs changed.
    Tasks,
    /// Anything may have changed (network edits, unknown perturbations).
    Full,
}

/// A conservative description of what changed in an instance since the last
/// evaluation. See the [module docs](self).
///
/// `tasks` lists tasks whose *placement inputs* changed: their execution
/// row (task-weight edit) or their predecessor edge set/costs (dependency
/// edits target the edge's destination). `edge_tasks` additionally lists
/// tasks whose adjacent edge *costs* must be refreshed in the kernel's CSR
/// views without being placement-dirty themselves (the source of an edited
/// dependency: its successor-edge cost feeds rank computations but not its
/// own placement decision).
#[derive(Debug, Clone, Copy)]
pub struct DirtyRegion {
    scope: Scope,
    tasks: [TaskId; MAX_DIRTY],
    len: u8,
    edge_tasks: [TaskId; 2],
    edge_len: u8,
    structural: bool,
    /// For `Full` regions caused by a *single known network edit*, the
    /// touched node / link — the kernel then refreshes one execution
    /// column or one link entry instead of re-verifying every table.
    /// `refresh_unknown` forces the verify-everything rebuild.
    node_touched: Option<NodeId>,
    link_touched: Option<(NodeId, NodeId)>,
    /// For a *single* structural edit, the edge and whether it was added —
    /// the kernel then splices one CSR entry instead of rebuilding the
    /// views. `None` with `structural` set means "rebuild from the graph".
    struct_edit: Option<(TaskId, TaskId, bool)>,
    refresh_unknown: bool,
}

impl DirtyRegion {
    const EMPTY: DirtyRegion = DirtyRegion {
        scope: Scope::Clean,
        tasks: [TaskId(0); MAX_DIRTY],
        len: 0,
        edge_tasks: [TaskId(0); 2],
        edge_len: 0,
        structural: false,
        node_touched: None,
        link_touched: None,
        struct_edit: None,
        refresh_unknown: false,
    };

    /// Nothing changed — the previous evaluation's results still hold.
    pub fn clean() -> Self {
        DirtyRegion::EMPTY
    }

    /// Anything may have changed — evaluate from scratch.
    pub fn full() -> Self {
        DirtyRegion {
            scope: Scope::Full,
            refresh_unknown: true,
            ..DirtyRegion::EMPTY
        }
    }

    /// A node's compute speed changed: every task's execution time on that
    /// node (and every average/ranking) moves, so placement replay is off
    /// the table — but the kernel can refresh one execution column instead
    /// of re-verifying every table.
    pub fn node_weight(v: NodeId) -> Self {
        DirtyRegion {
            scope: Scope::Full,
            node_touched: Some(v),
            ..DirtyRegion::EMPTY
        }
    }

    /// A link strength changed: every communication time across that link
    /// moves (no placement replay), but table refresh is one symmetric
    /// link-matrix entry plus the mean-inverse-link scalar.
    pub fn link_weight(u: NodeId, v: NodeId) -> Self {
        DirtyRegion {
            scope: Scope::Full,
            link_touched: Some((u, v)),
            ..DirtyRegion::EMPTY
        }
    }

    /// Whether the kernel must fall back to the verify-everything table
    /// rebuild (no usable refresh hints).
    #[inline]
    pub fn refresh_unknown(&self) -> bool {
        self.refresh_unknown
    }

    /// The single node whose speed changed, if that is this region's cause.
    #[inline]
    pub fn node_touched(&self) -> Option<NodeId> {
        self.node_touched
    }

    /// The single link whose strength changed, if that is this region's
    /// cause.
    #[inline]
    pub fn link_touched(&self) -> Option<(NodeId, NodeId)> {
        self.link_touched
    }

    /// A task's compute cost changed: its execution row (and every ranking
    /// derived from it) is stale; nothing structural moved.
    pub fn task_weight(t: TaskId) -> Self {
        let mut d = DirtyRegion {
            scope: Scope::Tasks,
            ..DirtyRegion::EMPTY
        };
        d.tasks[0] = t;
        d.len = 1;
        d
    }

    /// The data size of dependency `from → to` changed: `to`'s data-ready
    /// times are stale (placement-dirty), and `from`'s successor-edge cost
    /// must be refreshed for rank computations.
    pub fn dep_weight(from: TaskId, to: TaskId) -> Self {
        let mut d = DirtyRegion {
            scope: Scope::Tasks,
            ..DirtyRegion::EMPTY
        };
        d.tasks[0] = to;
        d.len = 1;
        d.edge_tasks[0] = from;
        d.edge_len = 1;
        d
    }

    /// The dependency `from → to` was added (`added`) or removed: `to`'s
    /// predecessor set changed, and the graph's structure (CSR views,
    /// topological order, ready-set evolution) must be rederived — for this
    /// single known edit, by splicing one CSR entry.
    pub fn structural_edit(from: TaskId, to: TaskId, added: bool) -> Self {
        let mut d = DirtyRegion {
            scope: Scope::Tasks,
            structural: true,
            struct_edit: Some((from, to, added)),
            ..DirtyRegion::EMPTY
        };
        d.tasks[0] = to;
        d.len = 1;
        d
    }

    /// The single structural edit behind this region, if exactly one
    /// happened since the last evaluation.
    #[inline]
    pub fn struct_edit(&self) -> Option<(TaskId, TaskId, bool)> {
        self.struct_edit
    }

    /// A structural change into `to` with no splice-able description (e.g.
    /// a position-restoring revert of a removal): the kernel rebuilds the
    /// CSR views from the graph.
    pub fn structural_rebuild(to: TaskId) -> Self {
        let mut d = DirtyRegion {
            scope: Scope::Tasks,
            structural: true,
            ..DirtyRegion::EMPTY
        };
        d.tasks[0] = to;
        d.len = 1;
        d
    }

    /// Whether nothing changed.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.scope == Scope::Clean
    }

    /// Whether everything must be treated as changed.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.scope == Scope::Full
    }

    /// Whether the dependency structure changed (edges added/removed).
    #[inline]
    pub fn is_structural(&self) -> bool {
        self.structural
    }

    /// The placement-dirty tasks (empty for clean/full regions).
    #[inline]
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks[..self.len as usize]
    }

    /// Tasks whose adjacent CSR edge costs need refreshing, *including* the
    /// placement-dirty ones.
    pub fn edge_touched(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks()
            .iter()
            .copied()
            .chain(self.edge_tasks[..self.edge_len as usize].iter().copied())
    }

    /// Whether `t` is placement-dirty.
    #[inline]
    pub fn contains(&self, t: TaskId) -> bool {
        self.tasks().contains(&t)
    }

    /// Whether any placement-dirty task is currently in `ctx`'s ready
    /// frontier — the generic "dirty region reached the frontier head" stop
    /// condition for replaying frontier-scanning schedulers.
    pub fn any_in_frontier(&self, ctx: &SchedContext) -> bool {
        self.tasks()
            .iter()
            .any(|&t| !ctx.is_placed(t) && ctx.is_ready(t))
    }

    /// Folds `other` into `self`: the result covers every change either
    /// region covers. Degrades to [`full`](Self::full) on overflow, and a
    /// merge of two regions with distinct network hints (or a network hint
    /// with task-level dirt) keeps all the hints it can represent, falling
    /// back to the unknown full rebuild otherwise.
    pub fn merge(&mut self, other: &DirtyRegion) {
        match (self.scope, other.scope) {
            (_, Scope::Clean) => {}
            (Scope::Clean, _) => *self = *other,
            (Scope::Full, _) | (_, Scope::Full) => {
                // placement replay is gone either way; try to keep refresh
                // hints usable: same-slot conflicts mean "unknown"
                let mut merged = DirtyRegion {
                    scope: Scope::Full,
                    ..*self
                };
                merged.refresh_unknown |= other.refresh_unknown;
                merged.struct_edit = match (merged.structural, other.structural) {
                    (true, true) => None,
                    (true, false) => merged.struct_edit,
                    (false, true) => other.struct_edit,
                    (false, false) => None,
                };
                merged.structural |= other.structural;
                match (merged.node_touched, other.node_touched) {
                    (Some(a), Some(b)) if a != b => merged.refresh_unknown = true,
                    (None, b @ Some(_)) => merged.node_touched = b,
                    _ => {}
                }
                match (merged.link_touched, other.link_touched) {
                    (Some(a), Some(b)) if a != b => merged.refresh_unknown = true,
                    (None, b @ Some(_)) => merged.link_touched = b,
                    _ => {}
                }
                // task-level dirt folds into the task lists (still refreshed
                // under Full scope — only replay is disabled)
                for &t in other.tasks() {
                    if !merged.tasks[..merged.len as usize].contains(&t) {
                        if merged.len as usize == MAX_DIRTY {
                            merged.refresh_unknown = true;
                            break;
                        }
                        merged.tasks[merged.len as usize] = t;
                        merged.len += 1;
                    }
                }
                for &t in &other.edge_tasks[..other.edge_len as usize] {
                    if !merged.edge_tasks[..merged.edge_len as usize].contains(&t) {
                        if merged.edge_len as usize == merged.edge_tasks.len() {
                            merged.refresh_unknown = true;
                            break;
                        }
                        merged.edge_tasks[merged.edge_len as usize] = t;
                        merged.edge_len += 1;
                    }
                }
                *self = merged;
            }
            (Scope::Tasks, Scope::Tasks) => {
                for &t in other.tasks() {
                    if !self.contains(t) {
                        if self.len as usize == MAX_DIRTY {
                            *self = DirtyRegion::full();
                            return;
                        }
                        self.tasks[self.len as usize] = t;
                        self.len += 1;
                    }
                }
                for &t in &other.edge_tasks[..other.edge_len as usize] {
                    if !self.edge_tasks[..self.edge_len as usize].contains(&t) {
                        if self.edge_len as usize == self.edge_tasks.len() {
                            *self = DirtyRegion::full();
                            return;
                        }
                        self.edge_tasks[self.edge_len as usize] = t;
                        self.edge_len += 1;
                    }
                }
                self.struct_edit = match (self.structural, other.structural) {
                    (true, true) => None, // two edits: rebuild from the graph
                    (true, false) => self.struct_edit,
                    (false, true) => other.struct_edit,
                    (false, false) => None,
                };
                self.structural |= other.structural;
            }
        }
    }
}

/// The recorded placement sequence of one scheduler run, replayable by the
/// same scheduler on a lightly-perturbed instance. See the
/// [module docs](self) for the contract.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    pub(crate) task: Vec<TaskId>,
    pub(crate) node: Vec<NodeId>,
    pub(crate) start: Vec<f64>,
    /// Scheduler-defined per-task decision data from the recorded run (e.g.
    /// ETF's tie-break ranks, CPoP's priorities), bit-compared on replay.
    aux: Vec<f64>,
    /// Scheduler-defined scalar (CPoP's critical-path length).
    aux_scalar: f64,
    makespan: f64,
    pub(crate) n_tasks: usize,
    pub(crate) n_nodes: usize,
    pub(crate) valid: bool,
    /// Optional nested trace for composite schedulers (see
    /// [`take_sub`](Self::take_sub)).
    sub: Option<Box<RunTrace>>,
}

impl RunTrace {
    /// An empty, invalid trace.
    pub fn new() -> Self {
        RunTrace::default()
    }

    /// Whether the trace holds a complete recorded run.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Whether the trace holds a complete recorded run for an instance of
    /// this shape (the caller guarantees lineage; shape is the cheap sanity
    /// gate on top).
    pub fn matches(&self, n_tasks: usize, n_nodes: usize) -> bool {
        self.valid
            && self.n_tasks == n_tasks
            && self.n_nodes == n_nodes
            && self.task.len() == n_tasks
    }

    /// Number of recorded placements.
    #[inline]
    pub fn len(&self) -> usize {
        self.task.len()
    }

    /// Whether no placements are recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.task.is_empty()
    }

    /// The task placed at position `k` of the recorded run.
    #[inline]
    pub fn task(&self, k: usize) -> TaskId {
        self.task[k]
    }

    /// The node the task at position `k` was placed on.
    #[inline]
    pub fn node(&self, k: usize) -> NodeId {
        self.node[k]
    }

    /// The start time of the placement at position `k`.
    #[inline]
    pub fn start(&self, k: usize) -> f64 {
        self.start[k]
    }

    /// The recorded run's makespan (set by the incremental entry points).
    #[inline]
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Stores the run's makespan alongside the placements.
    #[inline]
    pub fn set_makespan(&mut self, m: f64) {
        self.makespan = m;
    }

    /// The scheduler-defined per-task decision row of the recorded run.
    #[inline]
    pub fn aux(&self) -> &[f64] {
        &self.aux
    }

    /// Replaces the auxiliary row (buffer reused across runs).
    pub fn set_aux(&mut self, values: &[f64]) {
        self.aux.clear();
        self.aux.extend_from_slice(values);
    }

    /// The scheduler-defined scalar of the recorded run.
    #[inline]
    pub fn aux_scalar(&self) -> f64 {
        self.aux_scalar
    }

    /// Stores the scheduler-defined scalar.
    #[inline]
    pub fn set_aux_scalar(&mut self, v: f64) {
        self.aux_scalar = v;
    }

    /// Marks the trace unusable (recorded buffers are kept for reuse).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Detaches the sub-trace slot (for composite schedulers that run two
    /// component schedulers per evaluation — Duplex records MinMin into the
    /// trace proper and MaxMin into the sub-trace). Lazily boxed once;
    /// return it with [`put_sub`](Self::put_sub).
    pub fn take_sub(&mut self) -> Box<RunTrace> {
        self.sub.take().unwrap_or_default()
    }

    /// Re-attaches the sub-trace taken by [`take_sub`](Self::take_sub).
    pub fn put_sub(&mut self, sub: Box<RunTrace>) {
        self.sub = Some(sub);
    }
}

/// Whether incremental delta-evaluation is enabled (the default). Set
/// `SAGA_NO_INCREMENTAL` (to anything but `0`) to force every evaluation
/// down the full-rebuild path; read once per process.
pub fn incremental_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| match std::env::var_os("SAGA_NO_INCREMENTAL") {
        None => true,
        Some(v) => v == "0",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_tasks_and_flags() {
        let mut d = DirtyRegion::task_weight(TaskId(1));
        d.merge(&DirtyRegion::clean());
        assert_eq!(d.tasks(), &[TaskId(1)]);
        d.merge(&DirtyRegion::structural_edit(TaskId(0), TaskId(3), true));
        assert!(d.is_structural());
        assert!(d.contains(TaskId(1)) && d.contains(TaskId(3)));
        d.merge(&DirtyRegion::full());
        assert!(d.is_full());
    }

    #[test]
    fn merge_overflow_degrades_to_full() {
        let mut d = DirtyRegion::task_weight(TaskId(0));
        for i in 1..=MAX_DIRTY as u32 {
            d.merge(&DirtyRegion::task_weight(TaskId(i)));
        }
        assert!(d.is_full());
    }

    #[test]
    fn clean_merge_adopts_other() {
        let mut d = DirtyRegion::clean();
        d.merge(&DirtyRegion::dep_weight(TaskId(2), TaskId(5)));
        assert_eq!(d.tasks(), &[TaskId(5)]);
        let touched: Vec<TaskId> = d.edge_touched().collect();
        assert_eq!(touched, vec![TaskId(5), TaskId(2)]);
        assert!(!d.is_structural());
    }

    #[test]
    fn trace_shape_gate() {
        let mut t = RunTrace::new();
        assert!(!t.matches(3, 2));
        t.task = vec![TaskId(0); 3];
        t.node = vec![NodeId(0); 3];
        t.start = vec![0.0; 3];
        t.n_tasks = 3;
        t.n_nodes = 2;
        t.valid = true;
        assert!(t.matches(3, 2));
        assert!(!t.matches(4, 2));
        t.invalidate();
        assert!(!t.matches(3, 2));
    }
}
