//! Random sampling helpers used by the dataset generators and PISA.
//!
//! The paper's generators draw weights from *clipped gaussian* distributions
//! (sample a normal, clamp into `[min, max]`). `rand` 0.8 ships no normal
//! distribution without the extra `rand_distr` crate, so we implement the
//! Box–Muller transform directly — it is a dozen lines and keeps the
//! dependency set to the pre-approved list.

use rand::Rng;

/// Draws a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws `N(mean, std)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Draws the paper's clipped gaussian: `clamp(N(mean, std), min, max)`.
///
/// # Panics
/// Panics (debug) if `min > max` or `std < 0`.
pub fn clipped_gaussian<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std: f64,
    min: f64,
    max: f64,
) -> f64 {
    debug_assert!(min <= max, "empty clip range");
    debug_assert!(std >= 0.0, "negative std");
    normal(rng, mean, std).clamp(min, max)
}

/// The paper's default weight distribution for random graph datasets:
/// mean 1, std 1/3, clipped to `[0, 2]`.
pub fn unit_weight<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    clipped_gaussian(rng, 1.0, 1.0 / 3.0, 0.0, 2.0)
}

/// Uniform draw from the inclusive integer range `[lo, hi]`.
pub fn uniform_usize<R: Rng + ?Sized>(rng: &mut R, lo: usize, hi: usize) -> usize {
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_roughly_unit_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn clipped_gaussian_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = clipped_gaussian(&mut rng, 1.0, 10.0, 0.25, 1.75);
            assert!((0.25..=1.75).contains(&x));
        }
    }

    #[test]
    fn unit_weight_matches_paper_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| unit_weight(&mut rng)).collect();
        assert!(samples.iter().all(|&x| (0.0..=2.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / n as f64;
        // clipping at +-3 sigma barely moves the mean
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn uniform_usize_is_inclusive() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let x = uniform_usize(&mut rng, 2, 5);
            assert!((2..=5).contains(&x));
            seen[x - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of [2,5] should appear");
    }

    #[test]
    fn sampling_is_deterministic_under_a_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..16).map(|_| unit_weight(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..16).map(|_| unit_weight(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
