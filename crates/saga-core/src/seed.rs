//! Deterministic per-cell seed derivation for batch experiments.
//!
//! Every parallel experiment in the workspace shards a grid of independent
//! cells across workers; each cell needs an RNG stream that (a) never
//! overlaps a sibling's and (b) depends only on the cell's identity, not on
//! how many cells ran before it on whichever worker claimed it. Deriving
//! `seed_i = derive_seed(base, i)` satisfies both, which is what makes
//! experiment output bit-identical for any `RAYON_NUM_THREADS`.

/// Mixes a base seed with a cell index into an independent per-cell seed
/// (splitmix64 finalizer), so parallel cells never share an RNG stream and
/// cell `i`'s stream does not depend on how many cells ran before it.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_decorrelates_neighbours() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // stable across calls (documented: cell streams are reproducible)
        assert_eq!(a, derive_seed(42, 0));
    }
}
