//! Deterministic per-cell seed derivation for batch experiments.
//!
//! Every parallel experiment in the workspace shards a grid of independent
//! cells across workers; each cell needs an RNG stream that (a) never
//! overlaps a sibling's and (b) depends only on the cell's identity, not on
//! how many cells ran before it on whichever worker claimed it. Deriving
//! `seed_i = derive_seed(base, i)` satisfies both, which is what makes
//! experiment output bit-identical for any `RAYON_NUM_THREADS`.

/// Mixes a base seed with a cell index into an independent per-cell seed
/// (splitmix64 finalizer), so parallel cells never share an RNG stream and
/// cell `i`'s stream does not depend on how many cells ran before it.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string: the workspace's canonical config digest.
///
/// `SearchCell::key()` folds a cell's full configuration (metric kind plus
/// the temperature-schedule bit patterns) through this hash, and the
/// distributed shard protocol partitions cells by `fnv1a(key) % shard_count`
/// — so the constant and the fold order are load-bearing: changing either
/// invalidates every existing checkpoint key and re-deals every shard.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_decorrelates_neighbours() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // stable across calls (documented: cell streams are reproducible)
        assert_eq!(a, derive_seed(42, 0));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // published FNV-1a 64-bit vectors: the digest is a stable on-disk
        // contract (checkpoint keys, shard assignment)
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
