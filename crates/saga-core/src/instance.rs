//! A problem instance `(N, G)`: a network paired with a task graph.

use crate::{Network, TaskGraph};
use serde::{Deserialize, Serialize};

/// A scheduling problem instance: the pair `(N, G)` of Section II.
#[derive(Debug, Serialize, Deserialize)]
pub struct Instance {
    /// The compute network `N`.
    pub network: Network,
    /// The task graph `G`.
    pub graph: TaskGraph,
}

impl Clone for Instance {
    fn clone(&self) -> Self {
        Instance {
            network: self.network.clone(),
            graph: self.graph.clone(),
        }
    }

    /// Buffer-reusing clone (see [`TaskGraph`]'s and [`Network`]'s
    /// `clone_from`): the annealer's per-iteration candidate copies become
    /// allocation-free after warm-up.
    fn clone_from(&mut self, source: &Self) {
        self.network.clone_from(&source.network);
        self.graph.clone_from(&source.graph);
    }
}

impl Instance {
    /// Pairs a network with a task graph.
    pub fn new(network: Network, graph: TaskGraph) -> Self {
        Instance { network, graph }
    }

    /// The communication-to-computation ratio of the instance: average
    /// communication time of a dependency divided by average execution time
    /// of a task (the paper's CCR). Returns 0 when there are no dependencies.
    pub fn ccr(&self) -> f64 {
        let avg_exec = self.graph.mean_task_cost() * self.network.mean_inverse_speed();
        let avg_comm = self.graph.mean_dependency_cost() * self.network.mean_inverse_link();
        if avg_exec == 0.0 {
            0.0
        } else {
            avg_comm / avg_exec
        }
    }

    /// Serializes the instance to JSON, mapping non-finite link strengths to
    /// `null` explicitly so the output round-trips (bare `serde_json` turns
    /// `inf` into `null` but cannot read it back into an `f64`).
    pub fn to_json(&self) -> String {
        let dto = dto::InstanceDto::from(self);
        // saga-lint: allow(error-discipline) — InstanceDto is vectors and tuples of primitives; the vendored serializer has no failure path for it
        serde_json::to_string_pretty(&dto).expect("instance serialization cannot fail")
    }

    /// Parses an instance previously produced by [`Instance::to_json`].
    /// Fails on malformed JSON *and* on well-formed JSON that encodes an
    /// invalid instance (a dependency cycle, an out-of-range task id) — a
    /// hand-edited witness file is a parse error, not a panic.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let dto: dto::InstanceDto = serde_json::from_str(s)?;
        dto.try_into()
    }
}

mod dto {
    //! JSON-safe mirror of [`Instance`]: infinities become `None`.
    use crate::{Network, TaskGraph};
    use serde::{Deserialize, Serialize};

    fn enc(x: f64) -> Option<f64> {
        x.is_finite().then_some(x)
    }

    fn dec(x: Option<f64>) -> f64 {
        x.unwrap_or(f64::INFINITY)
    }

    #[derive(Serialize, Deserialize)]
    pub(super) struct InstanceDto {
        speeds: Vec<f64>,
        links: Vec<Option<f64>>,
        tasks: Vec<(String, f64)>,
        deps: Vec<(u32, u32, f64)>,
    }

    impl From<&super::Instance> for InstanceDto {
        fn from(inst: &super::Instance) -> Self {
            let n = inst.network.node_count();
            let mut links = Vec::with_capacity(n * n);
            for u in inst.network.nodes() {
                for v in inst.network.nodes() {
                    links.push(enc(inst.network.link(u, v)));
                }
            }
            // Canonical dep order: adjacency lists reflect mutation history
            // (perturbation add/remove churn), and the parse side re-inserts
            // in sorted order anyway. Sorting here makes serialization a
            // stable function of the instance's *value*, so an instance and
            // its JSON round-trip print identically (checkpoint replay and
            // resumed runs must emit byte-identical witness files).
            let mut deps: Vec<(u32, u32, f64)> = inst
                .graph
                .dependencies()
                .map(|(a, b, c)| (a.0, b.0, c))
                .collect();
            deps.sort_unstable_by_key(|&(a, b, _)| (a, b));
            InstanceDto {
                speeds: inst.network.speeds().to_vec(),
                links,
                tasks: inst
                    .graph
                    .tasks()
                    .map(|t| (inst.graph.name(t).to_string(), inst.graph.cost(t)))
                    .collect(),
                deps,
            }
        }
    }

    impl TryFrom<InstanceDto> for super::Instance {
        type Error = serde_json::Error;

        fn try_from(dto: InstanceDto) -> Result<Self, Self::Error> {
            let network =
                Network::from_matrix(dto.speeds, dto.links.into_iter().map(dec).collect());
            let mut graph = TaskGraph::with_capacity(dto.tasks.len());
            for (name, cost) in dto.tasks {
                graph.add_task(name, cost);
            }
            let mut deps = dto.deps;
            deps.sort_unstable_by_key(|&(a, b, _)| (a, b));
            for (a, b, c) in deps {
                graph.add_dependency(a.into(), b.into(), c).map_err(|e| {
                    serde_json::Error::from(serde::Error::custom(format!(
                        "dependency {a} -> {b}: {e}"
                    )))
                })?;
            }
            Ok(super::Instance { network, graph })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskId;

    fn sample() -> Instance {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 2.0);
        let b = g.add_task("b", 4.0);
        g.add_dependency(a, b, 3.0).unwrap();
        Instance::new(Network::complete(&[1.0, 2.0], 1.5), g)
    }

    #[test]
    fn ccr_matches_hand_computation() {
        let inst = sample();
        // avg exec = mean cost 3 * mean inv speed 0.75 = 2.25
        // avg comm = mean dep 3 * mean inv link (1/1.5) = 2
        assert!((inst.ccr() - 2.0 / 2.25).abs() < 1e-12);
    }

    #[test]
    fn ccr_of_graph_without_deps_is_zero() {
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        let inst = Instance::new(Network::complete(&[1.0], 1.0), g);
        assert_eq!(inst.ccr(), 0.0);
    }

    #[test]
    fn json_round_trip_preserves_weights_and_infinities() {
        let inst = sample();
        let json = inst.to_json();
        let back = Instance::from_json(&json).unwrap();
        assert_eq!(back.network.node_count(), 2);
        assert!(back
            .network
            .link(crate::NodeId(0), crate::NodeId(0))
            .is_infinite());
        assert_eq!(back.network.link(crate::NodeId(0), crate::NodeId(1)), 1.5);
        assert_eq!(back.graph.task_count(), 2);
        assert_eq!(back.graph.cost(TaskId(1)), 4.0);
        assert_eq!(back.graph.dependency_cost(TaskId(0), TaskId(1)), Some(3.0));
        assert_eq!(back.graph.name(TaskId(0)), "a");
    }
}
