//! The allocation-free scheduling kernel.
//!
//! [`SchedContext`] owns every buffer a list-scheduler run needs — cached
//! cost tables, CSR dependency views, per-node timelines, the incremental
//! ready queue, and scratch pools — and [`SchedContext::reset`] rebuilds all
//! of it for a new instance while *reusing capacity*. A caller that keeps
//! one context alive (PISA's annealer runs tens of thousands of scheduler
//! evaluations per cell) allocates approximately nothing after warm-up.
//!
//! Three cached structures carry the speedup:
//!
//! * a dense `exec[t * |V| + v]` execution-time matrix and a copied link
//!   matrix, so EFT queries stop dividing and pointer-chasing in the inner
//!   loop;
//! * flat CSR predecessor/successor views (offsets + task ids + costs in
//!   edge-insertion order), replacing `Vec<Vec<DepEdge>>` traversals;
//! * an incrementally maintained ready queue: [`SchedContext::place`]
//!   decrements unplaced-predecessor counters and inserts newly ready tasks
//!   in id order, so the per-placement "which tasks are ready" question is
//!   answered in O(out-degree) instead of an O(|T|) rescan.
//!
//! Every query reproduces [`ScheduleBuilder`](crate::ScheduleBuilder)
//! semantics bit-for-bit (the golden-determinism suite in the workspace root
//! pins this): the cached tables hold exactly the values the builder used to
//! recompute, and iteration orders match the original adjacency-list orders.
//!
//! The tables snapshot the instance at [`SchedContext::reset`] time; callers
//! must not mutate the instance between `reset` and the queries that follow
//! (the same contract the borrow in `ScheduleBuilder` used to enforce
//! statically).

use crate::incremental::{DirtyRegion, RunTrace};
use crate::{Assignment, Instance, NodeId, Schedule, TaskId};

/// Sets `v` to `n` copies of `value`, preferring an in-place fill (a memset
/// the run-state clear performs three times per scheduler evaluation) over
/// the clear-and-resize push loop.
fn set_all<T: Copy>(v: &mut Vec<T>, n: usize, value: T) {
    if v.len() == n {
        v.fill(value);
    } else {
        v.clear();
        v.resize(n, value);
    }
}

/// Bitwise slice equality for weight snapshots (exact: `to_bits`, so `-0.0`
/// and `0.0` — which divide differently — never compare equal).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Bitwise equality of every task cost against the snapshot.
fn bits_eq_costs(g: &crate::TaskGraph, snap: &[f64]) -> bool {
    g.task_count() == snap.len()
        && g.tasks()
            .zip(snap)
            .all(|(t, s)| g.cost(t).to_bits() == s.to_bits())
}

/// Whether this process may run the 4-wide AVX instantiations of the
/// node-axis kernels; detected once. (Only the *width* changes with the
/// answer: both instantiations compile the same elementwise loop, and IEEE
/// `f64` add/div are exactly rounded at any width, so results are
/// bit-identical either way.)
#[cfg(target_arch = "x86_64")]
#[inline]
fn wide_kernels() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
}

/// The data-ready arrivals fold over one sender's link row:
/// `out[v] = max(out[v], f + cost / row[v])` for every node `v`. The
/// explicit-width entry points below instantiate exactly this loop, so both
/// paths fold identical expressions in identical order.
#[inline(always)]
fn fold_arrivals_elementwise(out: &mut [f64], row: &[f64], f: f64, cost: f64) {
    for (r, &link) in out.iter_mut().zip(row) {
        let arrival = f + cost / link;
        *r = r.max(arrival);
    }
}

/// [`fold_arrivals_elementwise`] compiled with AVX enabled: the
/// autovectorizer emits 4-lane `f64` add/div/max over the row instead of
/// the baseline 2-lane SSE.
///
/// # Safety
/// The caller must have verified AVX support (see [`wide_kernels`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn fold_arrivals_avx(out: &mut [f64], row: &[f64], f: f64, cost: f64) {
    fold_arrivals_elementwise(out, row, f, cost);
}

/// Runtime-dispatched arrivals fold: 4-wide AVX when the CPU has it, the
/// portable loop otherwise. Bit-identical across the two (exactly-rounded
/// elementwise IEEE ops; no reassociation, no FMA contraction).
#[inline]
fn fold_arrivals(out: &mut [f64], row: &[f64], f: f64, cost: f64) {
    #[cfg(target_arch = "x86_64")]
    if wide_kernels() {
        // SAFETY: gated on runtime AVX detection above
        unsafe { fold_arrivals_avx(out, row, f, cost) };
        return;
    }
    fold_arrivals_elementwise(out, row, f, cost);
}

/// Whether the fused EFT row kernels are enabled (the default). Set
/// `SAGA_NO_EFT_ROW` (to anything but `0`) to force every scheduler down
/// the scalar per-node query path, mirroring `SAGA_NO_INCREMENTAL` /
/// `SAGA_NO_BATCH`; read once per process. Both paths are bit-identical —
/// the golden suites run once with the toggle set and diff.
pub fn eft_rows_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| match std::env::var_os("SAGA_NO_EFT_ROW") {
        None => true,
        Some(v) => v == "0",
    })
}

/// The append-start/finish compose over one task's rows:
/// `starts[v] = tails[v].max(starts[v])` (the data-ready row folded with
/// the per-node append tail) and `finishes[v] = starts[v] + exec[v]`. The
/// explicit-width entry points below instantiate exactly this loop.
#[inline(always)]
fn compose_rows_elementwise(starts: &mut [f64], finishes: &mut [f64], tails: &[f64], exec: &[f64]) {
    for ((s, f), (&tail, &d)) in starts
        .iter_mut()
        .zip(finishes.iter_mut())
        .zip(tails.iter().zip(exec))
    {
        let start = tail.max(*s);
        *s = start;
        *f = start + d;
    }
}

/// [`compose_rows_elementwise`] compiled with AVX enabled (4-lane `f64`
/// max/add instead of the baseline 2-lane SSE).
///
/// # Safety
/// The caller must have verified AVX support (see [`wide_kernels`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn compose_rows_avx(starts: &mut [f64], finishes: &mut [f64], tails: &[f64], exec: &[f64]) {
    compose_rows_elementwise(starts, finishes, tails, exec);
}

/// Runtime-dispatched append compose: 4-wide AVX when the CPU has it and
/// the row is wide enough to amortize the outlined call (a
/// `#[target_feature]` instantiation cannot inline into non-AVX callers),
/// the portable loop otherwise. Bit-identical across the two
/// (exactly-rounded elementwise IEEE max/add; no reassociation, no FMA
/// contraction). Public for callers that cache their own data-ready rows
/// (the schedulers' frontier sweeps) and compose them against
/// [`SchedContext::append_tails`] themselves.
#[inline]
pub fn compose_append_rows(starts: &mut [f64], finishes: &mut [f64], tails: &[f64], exec: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    if starts.len() >= 8 && wide_kernels() {
        // SAFETY: gated on runtime AVX detection above
        unsafe { compose_rows_avx(starts, finishes, tails, exec) };
        return;
    }
    compose_rows_elementwise(starts, finishes, tails, exec);
}

/// The copy-free variant of [`compose_append_rows`] for callers whose
/// data-ready row lives in a cache they must not clobber (the frontier
/// sweeps): reads `ready` instead of composing `starts` in place. Same
/// elementwise expressions, same bits.
#[inline(always)]
fn compose_rows_from_elementwise(
    ready: &[f64],
    tails: &[f64],
    exec: &[f64],
    starts: &mut [f64],
    finishes: &mut [f64],
) {
    for ((s, f), ((&r, &tail), &d)) in starts
        .iter_mut()
        .zip(finishes.iter_mut())
        .zip(ready.iter().zip(tails).zip(exec))
    {
        let start = tail.max(r);
        *s = start;
        *f = start + d;
    }
}

/// [`compose_rows_from_elementwise`] compiled with AVX enabled.
///
/// # Safety
/// The caller must have verified AVX support (see [`wide_kernels`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn compose_rows_from_avx(
    ready: &[f64],
    tails: &[f64],
    exec: &[f64],
    starts: &mut [f64],
    finishes: &mut [f64],
) {
    compose_rows_from_elementwise(ready, tails, exec, starts, finishes);
}

/// Runtime-dispatched copy-free append compose; dispatch rule and
/// bit-identity exactly as [`compose_append_rows`].
#[inline]
pub fn compose_append_rows_from(
    ready: &[f64],
    tails: &[f64],
    exec: &[f64],
    starts: &mut [f64],
    finishes: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if starts.len() >= 8 && wide_kernels() {
        // SAFETY: gated on runtime AVX detection above
        unsafe { compose_rows_from_avx(ready, tails, exec, starts, finishes) };
        return;
    }
    compose_rows_from_elementwise(ready, tails, exec, starts, finishes);
}

/// Lowest-index argmin over a finish row — the tie-break every roster
/// scheduler's per-node scan uses today: the first strict improvement wins,
/// so equal finishes keep the lowest node id. NaN entries never displace an
/// earlier candidate (`<` is false for them), matching the scalar
/// comparators' behaviour exactly.
///
/// # Panics
/// Panics (debug) on an empty row; returns node 0 in release.
#[inline]
pub fn argmin_finish(finishes: &[f64]) -> NodeId {
    debug_assert!(!finishes.is_empty(), "argmin over an empty finish row");
    let mut best = 0usize;
    let mut bf = f64::INFINITY;
    for (v, &f) in finishes.iter().enumerate() {
        if v == 0 || f < bf {
            best = v;
            bf = f;
        }
    }
    NodeId(best as u32)
}

/// Lowest-index argmin by `(start, finish)` lexicographic order — the
/// earliest-start-first tie-break the ETF-family scans use
/// (`s < bs || (s == bs && f < bf)`), first strict improvement wins.
///
/// # Panics
/// Panics (debug) on empty rows; returns node 0 in release.
#[inline]
pub fn argmin_start_finish(starts: &[f64], finishes: &[f64]) -> NodeId {
    debug_assert!(!starts.is_empty(), "argmin over an empty start row");
    debug_assert_eq!(starts.len(), finishes.len());
    let mut best = 0usize;
    let (mut bs, mut bf) = (f64::INFINITY, f64::INFINITY);
    for (v, (&s, &f)) in starts.iter().zip(finishes).enumerate() {
        if v == 0 || s < bs || (s == bs && f < bf) {
            best = v;
            bs = s;
            bf = f;
        }
    }
    NodeId(best as u32)
}

/// A placed interval on a node timeline.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Slot {
    pub(crate) start: f64,
    pub(crate) finish: f64,
    pub(crate) task: TaskId,
}

/// Reusable arena + cursor for building schedules without per-run
/// allocation. See the [module docs](self) for the design.
#[derive(Debug, Clone, Default)]
pub struct SchedContext {
    // ---- cached instance tables (rebuilt by `reset`) ----
    n_tasks: usize,
    n_nodes: usize,
    /// `exec[t * n_nodes + v] = c(t) / s(v)` (0 for zero-cost tasks).
    exec: Vec<f64>,
    /// Row-major copy of the link-strength matrix.
    links: Vec<f64>,
    pred_off: Vec<u32>,
    pred_task: Vec<TaskId>,
    pred_cost: Vec<f64>,
    succ_off: Vec<u32>,
    succ_task: Vec<TaskId>,
    succ_cost: Vec<f64>,
    /// Topological order with smallest-id tie-breaking (identical to
    /// `TaskGraph::topological_order`).
    topo: Vec<TaskId>,
    /// HEFT-style average execution time per task.
    avg_exec: Vec<f64>,
    /// Mean inverse link strength (the average-communication multiplier).
    inv_link: f64,
    /// Mean inverse node speed (cached so speed-preserving rebuilds skip
    /// the divisions).
    inv_speed: f64,
    fastest: NodeId,
    /// Bit-exact snapshots of the task costs and node speeds the `exec`
    /// matrix was built from: a rebuild for an instance that differs in a
    /// single weight (the annealer's common case) recomputes only the
    /// affected row or column instead of the whole division grid.
    cost_snap: Vec<f64>,
    speed_snap: Vec<f64>,
    // ---- run state (cleared by `reset`) ----
    timelines: Vec<Vec<Slot>>,
    finish: Vec<f64>,
    node_of: Vec<NodeId>,
    /// Placement epochs: task `t` is placed iff `placed_epoch[t] == epoch`.
    /// Clearing the run state is then an epoch bump instead of a fill, and
    /// `finish`/`node_of` need no clearing at all — their entries are only
    /// read for tasks placed in the *current* epoch.
    placed_epoch: Vec<u32>,
    epoch: u32,
    placed_count: usize,
    /// Largest finish time on each node's timeline (0 when empty). Not the
    /// last slot's finish: a zero-duration task placed on an earlier slot's
    /// boundary can sit at the end of the slot vector with an *earlier*
    /// finish.
    max_finish: Vec<f64>,
    /// Finish time of the *last* slot on each node's timeline (0 when
    /// empty) — `timelines[v].last()` hoisted into a dense row so the
    /// append-start compose in [`eft_row_into`](Self::eft_row_into) is a
    /// branchless elementwise fold instead of a per-node `Option` match.
    /// Distinct from `max_finish` (see above); reconciled against the
    /// timelines by a debug assertion after every mutation.
    tail_finish: Vec<f64>,
    /// Number of unplaced predecessors per task.
    unplaced_preds: Vec<u32>,
    /// Unplaced tasks whose predecessors are all placed, ascending by id.
    ready: Vec<TaskId>,
    /// Initial predecessor counts / ready set for the cached CSR structure
    /// (what `clear_run_state` restores by straight copy).
    init_preds: Vec<u32>,
    init_ready: Vec<TaskId>,
    // ---- scratch ----
    frontier_heap: std::collections::BinaryHeap<std::cmp::Reverse<TaskId>>,
    indeg_scratch: Vec<u32>,
    f64_pool: Vec<Vec<f64>>,
    task_pool: Vec<Vec<TaskId>>,
    // ---- placement recording (incremental delta-evaluation) ----
    /// When true, every [`place`](Self::place) appends to the `rec_*`
    /// buffers; enabled only inside schedulers' incremental entry points.
    recording: bool,
    rec_task: Vec<TaskId>,
    rec_node: Vec<NodeId>,
    rec_start: Vec<f64>,
    /// When true, [`reset`](Self::reset) skips the table rebuild and only
    /// clears the run state — see [`pin_tables`](Self::pin_tables).
    pinned: bool,
    /// When true, the run state is exactly as [`clear_run_state`]
    /// (Self::clear_run_state) left it (no placement since), so a pinned
    /// `reset` can skip clearing too. The annealer's objective pins then
    /// immediately runs the first scheduler; this makes that first reset
    /// free.
    run_clean: bool,
}

impl SchedContext {
    /// An empty context; owns no buffers until the first [`reset`](Self::reset).
    pub fn new() -> Self {
        SchedContext::default()
    }

    /// Rebuilds every cached table and clears the run state for `inst`,
    /// reusing existing capacity.
    ///
    /// While [`pin_tables`](Self::pin_tables) is active, the (unchanged)
    /// tables are kept and only the run state is cleared.
    pub fn reset(&mut self, inst: &Instance) {
        if self.pinned {
            debug_assert_eq!(self.n_tasks, inst.graph.task_count(), "pinned tables stale");
            debug_assert_eq!(
                self.n_nodes,
                inst.network.node_count(),
                "pinned tables stale"
            );
            debug_assert_eq!(
                self.pred_task.len(),
                inst.graph.dependency_count(),
                "pinned tables stale (dependency structure changed)"
            );
            if !self.run_clean {
                self.clear_run_state();
            }
            return;
        }
        self.rebuild_tables(inst);
        self.clear_run_state();
    }

    /// Declares that every `reset` until [`unpin_tables`](Self::unpin_tables)
    /// will be for this same, unmodified instance, so the cost tables built
    /// here can be shared across several scheduler runs (the adversarial
    /// annealer evaluates two schedulers per candidate). The caller must not
    /// mutate the instance while the pin is active.
    pub fn pin_tables(&mut self, inst: &Instance) {
        self.pinned = false;
        self.rebuild_tables(inst);
        self.clear_run_state();
        self.pinned = true;
    }

    /// Ends a [`pin_tables`](Self::pin_tables) scope; subsequent `reset`s
    /// rebuild the tables again.
    pub fn unpin_tables(&mut self) {
        self.pinned = false;
    }

    /// [`pin_tables`](Self::pin_tables) for an instance that differs from
    /// the one the current tables were built for *only* by `dirty` — the
    /// annealer's per-iteration entry point. Refreshes exactly the stale
    /// pieces (a task's execution row, an edge's CSR costs, or — for
    /// structural edits — the CSR views and topological order) with the
    /// same expressions the full rebuild uses, so the refreshed tables are
    /// bit-identical to a full [`pin_tables`]. Falls back to the full
    /// rebuild for [`DirtyRegion::full`] regions or when the cached tables
    /// don't line up with the instance's shape.
    ///
    /// The caller is responsible for `dirty` actually covering every change
    /// since the tables were last built (the annealer derives it from the
    /// perturbation undo records); the golden suites pin the equivalence.
    pub fn pin_tables_dirty(&mut self, inst: &Instance, dirty: &DirtyRegion) {
        let g = &inst.graph;
        let net = &inst.network;
        let aligned = self.n_tasks == g.task_count()
            && self.n_nodes == net.node_count()
            && self.exec.len() == self.n_tasks * self.n_nodes
            && self.cost_snap.len() == self.n_tasks
            && self.avg_exec.len() == self.n_tasks
            && self.speed_snap.len() == self.n_nodes
            && self.links.len() == self.n_nodes * self.n_nodes;
        if dirty.refresh_unknown() || !aligned {
            self.pin_tables(inst);
            return;
        }
        self.pinned = false;
        if let Some(v) = dirty.node_touched() {
            // one node speed moved: refresh its execution column, the
            // speed-derived scalars, and (inv_speed changed) every average
            // execution time — the same expressions the full build uses
            let nt = self.n_tasks;
            let nv = self.n_nodes;
            self.speed_snap[v.index()] = net.speeds()[v.index()];
            self.inv_speed = net.mean_inverse_speed();
            self.fastest = net.fastest_node();
            for t in 0..nt {
                self.exec[t * nv + v.index()] = net.exec_time(g.cost(TaskId(t as u32)), v);
            }
            let inv_speed = self.inv_speed;
            self.avg_exec.clear();
            self.avg_exec.extend(g.tasks().map(|t| {
                let c = g.cost(t);
                if c == 0.0 {
                    0.0
                } else {
                    c * inv_speed
                }
            }));
        }
        if let Some((u, v)) = dirty.link_touched() {
            // one (symmetric) link moved: two matrix entries + the mean
            let nv = self.n_nodes;
            self.links[u.index() * nv + v.index()] = net.links()[u.index() * nv + v.index()];
            self.links[v.index() * nv + u.index()] = net.links()[v.index() * nv + u.index()];
            self.inv_link = net.mean_inverse_link();
        }
        if dirty.is_structural() {
            match dirty.struct_edit() {
                Some((from, to, true)) => {
                    let cost = g
                        .dependency_cost(from, to)
                        .expect("added edge present in the graph");
                    self.csr_add_edge(from, to, cost);
                    // a merged dependency-weight edit still needs its CSR
                    // costs refreshed (the splice only syncs structure)
                    for t in dirty.edge_touched() {
                        self.refresh_adjacent_edge_costs(g, t);
                    }
                }
                Some((from, to, false)) => {
                    self.csr_remove_edge(from, to);
                    for t in dirty.edge_touched() {
                        self.refresh_adjacent_edge_costs(g, t);
                    }
                }
                None => self.rebuild_csr(g),
            }
            debug_assert_eq!(
                self.pred_task.len(),
                g.dependency_count(),
                "CSR splice diverged from the graph"
            );
            self.rebuild_topo();
            // the run state's ready set / predecessor counters were derived
            // from the old structure — force a re-clear even if untouched
            self.run_clean = false;
        } else {
            debug_assert_eq!(
                self.pred_task.len(),
                g.dependency_count(),
                "non-structural dirty region but dependency count changed"
            );
            for t in dirty.edge_touched() {
                self.refresh_adjacent_edge_costs(g, t);
            }
        }
        for &t in dirty.tasks() {
            self.refresh_task_row(g, net, t);
        }
        if !self.run_clean {
            self.clear_run_state();
        }
        self.pinned = true;
    }

    /// Recomputes the cached execution row, cost snapshot and average
    /// execution time of `t` — the same expressions `rebuild_tables` uses,
    /// so unchanged inputs reproduce unchanged bits.
    fn refresh_task_row(&mut self, g: &crate::TaskGraph, net: &crate::Network, t: TaskId) {
        let c = g.cost(t);
        self.cost_snap[t.index()] = c;
        self.avg_exec[t.index()] = if c == 0.0 { 0.0 } else { c * self.inv_speed };
        let nv = self.n_nodes;
        let row = &mut self.exec[t.index() * nv..(t.index() + 1) * nv];
        for (v, slot) in row.iter_mut().enumerate() {
            *slot = net.exec_time(c, NodeId(v as u32));
        }
    }

    /// Splices the dependency `from → to` into the CSR views exactly the
    /// way `TaskGraph::add_dependency` splices its adjacency lists: pushed
    /// at the *end* of `from`'s successor row and `to`'s predecessor row.
    /// Also maintains the cached initial predecessor counts / ready set.
    fn csr_add_edge(&mut self, from: TaskId, to: TaskId, cost: f64) {
        let pos = self.succ_off[from.index() + 1] as usize;
        self.succ_task.insert(pos, to);
        self.succ_cost.insert(pos, cost);
        for o in &mut self.succ_off[from.index() + 1..] {
            *o += 1;
        }
        let pos = self.pred_off[to.index() + 1] as usize;
        self.pred_task.insert(pos, from);
        self.pred_cost.insert(pos, cost);
        for o in &mut self.pred_off[to.index() + 1..] {
            *o += 1;
        }
        let d = &mut self.init_preds[to.index()];
        if *d == 0 {
            let i = self
                .init_ready
                .binary_search(&to)
                .expect("source task was in the initial ready set");
            self.init_ready.remove(i);
        }
        *d += 1;
    }

    /// Removes the dependency `from → to` from the CSR views with the same
    /// `swap_remove` semantics `TaskGraph::remove_dependency_tracked` uses
    /// on its adjacency lists (the row's last entry moves into the hole),
    /// so row order keeps mirroring adjacency order bit for bit. Handles
    /// `pop_dependency` reverts too — popping the last entry *is* a
    /// swap-remove of the last entry.
    fn csr_remove_edge(&mut self, from: TaskId, to: TaskId) {
        let (s, e) = self.succ_range(from);
        let i = s + self.succ_task[s..e]
            .iter()
            .position(|&t| t == to)
            .expect("removed edge present in CSR");
        self.succ_task[i] = self.succ_task[e - 1];
        self.succ_cost[i] = self.succ_cost[e - 1];
        self.succ_task.remove(e - 1);
        self.succ_cost.remove(e - 1);
        for o in &mut self.succ_off[from.index() + 1..] {
            *o -= 1;
        }
        let (s, e) = self.pred_range(to);
        let i = s + self.pred_task[s..e]
            .iter()
            .position(|&t| t == from)
            .expect("removed edge present in CSR");
        self.pred_task[i] = self.pred_task[e - 1];
        self.pred_cost[i] = self.pred_cost[e - 1];
        self.pred_task.remove(e - 1);
        self.pred_cost.remove(e - 1);
        for o in &mut self.pred_off[to.index() + 1..] {
            *o -= 1;
        }
        let d = &mut self.init_preds[to.index()];
        *d -= 1;
        if *d == 0 {
            if let Err(i) = self.init_ready.binary_search(&to) {
                self.init_ready.insert(i, to);
            }
        }
    }

    /// Re-copies the CSR edge costs adjacent to `t` (its predecessor row
    /// and its successor row) from the graph. Structure must be unchanged.
    fn refresh_adjacent_edge_costs(&mut self, g: &crate::TaskGraph, t: TaskId) {
        let (s, e) = self.pred_range(t);
        for (i, edge) in (s..e).zip(g.predecessors(t)) {
            debug_assert_eq!(self.pred_task[i], edge.task, "CSR structure drifted");
            self.pred_cost[i] = edge.cost;
        }
        let (s, e) = self.succ_range(t);
        for (i, edge) in (s..e).zip(g.successors(t)) {
            debug_assert_eq!(self.succ_task[i], edge.task, "CSR structure drifted");
            self.succ_cost[i] = edge.cost;
        }
    }

    /// Starts recording placements (cleared buffers). Every subsequent
    /// [`place`](Self::place) appends `(task, node, start)` until
    /// [`take_recording`](Self::take_recording).
    pub fn begin_recording(&mut self) {
        self.rec_task.clear();
        self.rec_node.clear();
        self.rec_start.clear();
        self.recording = true;
    }

    /// Stops recording and swaps the recorded placement sequence into
    /// `trace` (the trace's previous buffers come back for reuse), marking
    /// it valid for the current instance shape.
    pub fn take_recording(&mut self, trace: &mut RunTrace) {
        self.recording = false;
        std::mem::swap(&mut trace.task, &mut self.rec_task);
        std::mem::swap(&mut trace.node, &mut self.rec_node);
        std::mem::swap(&mut trace.start, &mut self.rec_start);
        trace.n_tasks = self.n_tasks;
        trace.n_nodes = self.n_nodes;
        trace.valid = true;
    }

    /// Rebuilds the instance-derived cost tables and views.
    ///
    /// The CSR dependency views and the topological order depend only on the
    /// graph's *structure*; when the new instance's structure is verified
    /// identical to the cached one (the adversarial annealer's weight
    /// perturbations leave it untouched two times out of three), only the
    /// edge costs are refreshed and the Kahn rebuild is skipped.
    fn rebuild_tables(&mut self, inst: &Instance) {
        let g = &inst.graph;
        let net = &inst.network;
        let nt = g.task_count();
        let nv = net.node_count();
        let same_shape = nt == self.n_tasks && nv == self.n_nodes;
        self.n_tasks = nt;
        self.n_nodes = nv;

        // Weight snapshots: every derived quantity below is recomputed with
        // the *same* expression whether refreshed selectively or in full, so
        // a bitwise-equal input slice guarantees bitwise-equal outputs — the
        // comparisons replace divisions, never results.
        let speeds_same = same_shape && bits_eq(net.speeds(), &self.speed_snap);
        let links_same = same_shape && bits_eq(net.links(), &self.links);
        let avg_ok = self.refresh_exec(g, net, same_shape, speeds_same);
        if !links_same {
            self.links.clear();
            self.links.extend_from_slice(net.links());
            self.inv_link = net.mean_inverse_link();
        }
        if !speeds_same {
            self.speed_snap.clear();
            self.speed_snap.extend_from_slice(net.speeds());
            self.inv_speed = net.mean_inverse_speed();
            self.fastest = net.fastest_node();
        }

        if !(same_shape && self.try_refresh_csr_costs(g)) {
            self.rebuild_csr(g);
            self.rebuild_topo();
        }

        if !avg_ok {
            // average costs (HEFT/CPoP ranking inputs) — multiplications
            // only, from the cached mean inverse speed
            let inv_speed = self.inv_speed;
            self.avg_exec.clear();
            self.avg_exec.extend(g.tasks().map(|t| {
                let c = g.cost(t);
                if c == 0.0 {
                    0.0
                } else {
                    c * inv_speed
                }
            }));
        }
    }

    /// Rebuilds the dense execution-time matrix, recomputing only the rows
    /// whose task cost changed (speeds unchanged) or the columns whose node
    /// speed changed (costs unchanged); anything else rebuilds in full. Each
    /// refreshed entry uses the same `net.exec_time` expression as the full
    /// build, so all three paths are bit-identical. Returns `true` when it
    /// also kept `avg_exec` up to date (the changed-rows path, where the
    /// cached mean inverse speed is still valid); the caller recomputes
    /// `avg_exec` otherwise.
    fn refresh_exec(
        &mut self,
        g: &crate::TaskGraph,
        net: &crate::Network,
        same_shape: bool,
        speeds_same: bool,
    ) -> bool {
        let nt = self.n_tasks;
        let nv = self.n_nodes;
        let aligned = same_shape && self.cost_snap.len() == nt && self.exec.len() == nt * nv;
        if aligned && speeds_same && self.avg_exec.len() == nt {
            let inv_speed = self.inv_speed;
            for t in g.tasks() {
                let c = g.cost(t);
                if c.to_bits() != self.cost_snap[t.index()].to_bits() {
                    self.cost_snap[t.index()] = c;
                    self.avg_exec[t.index()] = if c == 0.0 { 0.0 } else { c * inv_speed };
                    let row = &mut self.exec[t.index() * nv..(t.index() + 1) * nv];
                    for (v, slot) in row.iter_mut().enumerate() {
                        *slot = net.exec_time(c, NodeId(v as u32));
                    }
                }
            }
            return true;
        }
        if aligned && self.speed_snap.len() == nv && bits_eq_costs(g, &self.cost_snap) {
            for (v, (&s, &snap)) in net.speeds().iter().zip(&self.speed_snap).enumerate() {
                if s.to_bits() != snap.to_bits() {
                    for t in 0..nt {
                        self.exec[t * nv + v] =
                            net.exec_time(g.cost(TaskId(t as u32)), NodeId(v as u32));
                    }
                }
            }
            return false;
        }
        self.exec.clear();
        self.exec.reserve(nt * nv);
        self.cost_snap.clear();
        self.cost_snap.reserve(nt);
        for t in g.tasks() {
            let c = g.cost(t);
            self.cost_snap.push(c);
            for v in net.nodes() {
                self.exec.push(net.exec_time(c, v));
            }
        }
        false
    }

    /// Rebuilds the CSR views, preserving adjacency-list order.
    fn rebuild_csr(&mut self, g: &crate::TaskGraph) {
        self.pred_off.clear();
        self.pred_task.clear();
        self.pred_cost.clear();
        self.succ_off.clear();
        self.succ_task.clear();
        self.succ_cost.clear();
        self.pred_off.push(0);
        self.succ_off.push(0);
        for t in g.tasks() {
            for e in g.predecessors(t) {
                self.pred_task.push(e.task);
                self.pred_cost.push(e.cost);
            }
            for e in g.successors(t) {
                self.succ_task.push(e.task);
                self.succ_cost.push(e.cost);
            }
            self.pred_off.push(self.pred_task.len() as u32);
            self.succ_off.push(self.succ_task.len() as u32);
        }
        self.init_preds.clear();
        self.init_ready.clear();
        for t in 0..g.task_count() {
            let deg = self.pred_off[t + 1] - self.pred_off[t];
            self.init_preds.push(deg);
            if deg == 0 {
                self.init_ready.push(TaskId(t as u32));
            }
        }
    }

    /// If `g`'s dependency structure is exactly the cached CSR structure
    /// (same adjacency ids in the same order), refreshes the CSR edge costs
    /// in place and returns `true` — the cached topological order remains
    /// valid because it is a pure function of that structure. Returns
    /// `false` on the first mismatch (partial cost writes are fine: the
    /// caller then rebuilds everything). Exact comparison, no fingerprints.
    fn try_refresh_csr_costs(&mut self, g: &crate::TaskGraph) -> bool {
        let ne = g.dependency_count();
        if self.pred_task.len() != ne
            || self.succ_task.len() != ne
            || self.pred_off.len() != self.n_tasks + 1
            || self.succ_off.len() != self.n_tasks + 1
        {
            return false;
        }
        let mut pi = 0usize;
        let mut si = 0usize;
        for t in g.tasks() {
            let ti = t.index();
            for e in g.predecessors(t) {
                if self.pred_task[pi] != e.task {
                    return false;
                }
                self.pred_cost[pi] = e.cost;
                pi += 1;
            }
            if self.pred_off[ti + 1] as usize != pi {
                return false;
            }
            for e in g.successors(t) {
                if self.succ_task[si] != e.task {
                    return false;
                }
                self.succ_cost[si] = e.cost;
                si += 1;
            }
            if self.succ_off[ti + 1] as usize != si {
                return false;
            }
        }
        true
    }

    /// Clears the per-run placement state (tables untouched): an epoch bump
    /// for the placed flags, straight copies of the cached initial
    /// predecessor counters and ready set (pure functions of the CSR
    /// structure, maintained by `rebuild_csr`), and no `finish`/`node_of`
    /// fills — those entries are never read for tasks unplaced in the
    /// current epoch.
    fn clear_run_state(&mut self) {
        let nt = self.n_tasks;
        let nv = self.n_nodes;
        // saga-lint: allow(hot-alloc) — warm-up only: grows the timeline table the first time a node count is seen; steady-state runs hit the resize_with no-op and the clear below reuses capacity
        self.timelines.resize_with(nv, Vec::new);
        for tl in &mut self.timelines {
            tl.clear();
        }
        set_all(&mut self.max_finish, nv, 0.0);
        set_all(&mut self.tail_finish, nv, 0.0);
        if self.placed_epoch.len() != nt || self.epoch == u32::MAX {
            set_all(&mut self.placed_epoch, nt, 0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        if self.finish.len() != nt {
            self.finish.resize(nt, f64::NAN);
            self.node_of.resize(nt, NodeId(0));
        }
        self.placed_count = 0;
        self.unplaced_preds.clone_from(&self.init_preds);
        self.ready.clone_from(&self.init_ready);
        self.run_clean = true;
    }

    /// Kahn's algorithm with smallest-id tie-breaking, matching
    /// `TaskGraph::topological_order` exactly. For graphs of at most 64
    /// tasks (every Section-VI/VII annealing instance) the frontier is a
    /// u64 bitmask — pop-smallest is `trailing_zeros`, admission is a bit
    /// set — which makes the per-perturbation structural rebuild a handful
    /// of ALU ops; larger graphs use a binary min-heap over task ids. Both
    /// frontiers pop tasks in ascending id order, so the emitted order is
    /// the same deterministic smallest-id Kahn order in all cases.
    fn rebuild_topo(&mut self) {
        use std::cmp::Reverse;
        let nt = self.n_tasks;
        if nt <= 64 {
            self.indeg_scratch.clear();
            self.indeg_scratch.extend_from_slice(&self.init_preds);
            let mut frontier: u64 = 0;
            for &t in &self.init_ready {
                frontier |= 1u64 << t.index();
            }
            self.topo.clear();
            while frontier != 0 {
                let ti = frontier.trailing_zeros() as usize;
                frontier &= frontier - 1;
                let t = TaskId(ti as u32);
                self.topo.push(t);
                let (s, e) = self.succ_range(t);
                for i in s..e {
                    let st = self.succ_task[i];
                    let d = &mut self.indeg_scratch[st.index()];
                    *d -= 1;
                    if *d == 0 {
                        frontier |= 1u64 << st.index();
                    }
                }
            }
            debug_assert_eq!(self.topo.len(), nt, "graph must be acyclic");
            return;
        }
        self.indeg_scratch.clear();
        for t in 0..nt {
            self.indeg_scratch
                .push(self.pred_off[t + 1] - self.pred_off[t]);
        }
        self.frontier_heap.clear();
        for t in 0..nt {
            if self.indeg_scratch[t] == 0 {
                self.frontier_heap.push(Reverse(TaskId(t as u32)));
            }
        }
        self.topo.clear();
        while let Some(Reverse(t)) = self.frontier_heap.pop() {
            self.topo.push(t);
            let (s, e) = self.succ_range(t);
            for i in s..e {
                let st = self.succ_task[i];
                let d = &mut self.indeg_scratch[st.index()];
                *d -= 1;
                if *d == 0 {
                    self.frontier_heap.push(Reverse(st));
                }
            }
        }
        debug_assert_eq!(self.topo.len(), nt, "graph must be acyclic");
    }

    #[inline]
    fn pred_range(&self, t: TaskId) -> (usize, usize) {
        (
            self.pred_off[t.index()] as usize,
            self.pred_off[t.index() + 1] as usize,
        )
    }

    #[inline]
    fn succ_range(&self, t: TaskId) -> (usize, usize) {
        (
            self.succ_off[t.index()] as usize,
            self.succ_off[t.index() + 1] as usize,
        )
    }

    // ---- instance views ----

    /// Number of tasks in the instance the context was last reset for.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.n_tasks
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_nodes as u32).map(NodeId)
    }

    /// Iterator over all task ids.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.n_tasks as u32).map(TaskId)
    }

    /// Cached execution time `c(t) / s(v)`.
    #[inline]
    pub fn exec_time(&self, t: TaskId, v: NodeId) -> f64 {
        self.exec[t.index() * self.n_nodes + v.index()]
    }

    /// The execution-time row of `t` over all nodes.
    #[inline]
    pub fn exec_row(&self, t: TaskId) -> &[f64] {
        &self.exec[t.index() * self.n_nodes..(t.index() + 1) * self.n_nodes]
    }

    /// Communication time of `bytes` from `u` to `v` (0 on the same node or
    /// for empty messages), from the cached link matrix.
    #[inline]
    pub fn comm_time(&self, bytes: f64, u: NodeId, v: NodeId) -> f64 {
        if u == v || bytes == 0.0 {
            0.0
        } else {
            bytes / self.links[u.index() * self.n_nodes + v.index()]
        }
    }

    /// The fastest node (lowest id on ties), cached at reset.
    #[inline]
    pub fn fastest_node(&self) -> NodeId {
        self.fastest
    }

    /// Predecessor edges of `t` as `(predecessor, data size)`, in the
    /// graph's adjacency order.
    pub fn preds(&self, t: TaskId) -> impl Iterator<Item = (TaskId, f64)> + '_ {
        let (s, e) = self.pred_range(t);
        self.pred_task[s..e]
            .iter()
            .copied()
            .zip(self.pred_cost[s..e].iter().copied())
    }

    /// Successor edges of `t` as `(successor, data size)`.
    pub fn succs(&self, t: TaskId) -> impl Iterator<Item = (TaskId, f64)> + '_ {
        let (s, e) = self.succ_range(t);
        self.succ_task[s..e]
            .iter()
            .copied()
            .zip(self.succ_cost[s..e].iter().copied())
    }

    /// The cached topological order (smallest-id tie-breaking).
    #[inline]
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// HEFT-style average execution time per task
    /// (`c(t) * mean_v 1/s(v)`, 0 for zero-cost tasks).
    #[inline]
    pub fn avg_exec(&self) -> &[f64] {
        &self.avg_exec
    }

    /// Average communication time of a dependency carrying `bytes`.
    #[inline]
    pub fn avg_comm(&self, bytes: f64) -> f64 {
        if bytes == 0.0 {
            0.0
        } else {
            bytes * self.inv_link
        }
    }

    // ---- run state queries ----

    /// Whether `t` has been placed.
    #[inline]
    pub fn is_placed(&self, t: TaskId) -> bool {
        self.placed_epoch[t.index()] == self.epoch
    }

    /// Whether every predecessor of `t` has been placed.
    #[inline]
    pub fn is_ready(&self, t: TaskId) -> bool {
        self.unplaced_preds[t.index()] == 0
    }

    /// Number of tasks placed so far.
    #[inline]
    pub fn placed_count(&self) -> usize {
        self.placed_count
    }

    /// Unplaced tasks whose predecessors are all placed, ascending by id.
    /// Maintained incrementally by [`place`](Self::place).
    #[inline]
    pub fn ready(&self) -> &[TaskId] {
        &self.ready
    }

    /// Finish time of a placed task.
    ///
    /// # Panics
    /// Panics (debug) if the task has not been placed.
    #[inline]
    pub fn finish_time(&self, t: TaskId) -> f64 {
        debug_assert!(self.is_placed(t), "task {t} not placed yet");
        self.finish[t.index()]
    }

    /// Node of a placed task.
    #[inline]
    pub fn node_of(&self, t: TaskId) -> NodeId {
        debug_assert!(self.is_placed(t), "task {t} not placed yet");
        self.node_of[t.index()]
    }

    /// Earliest time all of `t`'s input data can be present on `v`:
    /// `max_p finish(p) + c(p,t)/s(node(p), v)`.
    ///
    /// # Panics
    /// Panics (debug) if a predecessor is unplaced.
    pub fn data_ready_time(&self, t: TaskId, v: NodeId) -> f64 {
        let mut ready = 0.0f64;
        let (s, e) = self.pred_range(t);
        for i in s..e {
            let p = self.pred_task[i].index();
            debug_assert!(
                self.is_placed(self.pred_task[i]),
                "predecessor {} unplaced",
                self.pred_task[i]
            );
            let arrival = self.finish[p] + self.comm_time(self.pred_cost[i], self.node_of[p], v);
            ready = ready.max(arrival);
        }
        ready
    }

    /// [`data_ready_time`](Self::data_ready_time) for every node at once,
    /// into `out` (length `node_count()`). One pass over the predecessors
    /// loads each `finish`/`node_of`/link row once instead of once per node;
    /// per node the arrivals fold in the same predecessor order, so the
    /// results are bit-identical to the per-node query.
    pub fn data_ready_times_into(&self, t: TaskId, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_nodes);
        out.fill(0.0);
        let (s, e) = self.pred_range(t);
        for i in s..e {
            let p = self.pred_task[i].index();
            debug_assert!(
                self.is_placed(self.pred_task[i]),
                "predecessor {} unplaced",
                self.pred_task[i]
            );
            let f = self.finish[p];
            let pn = self.node_of[p].index();
            let cost = self.pred_cost[i];
            if cost == 0.0 {
                // empty message: arrives at `f` everywhere
                for r in out.iter_mut() {
                    *r = r.max(f);
                }
                continue;
            }
            // Branchless inner loop: every entry folds elementwise, so the
            // sender's own entry (whose division result — possibly junk off
            // the unused link-matrix diagonal — must not count) is saved
            // first and refolded with the local arrival `f` afterwards.
            // Off-diagonal entries compute exactly the branchy form's
            // `f + cost / row[v]`.
            let keep = out[pn];
            let row = &self.links[pn * self.n_nodes..][..self.n_nodes];
            fold_arrivals(out, row, f, cost);
            out[pn] = keep.max(f);
        }
    }

    /// Earliest start on `v` at or after `ready` considering only the tail
    /// of the timeline (no insertion).
    pub fn earliest_start_append(&self, v: NodeId, ready: f64) -> f64 {
        match self.timelines[v.index()].last() {
            Some(slot) => slot.finish.max(ready),
            None => ready,
        }
    }

    /// Earliest start on `v` at or after `ready`, allowed to fill an idle
    /// gap between already-placed tasks (HEFT's insertion policy).
    pub fn earliest_start_insertion(&self, v: NodeId, ready: f64, duration: f64) -> f64 {
        let slots = &self.timelines[v.index()];
        if duration.is_infinite() {
            // only the tail can host a never-ending task
            return self.earliest_start_append(v, ready);
        }
        // Data arriving at or after every slot's finish: the scan's candidate
        // never rises above `ready` and both the early gap-return and the
        // fall-through return exactly `ready` — skip the scan. (Gated on the
        // maintained per-node max finish, NOT the last slot's finish: a
        // zero-duration boundary task at the end of the slot vector can
        // finish earlier than its predecessors.)
        if !slots.is_empty() && ready >= self.max_finish[v.index()] {
            return ready;
        }
        let mut candidate = ready;
        for s in slots {
            if candidate + duration <= s.start + crate::schedule::TIME_EPS * s.start.abs().max(1.0)
            {
                return candidate;
            }
            candidate = candidate.max(s.finish);
        }
        candidate
    }

    /// The earliest-finish-time query used by HEFT-family schedulers:
    /// `(start, finish)` for placing `t` on `v` now.
    pub fn eft(&self, t: TaskId, v: NodeId, insertion: bool) -> (f64, f64) {
        let duration = self.exec_time(t, v);
        let ready = self.data_ready_time(t, v);
        let start = if insertion {
            self.earliest_start_insertion(v, ready, duration)
        } else {
            self.earliest_start_append(v, ready)
        };
        (start, start + duration)
    }

    /// Finish time of the last slot on each node's timeline (`0.0` for an
    /// empty timeline), maintained alongside the timelines by
    /// [`place`](Self::place)/[`unplace`](Self::unplace). Composing
    /// `append_tails()[v].max(ready)` reproduces
    /// [`earliest_start_append`](Self::earliest_start_append) bit for bit:
    /// finish times are never negative, so the empty-timeline `0.0` folds
    /// away against any data-ready time.
    #[inline]
    pub fn append_tails(&self) -> &[f64] {
        &self.tail_finish
    }

    /// [`eft`](Self::eft) for every node at once, into `starts`/`finishes`
    /// (length `node_count()`): one [`data_ready_times_into`] row pass, then
    /// a branchless elementwise compose of the maintained append-tail row
    /// and the cached execution row. With `insertion`, nodes whose gap
    /// search could beat the append tail (data ready before the node's max
    /// finish — the same early-out [`earliest_start_insertion`] gates on)
    /// fall back to the scalar gap scan; every other node's answer is
    /// already exact in the row. Bit-identical to the per-node query on
    /// every path.
    ///
    /// [`data_ready_times_into`]: Self::data_ready_times_into
    /// [`earliest_start_insertion`]: Self::earliest_start_insertion
    pub fn eft_row_into(
        &self,
        t: TaskId,
        starts: &mut [f64],
        finishes: &mut [f64],
        insertion: bool,
    ) {
        if !insertion {
            self.eft_row_append_into(t, starts, finishes);
            return;
        }
        debug_assert_eq!(finishes.len(), self.n_nodes);
        self.data_ready_times_into(t, starts);
        let exec = &self.exec[t.index() * self.n_nodes..(t.index() + 1) * self.n_nodes];
        for (v, s) in starts.iter_mut().enumerate() {
            let ready = *s;
            // `ready >= max_finish` (and the empty timeline, where the max
            // finish is 0): every branch of the scalar query answers
            // `ready`, which the row already holds.
            if ready < self.max_finish[v] {
                *s = self.earliest_start_insertion(NodeId(v as u32), ready, exec[v]);
            }
        }
        for ((f, &s), &d) in finishes.iter_mut().zip(starts.iter()).zip(exec) {
            *f = s + d;
        }
    }

    /// The append-only fast variant of [`eft_row_into`](Self::eft_row_into)
    /// (no insertion fallback, fully branchless): the data-ready row pass
    /// followed by the AVX-dispatched tail/exec compose.
    #[inline]
    pub fn eft_row_append_into(&self, t: TaskId, starts: &mut [f64], finishes: &mut [f64]) {
        debug_assert_eq!(finishes.len(), self.n_nodes);
        self.data_ready_times_into(t, starts);
        let exec = &self.exec[t.index() * self.n_nodes..(t.index() + 1) * self.n_nodes];
        compose_append_rows(starts, finishes, &self.tail_finish, exec);
    }

    /// Reconciles the cached tail-finish row of `v` against its timeline
    /// (debug builds only) — the invariant every row compose relies on.
    #[inline]
    fn debug_check_tail(&self, v: NodeId) {
        debug_assert_eq!(
            self.tail_finish[v.index()].to_bits(),
            self.timelines[v.index()]
                .last()
                .map_or(0.0, |s| s.finish)
                .to_bits(),
            "cached tail finish diverged from timeline {v}"
        );
    }

    /// Current makespan over placed tasks. Every placed task sits on
    /// exactly one node timeline and `max_finish` is maintained per
    /// placement, so folding the per-node maxima visits `|V|` entries
    /// instead of scanning (and epoch-filtering) every task's finish slot —
    /// same value set under the same `f64::max` fold from `0.0`, so the
    /// result is bit-identical.
    pub fn current_makespan(&self) -> f64 {
        self.max_finish.iter().copied().fold(0.0, f64::max)
    }

    // ---- mutation ----

    /// Places `t` on `v` at `start`; the finish time comes from the cached
    /// execution time. Updates the ready queue incrementally.
    ///
    /// # Panics
    /// Panics (debug) on double placement. The caller is responsible for a
    /// feasible `start` (as returned by [`eft`](Self::eft)).
    pub fn place(&mut self, t: TaskId, v: NodeId, start: f64) {
        debug_assert!(!self.is_placed(t), "task {t} placed twice");
        self.run_clean = false;
        if self.recording {
            self.rec_task.push(t);
            self.rec_node.push(v);
            self.rec_start.push(start);
        }
        let duration = self.exec_time(t, v);
        let finish = start + duration;
        let timeline = &mut self.timelines[v.index()];
        let pos = timeline.partition_point(|s| s.start <= start);
        timeline.insert(
            pos,
            Slot {
                start,
                finish,
                task: t,
            },
        );
        let mf = &mut self.max_finish[v.index()];
        *mf = mf.max(finish);
        if pos + 1 == timeline.len() {
            // inserted at the tail; interior inserts leave the last slot —
            // and therefore the cached tail finish — untouched
            self.tail_finish[v.index()] = finish;
        }
        self.debug_check_tail(v);
        self.finish[t.index()] = finish;
        self.node_of[t.index()] = v;
        self.placed_epoch[t.index()] = self.epoch;
        self.placed_count += 1;
        // ready-queue maintenance: remove t, admit newly ready successors
        if let Ok(pos) = self.ready.binary_search(&t) {
            self.ready.remove(pos);
        }
        let (s, e) = self.succ_range(t);
        for i in s..e {
            let st = self.succ_task[i];
            let d = &mut self.unplaced_preds[st.index()];
            *d -= 1;
            if *d == 0 && self.placed_epoch[st.index()] != self.epoch {
                if let Err(pos) = self.ready.binary_search(&st) {
                    self.ready.insert(pos, st);
                }
            }
        }
    }

    /// Convenience: compute the EFT on `v` and place there. Returns the
    /// finish time.
    pub fn place_eft(&mut self, t: TaskId, v: NodeId, insertion: bool) -> f64 {
        let (start, finish) = self.eft(t, v, insertion);
        self.place(t, v, start);
        finish
    }

    /// Reverts the placement of `t`, restoring the ready queue and
    /// predecessor counters — the undo operation exact solvers use for
    /// depth-first search without cloning the whole context.
    ///
    /// Placements must be reverted in LIFO order relative to `t`'s
    /// successors (no successor of `t` may still be placed).
    ///
    /// # Panics
    /// Panics (debug) if `t` is not placed or a successor still is.
    pub fn unplace(&mut self, t: TaskId) {
        debug_assert!(self.is_placed(t), "task {t} not placed");
        debug_assert!(
            !self.recording,
            "unplace during placement recording (exact solvers don't record)"
        );
        self.run_clean = false;
        let v = self.node_of[t.index()];
        let timeline = &mut self.timelines[v.index()];
        let pos = timeline
            .iter()
            .position(|s| s.task == t)
            .expect("placed task missing from its timeline");
        timeline.remove(pos);
        self.max_finish[v.index()] = timeline.iter().map(|s| s.finish).fold(0.0, f64::max);
        self.tail_finish[v.index()] = timeline.last().map_or(0.0, |s| s.finish);
        self.debug_check_tail(v);
        self.placed_epoch[t.index()] = 0;
        self.finish[t.index()] = f64::NAN;
        self.placed_count -= 1;
        let (s, e) = self.succ_range(t);
        for i in s..e {
            let st = self.succ_task[i];
            debug_assert!(!self.is_placed(st), "successor {st} still placed");
            if self.unplaced_preds[st.index()] == 0 {
                if let Ok(pos) = self.ready.binary_search(&st) {
                    self.ready.remove(pos);
                }
            }
            self.unplaced_preds[st.index()] += 1;
        }
        // t itself becomes ready again (its predecessors are untouched)
        if self.unplaced_preds[t.index()] == 0 {
            if let Err(pos) = self.ready.binary_search(&t) {
                self.ready.insert(pos, t);
            }
        }
    }

    /// Builds the completed [`Schedule`] from the timelines without
    /// consuming the context.
    ///
    /// # Panics
    /// Panics if any task is unplaced — schedulers must place every task.
    pub fn snapshot_schedule(&self) -> Schedule {
        assert_eq!(
            self.placed_count, self.n_tasks,
            "scheduler left tasks unplaced"
        );
        // Emit the starts recorded at placement time. Recomputing them as
        // `finish - duration` loses an ulp, which is enough to re-order a
        // zero-duration task behind the slot whose boundary it sits on and
        // make verify() report a phantom overlap.
        let mut assignments: Vec<Assignment> = Vec::with_capacity(self.placed_count);
        for (vi, timeline) in self.timelines.iter().enumerate() {
            for s in timeline {
                assignments.push(Assignment {
                    task: s.task,
                    node: NodeId(vi as u32),
                    start: s.start,
                    finish: s.finish,
                });
            }
        }
        Schedule::from_assignments(self.n_nodes, assignments)
    }

    // ---- rankings ----

    /// Upward rank of every task (HEFT's priority) into `out`:
    /// `rank_u(t) = avg_exec(t) + max_s (avg_comm(t,s) + rank_u(s))`.
    pub fn upward_ranks_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.n_tasks, 0.0);
        for &t in self.topo.iter().rev() {
            let mut best = 0.0f64;
            let (s, e) = self.succ_range(t);
            for i in s..e {
                best = best.max(self.avg_comm(self.succ_cost[i]) + out[self.succ_task[i].index()]);
            }
            out[t.index()] = self.avg_exec[t.index()] + best;
        }
    }

    /// Downward rank of every task (CPoP's second component) into `out`:
    /// `rank_d(t) = max_p (rank_d(p) + avg_exec(p) + avg_comm(p,t))`.
    pub fn downward_ranks_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.n_tasks, 0.0);
        for &t in &self.topo {
            let (s, e) = self.succ_range(t);
            for i in s..e {
                let via =
                    out[t.index()] + self.avg_exec[t.index()] + self.avg_comm(self.succ_cost[i]);
                let r = &mut out[self.succ_task[i].index()];
                *r = r.max(via);
            }
        }
    }

    /// The critical-path length `max_t rank_u(t) + rank_d(t)` given the two
    /// rank vectors.
    pub fn critical_length(up: &[f64], down: &[f64]) -> f64 {
        let mut length = 0.0f64;
        for (u, d) in up.iter().zip(down) {
            let l = u + d;
            if l > length {
                length = l;
            }
        }
        length
    }

    // ---- scratch pools ----

    /// Borrows a cleared `Vec<f64>` from the pool (allocates only until the
    /// pool has warmed up). Return it with [`give_f64`](Self::give_f64).
    pub fn take_f64(&mut self) -> Vec<f64> {
        self.f64_pool.pop().unwrap_or_default()
    }

    /// Returns a scratch buffer to the pool.
    pub fn give_f64(&mut self, mut buf: Vec<f64>) {
        buf.clear();
        self.f64_pool.push(buf);
    }

    /// Borrows a cleared `Vec<TaskId>` from the pool.
    pub fn take_tasks(&mut self) -> Vec<TaskId> {
        self.task_pool.pop().unwrap_or_default()
    }

    /// Returns a task scratch buffer to the pool.
    pub fn give_tasks(&mut self, mut buf: Vec<TaskId>) {
        buf.clear();
        self.task_pool.push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, TaskGraph};

    fn diamond_instance() -> Instance {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 2.0);
        let c = g.add_task("c", 3.0);
        let d = g.add_task("d", 4.0);
        g.add_dependency(a, b, 0.5).unwrap();
        g.add_dependency(a, c, 0.5).unwrap();
        g.add_dependency(b, d, 0.5).unwrap();
        g.add_dependency(c, d, 0.5).unwrap();
        Instance::new(Network::complete(&[1.0, 2.0], 2.0), g)
    }

    #[test]
    fn cached_tables_match_direct_computation() {
        let inst = diamond_instance();
        let mut ctx = SchedContext::new();
        ctx.reset(&inst);
        for t in inst.graph.tasks() {
            for v in inst.network.nodes() {
                assert_eq!(
                    ctx.exec_time(t, v),
                    inst.network.exec_time(inst.graph.cost(t), v)
                );
            }
        }
        assert_eq!(ctx.comm_time(0.5, NodeId(0), NodeId(1)), 0.25);
        assert_eq!(ctx.comm_time(0.5, NodeId(1), NodeId(1)), 0.0);
        assert_eq!(ctx.topo_order(), &inst.graph.topological_order()[..]);
        assert_eq!(ctx.fastest_node(), inst.network.fastest_node());
        let avg = crate::ranking::AverageCosts::new(&inst);
        assert_eq!(ctx.avg_exec(), &avg.exec[..]);
        assert_eq!(ctx.avg_comm(0.5), avg.comm(0.5));
    }

    #[test]
    fn ready_queue_updates_incrementally() {
        let inst = diamond_instance();
        let mut ctx = SchedContext::new();
        ctx.reset(&inst);
        assert_eq!(ctx.ready(), &[TaskId(0)]);
        ctx.place(TaskId(0), NodeId(0), 0.0);
        assert_eq!(ctx.ready(), &[TaskId(1), TaskId(2)]);
        ctx.place(TaskId(2), NodeId(1), 2.0);
        assert_eq!(ctx.ready(), &[TaskId(1)]);
        ctx.place(TaskId(1), NodeId(0), 1.0);
        assert_eq!(ctx.ready(), &[TaskId(3)]);
        ctx.place(TaskId(3), NodeId(0), 10.0);
        assert!(ctx.ready().is_empty());
        assert_eq!(ctx.placed_count(), 4);
        ctx.snapshot_schedule().verify(&inst).unwrap();
    }

    #[test]
    fn unplace_restores_state_exactly() {
        let inst = diamond_instance();
        let mut ctx = SchedContext::new();
        ctx.reset(&inst);
        ctx.place(TaskId(0), NodeId(0), 0.0);
        let ready_before = ctx.ready().to_vec();
        let makespan_before = ctx.current_makespan();
        ctx.place(TaskId(1), NodeId(1), 3.0);
        ctx.unplace(TaskId(1));
        assert_eq!(ctx.ready(), &ready_before[..]);
        assert_eq!(ctx.current_makespan(), makespan_before);
        assert!(!ctx.is_placed(TaskId(1)));
        assert!(ctx.is_ready(TaskId(1)));
        // and the timeline slot is gone: same EFT as before
        let (s, _) = ctx.eft(TaskId(2), NodeId(1), false);
        ctx.place(TaskId(2), NodeId(1), s);
        assert_eq!(ctx.node_of(TaskId(2)), NodeId(1));
    }

    #[test]
    fn reset_reuses_capacity_across_instances() {
        let a = diamond_instance();
        let g = TaskGraph::chain(&[1.0, 1.0], &[0.5]);
        let b = Instance::new(Network::complete(&[1.0], 1.0), g);
        let mut ctx = SchedContext::new();
        ctx.reset(&a);
        ctx.place(TaskId(0), NodeId(1), 0.0);
        ctx.reset(&b);
        assert_eq!(ctx.task_count(), 2);
        assert_eq!(ctx.node_count(), 1);
        assert_eq!(ctx.ready(), &[TaskId(0)]);
        assert_eq!(ctx.placed_count(), 0);
        ctx.place(TaskId(0), NodeId(0), 0.0);
        ctx.place(TaskId(1), NodeId(0), 1.5);
        ctx.snapshot_schedule().verify(&b).unwrap();
    }

    #[test]
    fn ranks_match_ranking_module() {
        let inst = diamond_instance();
        let mut ctx = SchedContext::new();
        ctx.reset(&inst);
        let mut up = Vec::new();
        let mut down = Vec::new();
        ctx.upward_ranks_into(&mut up);
        ctx.downward_ranks_into(&mut down);
        assert_eq!(up, crate::ranking::upward_rank(&inst));
        assert_eq!(down, crate::ranking::downward_rank(&inst));
        let cp = crate::ranking::critical_path(&inst);
        assert_eq!(SchedContext::critical_length(&up, &down), cp.length);
    }

    #[test]
    fn insertion_shortcut_gates_on_max_finish_not_last_slot() {
        // One node; A (cost 1) at [2,3]; zero-cost Z legally at [2,2] —
        // partition_point orders Z after A, so the timeline's *last* slot
        // finishes at 2 while the max finish is 3. A 1-long query with data
        // ready at 2.5 must not slip inside A's slot.
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        g.add_task("z", 0.0);
        g.add_task("q", 1.0);
        let inst = Instance::new(Network::complete(&[1.0], 1.0), g);
        let mut ctx = SchedContext::new();
        ctx.reset(&inst);
        ctx.place(TaskId(0), NodeId(0), 2.0);
        ctx.place(TaskId(1), NodeId(0), 2.0); // zero-duration boundary task
        assert_eq!(ctx.earliest_start_insertion(NodeId(0), 2.5, 1.0), 3.0);
        // a placement driven through eft stays verifiable
        let (s, _) = ctx.eft(TaskId(2), NodeId(0), true);
        ctx.place(TaskId(2), NodeId(0), s);
        ctx.snapshot_schedule().verify(&inst).unwrap();
        // and unplace recomputes the per-node max finish
        ctx.unplace(TaskId(2));
        ctx.unplace(TaskId(0));
        assert_eq!(ctx.earliest_start_insertion(NodeId(0), 2.5, 1.0), 2.5);
    }

    #[test]
    fn pinned_tables_survive_reset_and_unpin_rebuilds() {
        let inst = diamond_instance();
        let mut ctx = SchedContext::new();
        ctx.pin_tables(&inst);
        ctx.place(TaskId(0), NodeId(0), 0.0);
        ctx.reset(&inst); // run state cleared, tables kept
        assert_eq!(ctx.placed_count(), 0);
        assert_eq!(ctx.ready(), &[TaskId(0)]);
        assert_eq!(ctx.exec_time(TaskId(1), NodeId(1)), 1.0);
        ctx.unpin_tables();
        // after unpin, reset follows instance changes again
        let mut changed = inst.clone();
        changed.network.set_speed(NodeId(1), 4.0);
        ctx.reset(&changed);
        assert_eq!(ctx.exec_time(TaskId(1), NodeId(1)), 0.5);
    }

    #[test]
    fn eft_rows_match_per_node_queries_bit_for_bit() {
        // Includes a zero-duration boundary task so the row path sees the
        // max_finish-vs-tail split (the timeline's last slot finishes at 2
        // while the max finish is 3 — see the test above).
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        g.add_task("z", 0.0);
        g.add_task("q", 1.0);
        g.add_task("r", 2.0);
        let inst = Instance::new(Network::complete(&[1.0, 2.0], 2.0), g);
        let mut ctx = SchedContext::new();
        ctx.reset(&inst);
        ctx.place(TaskId(0), NodeId(0), 2.0);
        ctx.place(TaskId(1), NodeId(0), 2.0); // zero-duration boundary task
        let nv = ctx.node_count();
        let (mut starts, mut finishes) = ([0.0f64; 2], [0.0f64; 2]);
        for t in [TaskId(2), TaskId(3)] {
            for insertion in [false, true] {
                ctx.eft_row_into(t, &mut starts[..nv], &mut finishes[..nv], insertion);
                for v in ctx.nodes() {
                    let (s, f) = ctx.eft(t, v, insertion);
                    assert_eq!(s.to_bits(), starts[v.index()].to_bits(), "{t} on {v}");
                    assert_eq!(f.to_bits(), finishes[v.index()].to_bits(), "{t} on {v}");
                }
            }
        }
        assert_eq!(ctx.append_tails(), &[2.0, 0.0]);
    }

    #[test]
    fn argmin_helpers_keep_lowest_index_on_ties() {
        assert_eq!(argmin_finish(&[3.0, 1.0, 1.0, 2.0]), NodeId(1));
        assert_eq!(argmin_finish(&[5.0, 5.0]), NodeId(0));
        // NaN comparisons are always false, so NaN never displaces an
        // earlier candidate and a leading NaN is never displaced — exactly
        // the scalar comparators' first-entry-then-strict-less behaviour
        assert_eq!(argmin_finish(&[f64::NAN, 2.0, 1.0]), NodeId(0));
        assert_eq!(argmin_finish(&[1.0, f64::NAN]), NodeId(0));
        assert_eq!(
            argmin_start_finish(&[2.0, 1.0, 1.0], &[9.0, 8.0, 7.0]),
            NodeId(2)
        );
        assert_eq!(argmin_start_finish(&[1.0, 1.0], &[5.0, 5.0]), NodeId(0));
    }

    #[test]
    fn scratch_pools_recycle_buffers() {
        let mut ctx = SchedContext::new();
        let mut buf = ctx.take_f64();
        buf.extend([1.0, 2.0]);
        let cap = buf.capacity();
        ctx.give_f64(buf);
        let again = ctx.take_f64();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap);
        let tasks = ctx.take_tasks();
        ctx.give_tasks(tasks);
    }
}
