//! Incremental schedule construction shared by every list scheduler.
//!
//! `ScheduleBuilder` keeps a per-node timeline of placed tasks, answers
//! "earliest feasible start" queries (with or without HEFT-style insertion
//! into idle gaps), and tracks data-ready times implied by previously placed
//! predecessors. Every algorithm in `saga-schedulers` is a strategy over this
//! one substrate, which is what makes their schedules comparable.

use crate::{Assignment, Instance, NodeId, Schedule, TaskId};

/// A placed interval on a node timeline.
#[derive(Debug, Clone, Copy)]
struct Slot {
    start: f64,
    finish: f64,
    task: TaskId,
}

/// Builds a [`Schedule`] one task at a time.
#[derive(Debug, Clone)]
pub struct ScheduleBuilder<'a> {
    inst: &'a Instance,
    /// Per-node timelines, each sorted by start time.
    timelines: Vec<Vec<Slot>>,
    /// Finish time per task (`NaN` until placed).
    finish: Vec<f64>,
    /// Node per task (undefined until placed).
    node_of: Vec<NodeId>,
    placed: Vec<bool>,
    placed_count: usize,
}

impl<'a> ScheduleBuilder<'a> {
    /// Starts an empty schedule for `inst`.
    pub fn new(inst: &'a Instance) -> Self {
        let t = inst.graph.task_count();
        ScheduleBuilder {
            inst,
            timelines: vec![Vec::new(); inst.network.node_count()],
            finish: vec![f64::NAN; t],
            node_of: vec![NodeId(0); t],
            placed: vec![false; t],
            placed_count: 0,
        }
    }

    /// The instance being scheduled.
    pub fn instance(&self) -> &Instance {
        self.inst
    }

    /// Whether `t` has been placed.
    #[inline]
    pub fn is_placed(&self, t: TaskId) -> bool {
        self.placed[t.index()]
    }

    /// Number of tasks placed so far.
    pub fn placed_count(&self) -> usize {
        self.placed_count
    }

    /// Finish time of a placed task.
    ///
    /// # Panics
    /// Panics (debug) if the task has not been placed.
    #[inline]
    pub fn finish_time(&self, t: TaskId) -> f64 {
        debug_assert!(self.placed[t.index()], "task {t} not placed yet");
        self.finish[t.index()]
    }

    /// Node of a placed task.
    #[inline]
    pub fn node_of(&self, t: TaskId) -> NodeId {
        debug_assert!(self.placed[t.index()], "task {t} not placed yet");
        self.node_of[t.index()]
    }

    /// Whether every predecessor of `t` has been placed (i.e. `t` is ready).
    pub fn is_ready(&self, t: TaskId) -> bool {
        self.inst
            .graph
            .predecessors(t)
            .iter()
            .all(|e| self.placed[e.task.index()])
    }

    /// Earliest time all of `t`'s input data can be present on `v`, given
    /// where its (already placed) predecessors ran:
    /// `max_p finish(p) + c(p,t)/s(node(p), v)`.
    ///
    /// # Panics
    /// Panics (debug) if a predecessor is unplaced.
    pub fn data_ready_time(&self, t: TaskId, v: NodeId) -> f64 {
        let mut ready = 0.0f64;
        for e in self.inst.graph.predecessors(t) {
            debug_assert!(self.placed[e.task.index()], "predecessor {} unplaced", e.task);
            let p = e.task.index();
            let arrival =
                self.finish[p] + self.inst.network.comm_time(e.cost, self.node_of[p], v);
            ready = ready.max(arrival);
        }
        ready
    }

    /// Earliest start on `v` at or after `ready` for a task of duration
    /// `duration`, considering only the tail of the timeline (no insertion).
    pub fn earliest_start_append(&self, v: NodeId, ready: f64) -> f64 {
        match self.timelines[v.index()].last() {
            Some(slot) => slot.finish.max(ready),
            None => ready,
        }
    }

    /// Earliest start on `v` at or after `ready`, allowed to fill an idle gap
    /// between already-placed tasks (HEFT's insertion policy).
    pub fn earliest_start_insertion(&self, v: NodeId, ready: f64, duration: f64) -> f64 {
        let slots = &self.timelines[v.index()];
        if duration.is_infinite() {
            // only the tail can host a never-ending task
            return self.earliest_start_append(v, ready);
        }
        let mut candidate = ready;
        for s in slots {
            if candidate + duration <= s.start + crate::schedule::TIME_EPS * s.start.abs().max(1.0)
            {
                return candidate;
            }
            candidate = candidate.max(s.finish);
        }
        candidate
    }

    /// The earliest-finish-time query used by HEFT-family schedulers:
    /// returns `(start, finish)` for placing `t` on `v` now.
    pub fn eft(&self, t: TaskId, v: NodeId, insertion: bool) -> (f64, f64) {
        let duration = self.inst.network.exec_time(self.inst.graph.cost(t), v);
        let ready = self.data_ready_time(t, v);
        let start = if insertion {
            self.earliest_start_insertion(v, ready, duration)
        } else {
            self.earliest_start_append(v, ready)
        };
        (start, start + duration)
    }

    /// Places `t` on `v` at `start`; the finish time is derived from the
    /// related-machines execution time.
    ///
    /// # Panics
    /// Panics (debug) on double placement. The caller is responsible for
    /// passing a feasible `start` (as returned by [`ScheduleBuilder::eft`]).
    pub fn place(&mut self, t: TaskId, v: NodeId, start: f64) {
        debug_assert!(!self.placed[t.index()], "task {t} placed twice");
        let duration = self.inst.network.exec_time(self.inst.graph.cost(t), v);
        let finish = start + duration;
        let timeline = &mut self.timelines[v.index()];
        let pos = timeline.partition_point(|s| s.start <= start);
        timeline.insert(pos, Slot { start, finish, task: t });
        self.finish[t.index()] = finish;
        self.node_of[t.index()] = v;
        self.placed[t.index()] = true;
        self.placed_count += 1;
    }

    /// Convenience: compute the insertion EFT on `v` and place there.
    /// Returns the finish time.
    pub fn place_eft(&mut self, t: TaskId, v: NodeId, insertion: bool) -> f64 {
        let (start, finish) = self.eft(t, v, insertion);
        self.place(t, v, start);
        finish
    }

    /// Current makespan over placed tasks.
    pub fn current_makespan(&self) -> f64 {
        self.finish
            .iter()
            .zip(&self.placed)
            .filter(|&(_, &p)| p)
            .map(|(&f, _)| f)
            .fold(0.0, f64::max)
    }

    /// Finalizes into a [`Schedule`].
    ///
    /// # Panics
    /// Panics if any task is unplaced — schedulers must place every task.
    pub fn finish(self) -> Schedule {
        assert_eq!(
            self.placed_count,
            self.inst.graph.task_count(),
            "scheduler left tasks unplaced"
        );
        // Emit the starts recorded at placement time. Recomputing them as
        // `finish - duration` loses an ulp, which is enough to re-order a
        // zero-duration task behind the slot whose boundary it sits on and
        // make verify() report a phantom overlap.
        let mut assignments: Vec<Assignment> = Vec::with_capacity(self.placed_count);
        for (vi, timeline) in self.timelines.iter().enumerate() {
            for s in timeline {
                assignments.push(Assignment {
                    task: s.task,
                    node: NodeId(vi as u32),
                    start: s.start,
                    finish: s.finish,
                });
            }
        }
        Schedule::from_assignments(self.inst.network.node_count(), assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, TaskGraph};

    fn two_node_instance() -> Instance {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 2.0);
        let b = g.add_task("b", 2.0);
        let c = g.add_task("c", 2.0);
        g.add_dependency(a, b, 4.0).unwrap();
        g.add_dependency(a, c, 4.0).unwrap();
        Instance::new(Network::complete(&[1.0, 2.0], 2.0), g)
    }

    #[test]
    fn data_ready_time_accounts_for_communication() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        b.place(TaskId(0), NodeId(0), 0.0); // finish 2
        // same node: no comm
        assert_eq!(b.data_ready_time(TaskId(1), NodeId(0)), 2.0);
        // cross node: 4 bytes / strength 2 = 2
        assert_eq!(b.data_ready_time(TaskId(1), NodeId(1)), 4.0);
    }

    #[test]
    fn append_vs_insertion_start() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        // occupy [5, 7] on node 0, leaving a gap [0, 5)
        b.place(TaskId(2), NodeId(0), 5.0);
        assert_eq!(b.earliest_start_append(NodeId(0), 0.0), 7.0);
        assert_eq!(b.earliest_start_insertion(NodeId(0), 0.0, 2.0), 0.0);
        // a 6-long task does not fit the gap
        assert_eq!(b.earliest_start_insertion(NodeId(0), 0.0, 6.0), 7.0);
        // ready time inside the gap shrinks it
        assert_eq!(b.earliest_start_insertion(NodeId(0), 4.0, 2.0), 7.0);
    }

    #[test]
    fn eft_picks_start_and_finish_consistently() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        b.place(TaskId(0), NodeId(1), 0.0); // exec 1 on speed-2 node
        let (s0, f0) = b.eft(TaskId(1), NodeId(1), true);
        assert_eq!((s0, f0), (1.0, 2.0));
        let (s1, f1) = b.eft(TaskId(1), NodeId(0), true);
        // data arrives at 1 + 4/2 = 3, exec 2 on speed-1
        assert_eq!((s1, f1), (3.0, 5.0));
    }

    #[test]
    fn finish_produces_verifiable_schedule() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        let (s, _) = b.eft(TaskId(0), NodeId(1), true);
        b.place(TaskId(0), NodeId(1), s);
        let (s, _) = b.eft(TaskId(1), NodeId(1), true);
        b.place(TaskId(1), NodeId(1), s);
        let (s, _) = b.eft(TaskId(2), NodeId(0), true);
        b.place(TaskId(2), NodeId(0), s);
        let sched = b.finish();
        sched.verify(&inst).unwrap();
        assert!(sched.makespan() > 0.0);
    }

    #[test]
    fn insertion_respects_existing_slots() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        b.place(TaskId(0), NodeId(0), 0.0); // [0,2]
        b.place(TaskId(1), NodeId(0), 6.0); // [6,8]
        // 2-long task fits in [2,6) gap
        assert_eq!(b.earliest_start_insertion(NodeId(0), 0.0, 2.0), 2.0);
        // 4-long task fits exactly
        assert_eq!(b.earliest_start_insertion(NodeId(0), 0.0, 4.0), 2.0);
        // 4.5-long doesn't
        assert_eq!(b.earliest_start_insertion(NodeId(0), 0.0, 4.5), 8.0);
    }

    #[test]
    fn is_ready_tracks_predecessors() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        assert!(b.is_ready(TaskId(0)));
        assert!(!b.is_ready(TaskId(1)));
        b.place(TaskId(0), NodeId(0), 0.0);
        assert!(b.is_ready(TaskId(1)));
        assert!(b.is_ready(TaskId(2)));
    }

    #[test]
    fn current_makespan_tracks_placed_tasks() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        assert_eq!(b.current_makespan(), 0.0);
        b.place(TaskId(0), NodeId(0), 0.0);
        assert_eq!(b.current_makespan(), 2.0);
        b.place(TaskId(1), NodeId(1), 4.0);
        assert_eq!(b.current_makespan(), 5.0);
    }

    #[test]
    fn infinite_duration_task_appends() {
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        let inst = Instance::new(Network::complete(&[0.0], 1.0), g);
        let mut b = ScheduleBuilder::new(&inst);
        let (s, f) = b.eft(TaskId(0), NodeId(0), true);
        assert_eq!(s, 0.0);
        assert!(f.is_infinite());
        b.place(TaskId(0), NodeId(0), s);
        let sched = b.finish();
        sched.verify(&inst).unwrap();
    }
}
