//! Incremental schedule construction shared by every list scheduler.
//!
//! `ScheduleBuilder` is the borrow-checked convenience wrapper over the
//! allocation-free [`SchedContext`] kernel: it pairs a context with the
//! instance it was reset for, so one-shot callers get the old
//! `new → place → finish` API while hot loops (PISA) hold a long-lived
//! context and call [`Scheduler::schedule_into`] instead. Both paths share
//! one implementation, which is what keeps their schedules bit-identical.
//!
//! [`Scheduler::schedule_into`]: https://docs.rs/saga-schedulers

use crate::{Instance, NodeId, SchedContext, Schedule, TaskId};

/// Builds a [`Schedule`] one task at a time.
#[derive(Debug, Clone)]
pub struct ScheduleBuilder<'a> {
    inst: &'a Instance,
    ctx: SchedContext,
}

impl<'a> ScheduleBuilder<'a> {
    /// Starts an empty schedule for `inst`.
    pub fn new(inst: &'a Instance) -> Self {
        let mut ctx = SchedContext::new();
        ctx.reset(inst);
        ScheduleBuilder { inst, ctx }
    }

    /// The instance being scheduled.
    pub fn instance(&self) -> &Instance {
        self.inst
    }

    /// The underlying kernel context (cost tables, ready queue, timelines).
    pub fn ctx(&self) -> &SchedContext {
        &self.ctx
    }

    /// Whether `t` has been placed.
    #[inline]
    pub fn is_placed(&self, t: TaskId) -> bool {
        self.ctx.is_placed(t)
    }

    /// Number of tasks placed so far.
    pub fn placed_count(&self) -> usize {
        self.ctx.placed_count()
    }

    /// Finish time of a placed task.
    ///
    /// # Panics
    /// Panics (debug) if the task has not been placed.
    #[inline]
    pub fn finish_time(&self, t: TaskId) -> f64 {
        self.ctx.finish_time(t)
    }

    /// Node of a placed task.
    #[inline]
    pub fn node_of(&self, t: TaskId) -> NodeId {
        self.ctx.node_of(t)
    }

    /// Whether every predecessor of `t` has been placed (i.e. `t` is ready).
    pub fn is_ready(&self, t: TaskId) -> bool {
        self.ctx.is_ready(t)
    }

    /// Unplaced tasks whose predecessors are all placed, ascending by id.
    pub fn ready(&self) -> &[TaskId] {
        self.ctx.ready()
    }

    /// Earliest time all of `t`'s input data can be present on `v`, given
    /// where its (already placed) predecessors ran:
    /// `max_p finish(p) + c(p,t)/s(node(p), v)`.
    ///
    /// # Panics
    /// Panics (debug) if a predecessor is unplaced.
    pub fn data_ready_time(&self, t: TaskId, v: NodeId) -> f64 {
        self.ctx.data_ready_time(t, v)
    }

    /// Earliest start on `v` at or after `ready` for a task of duration
    /// `duration`, considering only the tail of the timeline (no insertion).
    pub fn earliest_start_append(&self, v: NodeId, ready: f64) -> f64 {
        self.ctx.earliest_start_append(v, ready)
    }

    /// Earliest start on `v` at or after `ready`, allowed to fill an idle gap
    /// between already-placed tasks (HEFT's insertion policy).
    pub fn earliest_start_insertion(&self, v: NodeId, ready: f64, duration: f64) -> f64 {
        self.ctx.earliest_start_insertion(v, ready, duration)
    }

    /// The earliest-finish-time query used by HEFT-family schedulers:
    /// returns `(start, finish)` for placing `t` on `v` now.
    pub fn eft(&self, t: TaskId, v: NodeId, insertion: bool) -> (f64, f64) {
        self.ctx.eft(t, v, insertion)
    }

    /// Places `t` on `v` at `start`; the finish time is derived from the
    /// related-machines execution time.
    ///
    /// # Panics
    /// Panics (debug) on double placement. The caller is responsible for
    /// passing a feasible `start` (as returned by [`ScheduleBuilder::eft`]).
    pub fn place(&mut self, t: TaskId, v: NodeId, start: f64) {
        self.ctx.place(t, v, start);
    }

    /// Convenience: compute the insertion EFT on `v` and place there.
    /// Returns the finish time.
    pub fn place_eft(&mut self, t: TaskId, v: NodeId, insertion: bool) -> f64 {
        self.ctx.place_eft(t, v, insertion)
    }

    /// Current makespan over placed tasks.
    pub fn current_makespan(&self) -> f64 {
        self.ctx.current_makespan()
    }

    /// Finalizes into a [`Schedule`].
    ///
    /// # Panics
    /// Panics if any task is unplaced — schedulers must place every task.
    pub fn finish(self) -> Schedule {
        self.ctx.snapshot_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, TaskGraph};

    fn two_node_instance() -> Instance {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 2.0);
        let b = g.add_task("b", 2.0);
        let c = g.add_task("c", 2.0);
        g.add_dependency(a, b, 4.0).unwrap();
        g.add_dependency(a, c, 4.0).unwrap();
        Instance::new(Network::complete(&[1.0, 2.0], 2.0), g)
    }

    #[test]
    fn data_ready_time_accounts_for_communication() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        b.place(TaskId(0), NodeId(0), 0.0); // finish 2
                                            // same node: no comm
        assert_eq!(b.data_ready_time(TaskId(1), NodeId(0)), 2.0);
        // cross node: 4 bytes / strength 2 = 2
        assert_eq!(b.data_ready_time(TaskId(1), NodeId(1)), 4.0);
    }

    #[test]
    fn append_vs_insertion_start() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        // occupy [5, 7] on node 0, leaving a gap [0, 5)
        b.place(TaskId(2), NodeId(0), 5.0);
        assert_eq!(b.earliest_start_append(NodeId(0), 0.0), 7.0);
        assert_eq!(b.earliest_start_insertion(NodeId(0), 0.0, 2.0), 0.0);
        // a 6-long task does not fit the gap
        assert_eq!(b.earliest_start_insertion(NodeId(0), 0.0, 6.0), 7.0);
        // ready time inside the gap shrinks it
        assert_eq!(b.earliest_start_insertion(NodeId(0), 4.0, 2.0), 7.0);
    }

    #[test]
    fn eft_picks_start_and_finish_consistently() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        b.place(TaskId(0), NodeId(1), 0.0); // exec 1 on speed-2 node
        let (s0, f0) = b.eft(TaskId(1), NodeId(1), true);
        assert_eq!((s0, f0), (1.0, 2.0));
        let (s1, f1) = b.eft(TaskId(1), NodeId(0), true);
        // data arrives at 1 + 4/2 = 3, exec 2 on speed-1
        assert_eq!((s1, f1), (3.0, 5.0));
    }

    #[test]
    fn finish_produces_verifiable_schedule() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        let (s, _) = b.eft(TaskId(0), NodeId(1), true);
        b.place(TaskId(0), NodeId(1), s);
        let (s, _) = b.eft(TaskId(1), NodeId(1), true);
        b.place(TaskId(1), NodeId(1), s);
        let (s, _) = b.eft(TaskId(2), NodeId(0), true);
        b.place(TaskId(2), NodeId(0), s);
        let sched = b.finish();
        sched.verify(&inst).unwrap();
        assert!(sched.makespan() > 0.0);
    }

    #[test]
    fn insertion_respects_existing_slots() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        b.place(TaskId(0), NodeId(0), 0.0); // [0,2]
        b.place(TaskId(1), NodeId(0), 6.0); // [6,8]
                                            // 2-long task fits in [2,6) gap
        assert_eq!(b.earliest_start_insertion(NodeId(0), 0.0, 2.0), 2.0);
        // 4-long task fits exactly
        assert_eq!(b.earliest_start_insertion(NodeId(0), 0.0, 4.0), 2.0);
        // 4.5-long doesn't
        assert_eq!(b.earliest_start_insertion(NodeId(0), 0.0, 4.5), 8.0);
    }

    #[test]
    fn is_ready_tracks_predecessors() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        assert!(b.is_ready(TaskId(0)));
        assert!(!b.is_ready(TaskId(1)));
        b.place(TaskId(0), NodeId(0), 0.0);
        assert!(b.is_ready(TaskId(1)));
        assert!(b.is_ready(TaskId(2)));
    }

    #[test]
    fn current_makespan_tracks_placed_tasks() {
        let inst = two_node_instance();
        let mut b = ScheduleBuilder::new(&inst);
        assert_eq!(b.current_makespan(), 0.0);
        b.place(TaskId(0), NodeId(0), 0.0);
        assert_eq!(b.current_makespan(), 2.0);
        b.place(TaskId(1), NodeId(1), 4.0);
        assert_eq!(b.current_makespan(), 5.0);
    }

    #[test]
    fn infinite_duration_task_appends() {
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        let inst = Instance::new(Network::complete(&[0.0], 1.0), g);
        let mut b = ScheduleBuilder::new(&inst);
        let (s, f) = b.eft(TaskId(0), NodeId(0), true);
        assert_eq!(s, 0.0);
        assert!(f.is_infinite());
        b.place(TaskId(0), NodeId(0), s);
        let sched = b.finish();
        sched.verify(&inst).unwrap();
    }
}
