//! # saga-core
//!
//! The related-machines task-graph scheduling model from *PISA: An
//! Adversarial Approach to Comparing Task Graph Scheduling Algorithms*
//! (Coleman & Krishnamachari): task graphs, complete networks, schedules and
//! their Section-II validity checker, an insertion-capable schedule builder,
//! HEFT-style ranking utilities, and the clipped-gaussian samplers the
//! paper's generators rely on.
//!
//! Everything downstream (`saga-schedulers`, `saga-datasets`, `saga-pisa`)
//! builds on this crate; it has no dependencies beyond `rand` and `serde`.

#![warn(missing_docs)]

pub mod batch;
mod builder;
pub mod dist;
mod error;
pub mod gantt;
mod graph;
mod ids;
pub mod incremental;
mod instance;
mod kernel;
pub mod metrics;
mod network;
mod pool;
pub mod ranking;
mod schedule;
mod seed;
pub mod stochastic;

pub use batch::{batch_enabled, BatchedSchedContext};
pub use builder::ScheduleBuilder;
pub use error::{GraphError, ScheduleError};
pub use graph::{DepEdge, TaskGraph};
pub use ids::{NodeId, TaskId};
pub use incremental::{incremental_enabled, DirtyRegion, RunTrace};
pub use instance::Instance;
pub use kernel::{
    argmin_finish, argmin_start_finish, compose_append_rows, compose_append_rows_from,
    eft_rows_enabled, SchedContext,
};
pub use network::Network;
pub use pool::{ContextPool, PooledContext};
pub use schedule::{Assignment, Schedule, TIME_EPS};
pub use seed::{derive_seed, fnv1a};
