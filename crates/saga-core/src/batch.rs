//! Lockstep batch support: the struct-of-arrays hot block for K-lane
//! drivers.
//!
//! A lockstep driver anneals K independent search cells ("lanes") in one
//! loop: every iteration perturbs all live lanes, evaluates them
//! back-to-back, then applies each lane's accept/reject and cooling update.
//! The per-lane *driver* state — cooling temperature, current/best objective
//! value, iteration counter, live mask — is what that loop touches on every
//! single step for every lane, so [`BatchedSchedContext`] lays each of those
//! scalars out as one lane-contiguous row (`temperature[lane]`,
//! `current[lane]`, ...) instead of per-lane structs: the K-wide sweeps
//! (cooling, retirement scan) walk dense `f64`/`u32` rows the
//! autovectorizer handles, and the mask makes lane divergence — a lane
//! whose schedule finishes early — a retirement, not a branch in the sweep.
//!
//! Each lane keeps its own full [`SchedContext`]: the scheduling kernel's
//! tables are per-instance and lanes anneal *different* instances, so the
//! cross-lane win there is locality (the driver evaluates lanes
//! back-to-back, grouped by shape and scheduler pair, against contexts that
//! stay cache-resident) while the node-axis scans inside one lane vectorize
//! via the kernel's explicit-width loops — including the fused EFT row
//! kernels ([`SchedContext::eft_row_into`]), which every lane evaluation
//! reaches through the schedulers' own selection loops.
//!
//! Setting the environment variable `SAGA_NO_BATCH` (to anything but `0`)
//! makes [`batch_enabled`] report false; the batch planners then route every
//! cell down the scalar path — CI runs the golden suites once with the
//! toggle set and diffs, so both paths stay bit-identical.

use crate::kernel::SchedContext;

/// Whether lockstep batch execution is enabled (the default). Set
/// `SAGA_NO_BATCH` (to anything but `0`) to force every cell down the
/// scalar path; read once per process.
pub fn batch_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| match std::env::var_os("SAGA_NO_BATCH") {
        None => true,
        Some(v) => v == "0",
    })
}

/// The hot block of a K-lane lockstep driver: one scheduling context per
/// lane plus the driver's per-lane scalar state as lane-contiguous
/// struct-of-arrays rows. See the [module docs](self) for the layout
/// rationale.
///
/// The rows are public on purpose: the driver's accept/reject step is a
/// tight loop over `candidate`/`current`/`best` and accessor indirection
/// per lane would undo the layout's point. Invariants the driver must keep:
/// every row has [`len`](Self::len) entries, and a retired lane's row
/// entries are left frozen at their final values.
#[derive(Debug, Default)]
pub struct BatchedSchedContext {
    lanes: Vec<SchedContext>,
    active: Vec<bool>,
    live: usize,
    /// Cooling temperature per lane.
    pub temperature: Vec<f64>,
    /// Geometric cooling factor per lane (lanes may carry different
    /// schedules).
    pub alpha: Vec<f64>,
    /// Temperature floor per lane; a lane retires when its temperature
    /// falls to (or below) this.
    pub floor: Vec<f64>,
    /// Current (last accepted) objective value per lane.
    pub current: Vec<f64>,
    /// Best objective value seen per lane.
    pub best: Vec<f64>,
    /// This step's candidate objective value per lane (scratch row filled
    /// by the evaluation phase, consumed by the accept phase).
    pub candidate: Vec<f64>,
    /// Iterations completed per lane.
    pub iters: Vec<u64>,
    /// Iteration cap per lane.
    pub iter_cap: Vec<u64>,
}

impl BatchedSchedContext {
    /// A block with `k` lanes, all retired until [`reset_lane`]d.
    ///
    /// [`reset_lane`]: Self::reset_lane
    pub fn with_lanes(k: usize) -> Self {
        let mut b = BatchedSchedContext::default();
        b.ensure_lanes(k);
        b
    }

    /// Grows the block to at least `k` lanes (keeping warm contexts) and
    /// marks every lane retired. Call once per batch before resetting the
    /// lanes the batch uses.
    pub fn ensure_lanes(&mut self, k: usize) {
        // warm-up only: grows the lane block the first time a batch width
        // is seen; same-width batches reuse it (outside the hot fn list)
        self.lanes
            .resize_with(k.max(self.lanes.len()), SchedContext::new);
        let n = self.lanes.len();
        self.active.clear();
        self.active.resize(n, false);
        self.live = 0;
        for row in [
            &mut self.temperature,
            &mut self.alpha,
            &mut self.floor,
            &mut self.current,
            &mut self.best,
            &mut self.candidate,
        ] {
            row.clear();
            row.resize(n, 0.0);
        }
        for row in [&mut self.iters, &mut self.iter_cap] {
            row.clear();
            row.resize(n, 0);
        }
    }

    /// Number of lanes in the block.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the block has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Number of lanes still live.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether lane `i` is still live.
    #[inline]
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Lane `i`'s scheduling context.
    #[inline]
    pub fn lane(&mut self, i: usize) -> &mut SchedContext {
        &mut self.lanes[i]
    }

    /// Arms lane `i` with a fresh annealing schedule and its initial
    /// objective value. The lane starts live unless the schedule is empty
    /// (`t_max <= t_min` or a zero iteration cap) — mirroring the scalar
    /// loop's entry condition, which such a schedule never enters.
    pub fn reset_lane(
        &mut self,
        i: usize,
        t_max: f64,
        t_min: f64,
        alpha: f64,
        i_max: u64,
        initial: f64,
    ) {
        self.temperature[i] = t_max;
        self.floor[i] = t_min;
        self.alpha[i] = alpha;
        self.iters[i] = 0;
        self.iter_cap[i] = i_max;
        self.current[i] = initial;
        self.best[i] = initial;
        self.candidate[i] = initial;
        let was = self.active[i];
        self.active[i] = t_max > t_min && i_max > 0;
        match (was, self.active[i]) {
            (false, true) => self.live += 1,
            (true, false) => self.live -= 1,
            _ => {}
        }
    }

    /// Retires lane `i` (idempotent).
    pub fn retire(&mut self, i: usize) {
        if self.active[i] {
            self.active[i] = false;
            self.live -= 1;
        }
    }

    /// The masked K-wide cooling/retirement sweep: every live lane cools by
    /// its own factor and advances its iteration counter, then lanes whose
    /// temperature reached the floor or whose iteration cap is exhausted
    /// retire. One dense pass over the SoA rows; returns the number of
    /// lanes still live.
    pub fn advance_live(&mut self) -> usize {
        let mut live = 0usize;
        for i in 0..self.active.len() {
            if !self.active[i] {
                continue;
            }
            self.temperature[i] *= self.alpha[i];
            self.iters[i] += 1;
            let alive = self.temperature[i] > self.floor[i] && self.iters[i] < self.iter_cap[i];
            self.active[i] = alive;
            live += alive as usize;
        }
        self.live = live;
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_retire_on_floor_or_cap() {
        let mut b = BatchedSchedContext::with_lanes(3);
        // lane 0: retires by temperature floor after 2 coolings (10 -> 2.5)
        b.reset_lane(0, 10.0, 3.0, 0.5, 100, 1.0);
        // lane 1: retires by iteration cap after 1 step
        b.reset_lane(1, 10.0, 0.1, 0.99, 1, 1.0);
        // lane 2: empty schedule, never live
        b.reset_lane(2, 10.0, 10.0, 0.99, 100, 1.0);
        assert_eq!(b.live(), 2);
        assert_eq!(b.advance_live(), 1, "lane 1 hits its cap");
        assert!(b.is_active(0) && !b.is_active(1) && !b.is_active(2));
        assert_eq!(b.advance_live(), 0, "lane 0 cools through the floor");
        assert_eq!(b.live(), 0);
    }

    #[test]
    fn reset_rearms_a_retired_lane() {
        let mut b = BatchedSchedContext::with_lanes(1);
        b.reset_lane(0, 10.0, 0.1, 0.5, 4, 2.0);
        while b.advance_live() > 0 {}
        assert_eq!(b.live(), 0);
        b.reset_lane(0, 10.0, 0.1, 0.5, 4, 3.0);
        assert_eq!(b.live(), 1);
        assert_eq!(b.best[0], 3.0);
    }

    #[test]
    fn ensure_lanes_grows_and_clears() {
        let mut b = BatchedSchedContext::with_lanes(2);
        b.reset_lane(0, 10.0, 0.1, 0.99, 10, 1.0);
        b.ensure_lanes(4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.live(), 0, "ensure_lanes retires everything");
        b.ensure_lanes(1);
        assert_eq!(b.len(), 4, "shrinking keeps warm lanes");
    }
}
