//! A thread-safe pool of warm [`SchedContext`]s for batch evaluation.
//!
//! The batch experiment engine runs thousands of (instance × scheduler)
//! cells across worker threads; each worker needs one long-lived context so
//! repeated runs allocate nothing after warm-up. [`ContextPool`] hands out
//! [`PooledContext`] guards — a worker takes one when it starts and the
//! guard returns the context (with its grown buffer capacity) to the pool on
//! drop, so the *next* batch's workers start warm too instead of paying the
//! allocation ramp per batch.

use crate::kernel::SchedContext;
use crate::Instance;
use std::sync::Mutex;

impl SchedContext {
    /// Runs `f` with this context's cost tables pinned for `inst`
    /// ([`pin_tables`](Self::pin_tables)): every `reset` inside `f` — one
    /// per scheduler run — keeps the tables and only clears the run state,
    /// so evaluating `k` schedulers on one instance builds the tables once
    /// instead of `k` times. Unpins before returning, panic or not (the
    /// guard keeps a poisoned context from silently serving stale tables to
    /// the next instance).
    pub fn with_pinned<R>(&mut self, inst: &Instance, f: impl FnOnce(&mut Self) -> R) -> R {
        struct Unpin<'a>(&'a mut SchedContext);
        impl Drop for Unpin<'_> {
            fn drop(&mut self) {
                self.0.unpin_tables();
            }
        }
        self.pin_tables(inst);
        let guard = Unpin(self);
        f(guard.0)
    }
}

/// A shared pool of reusable [`SchedContext`]s.
#[derive(Debug, Default)]
pub struct ContextPool {
    free: Mutex<Vec<SchedContext>>,
}

impl ContextPool {
    /// An empty pool; contexts are created lazily by [`take`](Self::take).
    pub fn new() -> Self {
        ContextPool::default()
    }

    /// Takes a context from the pool (or creates a fresh one), wrapped in a
    /// guard that returns it on drop.
    pub fn take(&self) -> PooledContext<'_> {
        // Poison recovery: a panicked holder already unwound and the
        // free-list is still a valid Vec — losing the whole pool over it
        // would deadlock every later worker of an otherwise-fine batch.
        let ctx = self
            .free
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop()
            .unwrap_or_default();
        PooledContext {
            ctx: Some(ctx),
            pool: self,
        }
    }

    /// Number of idle contexts currently in the pool.
    pub fn idle(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }
}

/// RAII guard over a pooled [`SchedContext`]; derefs to the context and
/// returns it to its [`ContextPool`] on drop.
#[derive(Debug)]
pub struct PooledContext<'p> {
    ctx: Option<SchedContext>,
    pool: &'p ContextPool,
}

impl std::ops::Deref for PooledContext<'_> {
    type Target = SchedContext;
    fn deref(&self) -> &SchedContext {
        self.ctx.as_ref().expect("context present until drop")
    }
}

impl std::ops::DerefMut for PooledContext<'_> {
    fn deref_mut(&mut self) -> &mut SchedContext {
        self.ctx.as_mut().expect("context present until drop")
    }
}

impl Drop for PooledContext<'_> {
    fn drop(&mut self) {
        let mut ctx = self.ctx.take().expect("context present until drop");
        // never return a context that would skip its next table rebuild
        ctx.unpin_tables();
        self.pool
            .free
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, NodeId, TaskGraph, TaskId};

    fn tiny_instance() -> Instance {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 2.0);
        g.add_dependency(a, b, 0.5).unwrap();
        Instance::new(Network::complete(&[1.0, 2.0], 1.0), g)
    }

    #[test]
    fn take_and_drop_recycles_contexts() {
        let pool = ContextPool::new();
        assert_eq!(pool.idle(), 0);
        {
            let mut ctx = pool.take();
            ctx.reset(&tiny_instance());
            assert_eq!(ctx.task_count(), 2);
        }
        assert_eq!(pool.idle(), 1);
        {
            let _a = pool.take();
            let _b = pool.take(); // second concurrent borrow creates a fresh one
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn with_pinned_keeps_tables_across_resets_then_unpins() {
        let inst = tiny_instance();
        let mut ctx = SchedContext::new();
        ctx.with_pinned(&inst, |ctx| {
            ctx.reset(&inst);
            ctx.place(TaskId(0), NodeId(1), 0.0);
            ctx.reset(&inst); // pinned: run state clears, tables stay
            assert_eq!(ctx.placed_count(), 0);
            assert_eq!(ctx.exec_time(TaskId(1), NodeId(1)), 1.0);
        });
        // unpinned again: reset follows a changed instance
        let mut changed = inst.clone();
        changed.network.set_speed(NodeId(1), 4.0);
        ctx.reset(&changed);
        assert_eq!(ctx.exec_time(TaskId(1), NodeId(1)), 0.5);
    }

    #[test]
    fn dropped_guard_never_returns_a_pinned_context() {
        let pool = ContextPool::new();
        let inst = tiny_instance();
        {
            let mut ctx = pool.take();
            ctx.pin_tables(&inst); // dropped while pinned
        }
        let mut ctx = pool.take();
        let mut changed = inst.clone();
        changed.network.set_speed(NodeId(1), 4.0);
        ctx.reset(&changed); // must rebuild, not reuse pinned tables
        assert_eq!(ctx.exec_time(TaskId(1), NodeId(1)), 0.5);
    }
}
