//! The compute network `N = (V, E)` of the paper's Section II.
//!
//! A complete undirected graph: every node has a compute speed `s(v)` and
//! every unordered pair a communication strength `s(v, v')`. Under the
//! related-machines model a task `t` runs on `v` in `c(t) / s(v)` and an edge
//! `(t, t')` scheduled across `(v, v')` costs `c(t, t') / s(v, v')`.
//!
//! Self-links have infinite strength (communication on the same node is
//! free), and generators may also use infinite strengths to model shared
//! filesystems (the paper's Chameleon-derived networks).

use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A complete weighted network of compute nodes.
///
/// Link strengths are stored as a dense row-major `n x n` symmetric matrix;
/// zero speeds/strengths are legal and yield infinite times (the paper clips
/// perturbed weights at 0, which is how its `>1000` ratios arise).
#[derive(Debug, Serialize, Deserialize)]
pub struct Network {
    speeds: Vec<f64>,
    links: Vec<f64>,
}

impl Network {
    /// Builds a network with the given node speeds and a uniform strength for
    /// every (non-self) link.
    pub fn complete(speeds: &[f64], link_strength: f64) -> Self {
        let n = speeds.len();
        let mut links = vec![link_strength; n * n];
        for i in 0..n {
            links[i * n + i] = f64::INFINITY;
        }
        Network {
            speeds: speeds.to_vec(),
            links,
        }
    }

    /// Builds a network from node speeds and an explicit symmetric link
    /// matrix (row-major, `speeds.len()^2` entries). The diagonal is forced
    /// to infinity.
    ///
    /// # Panics
    /// Panics if the matrix has the wrong size or is not symmetric.
    pub fn from_matrix(speeds: Vec<f64>, mut links: Vec<f64>) -> Self {
        let n = speeds.len();
        assert_eq!(links.len(), n * n, "link matrix must be n*n");
        for i in 0..n {
            links[i * n + i] = f64::INFINITY;
            for j in 0..i {
                assert!(
                    links[i * n + j] == links[j * n + i],
                    "link matrix must be symmetric"
                );
            }
        }
        Network { speeds, links }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.speeds.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.speeds.len() as u32).map(NodeId)
    }

    /// Compute speed `s(v)`.
    #[inline]
    pub fn speed(&self, v: NodeId) -> f64 {
        self.speeds[v.index()]
    }

    /// Sets the compute speed `s(v)`.
    pub fn set_speed(&mut self, v: NodeId, speed: f64) {
        assert!(speed >= 0.0 && !speed.is_nan(), "speed must be >= 0");
        self.speeds[v.index()] = speed;
    }

    /// Communication strength `s(u, v)`; infinite for `u == v`.
    #[inline]
    pub fn link(&self, u: NodeId, v: NodeId) -> f64 {
        self.links[u.index() * self.speeds.len() + v.index()]
    }

    /// Sets the (symmetric) communication strength between two distinct nodes.
    ///
    /// # Panics
    /// Panics on a self-link or a negative/NaN strength.
    pub fn set_link(&mut self, u: NodeId, v: NodeId, strength: f64) {
        assert!(u != v, "self-links are fixed at infinite strength");
        assert!(
            strength >= 0.0 && !strength.is_nan(),
            "strength must be >= 0"
        );
        let n = self.speeds.len();
        self.links[u.index() * n + v.index()] = strength;
        self.links[v.index() * n + u.index()] = strength;
    }

    /// Execution time of a task with compute cost `cost` on node `v`:
    /// `c(t) / s(v)`. A zero-cost task takes zero time even on a zero-speed
    /// node (avoids `0/0 = NaN`).
    #[inline]
    pub fn exec_time(&self, cost: f64, v: NodeId) -> f64 {
        if cost == 0.0 {
            0.0
        } else {
            cost / self.speeds[v.index()]
        }
    }

    /// Communication time of `bytes` from node `u` to node `v`:
    /// `c(t, t') / s(u, v)`; zero if the endpoints coincide or no data moves.
    #[inline]
    pub fn comm_time(&self, bytes: f64, u: NodeId, v: NodeId) -> f64 {
        if u == v || bytes == 0.0 {
            0.0
        } else {
            bytes / self.link(u, v)
        }
    }

    /// The node with the greatest compute speed (lowest id on ties).
    pub fn fastest_node(&self) -> NodeId {
        let mut best = NodeId(0);
        for v in self.nodes() {
            if self.speed(v) > self.speed(best) {
                best = v;
            }
        }
        best
    }

    /// Mean of `1 / s(v)` over all nodes — the factor that converts a task
    /// cost into the paper's "average execution time over all nodes".
    pub fn mean_inverse_speed(&self) -> f64 {
        let n = self.speeds.len();
        if n == 0 {
            return 0.0;
        }
        self.speeds
            .iter()
            .map(|&s| if s == 0.0 { f64::INFINITY } else { 1.0 / s })
            .sum::<f64>()
            / n as f64
    }

    /// Mean of `1 / s(u, v)` over ordered pairs `u != v` — converts a data
    /// size into an average communication time. Returns 0 for a single-node
    /// network (all communication is local).
    pub fn mean_inverse_link(&self) -> f64 {
        let n = self.speeds.len();
        if n <= 1 {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let s = self.links[i * n + j];
                    total += if s == 0.0 {
                        f64::INFINITY
                    } else if s.is_infinite() {
                        0.0
                    } else {
                        1.0 / s
                    };
                }
            }
        }
        total / (n * (n - 1)) as f64
    }

    /// All node speeds as a slice.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// The full link-strength matrix, row-major (`node_count()^2` entries,
    /// infinite diagonal). Used by the scheduling kernel to snapshot
    /// communication rates without per-query indirection.
    pub fn links(&self) -> &[f64] {
        &self.links
    }
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Network {
            speeds: self.speeds.clone(),
            links: self.links.clone(),
        }
    }

    /// Reuses the destination's buffers — annealing loops clone candidate
    /// instances every iteration, and this keeps them allocation-free after
    /// warm-up.
    fn clone_from(&mut self, source: &Self) {
        self.speeds.clear();
        self.speeds.extend_from_slice(&source.speeds);
        self.links.clear();
        self.links.extend_from_slice(&source.links);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_network_has_infinite_self_links() {
        let n = Network::complete(&[1.0, 2.0, 3.0], 0.5);
        for v in n.nodes() {
            assert!(n.link(v, v).is_infinite());
        }
        assert_eq!(n.link(NodeId(0), NodeId(2)), 0.5);
        assert_eq!(n.node_count(), 3);
    }

    #[test]
    fn exec_and_comm_times_follow_related_machines_model() {
        let n = Network::complete(&[1.0, 2.0], 0.5);
        assert_eq!(n.exec_time(4.0, NodeId(0)), 4.0);
        assert_eq!(n.exec_time(4.0, NodeId(1)), 2.0);
        assert_eq!(n.comm_time(1.0, NodeId(0), NodeId(1)), 2.0);
        assert_eq!(n.comm_time(1.0, NodeId(0), NodeId(0)), 0.0);
        assert_eq!(n.comm_time(0.0, NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn zero_speeds_yield_infinite_times_not_nan() {
        let n = Network::complete(&[0.0, 1.0], 0.0);
        assert!(n.exec_time(1.0, NodeId(0)).is_infinite());
        assert_eq!(n.exec_time(0.0, NodeId(0)), 0.0);
        assert!(n.comm_time(1.0, NodeId(0), NodeId(1)).is_infinite());
    }

    #[test]
    fn set_link_is_symmetric() {
        let mut n = Network::complete(&[1.0, 1.0, 1.0], 1.0);
        n.set_link(NodeId(0), NodeId(2), 7.0);
        assert_eq!(n.link(NodeId(2), NodeId(0)), 7.0);
        assert_eq!(n.link(NodeId(0), NodeId(1)), 1.0);
    }

    #[test]
    fn fastest_node_prefers_lowest_id_on_ties() {
        let n = Network::complete(&[2.0, 3.0, 3.0], 1.0);
        assert_eq!(n.fastest_node(), NodeId(1));
        let n = Network::complete(&[5.0, 5.0], 1.0);
        assert_eq!(n.fastest_node(), NodeId(0));
    }

    #[test]
    fn mean_inverse_speed_and_link() {
        let n = Network::complete(&[1.0, 2.0], 0.5);
        assert!((n.mean_inverse_speed() - 0.75).abs() < 1e-12);
        assert!((n.mean_inverse_link() - 2.0).abs() < 1e-12);
        // infinite links count as zero time (shared filesystem model)
        let m = Network::complete(&[1.0, 1.0], f64::INFINITY);
        assert_eq!(m.mean_inverse_link(), 0.0);
        // single-node network has no links
        assert_eq!(Network::complete(&[1.0], 1.0).mean_inverse_link(), 0.0);
    }

    #[test]
    fn from_matrix_validates_symmetry() {
        let n = Network::from_matrix(vec![1.0, 2.0], vec![0.0, 3.0, 3.0, 0.0]);
        assert_eq!(n.link(NodeId(0), NodeId(1)), 3.0);
        assert!(n.link(NodeId(0), NodeId(0)).is_infinite());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_matrix_rejects_asymmetry() {
        Network::from_matrix(vec![1.0, 2.0], vec![0.0, 3.0, 4.0, 0.0]);
    }
}
