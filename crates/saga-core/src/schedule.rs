//! Schedules and the Section II validity checker.
//!
//! A schedule is the set of `(t, v, r)` triples of the paper; we additionally
//! store each task's finish time so that makespan and validation never need
//! to recompute execution times in hot loops.

use crate::{Instance, NodeId, ScheduleError, TaskId};
use serde::{Deserialize, Serialize};

/// Relative/absolute tolerance used when comparing schedule times.
///
/// Schedulers compute times with floating point; validation must not reject a
/// schedule over a rounding ulp. Infinite times compare equal to themselves.
pub const TIME_EPS: f64 = 1e-9;

#[inline]
fn le_with_tol(required: f64, actual: f64) -> bool {
    if required.is_infinite() {
        // data never arrives: only an infinite start satisfies the constraint
        return actual.is_infinite();
    }
    required <= actual + TIME_EPS * required.abs().max(1.0)
}

/// One scheduled task: the paper's `(t, v, r)` plus the finish time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The scheduled task.
    pub task: TaskId,
    /// The node it runs on.
    pub node: NodeId,
    /// Start time `r`.
    pub start: f64,
    /// Finish time `r + c(t)/s(v)`.
    pub finish: f64,
}

/// A complete schedule for an [`Instance`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-task assignment, indexed by [`TaskId`].
    assignments: Vec<Assignment>,
    /// Per-node execution order (task ids sorted by start time).
    per_node: Vec<Vec<TaskId>>,
}

impl Schedule {
    /// Assembles a schedule from one assignment per task.
    ///
    /// # Panics
    /// Panics if assignments are not dense in task id (every task exactly
    /// once, ids `0..n`): schedulers construct these programmatically, so a
    /// hole is a bug, not an input error. [`Schedule::verify`] is the checker
    /// for *semantic* validity.
    pub fn from_assignments(node_count: usize, mut assignments: Vec<Assignment>) -> Self {
        assignments.sort_unstable_by_key(|a| a.task);
        for (i, a) in assignments.iter().enumerate() {
            assert_eq!(
                a.task.index(),
                i,
                "assignments must cover tasks 0..n exactly once"
            );
        }
        let mut per_node: Vec<Vec<TaskId>> = vec![Vec::new(); node_count];
        let mut order: Vec<usize> = (0..assignments.len()).collect();
        // Sort by (start, finish, id): a zero-duration task legally sharing
        // its start time with a longer slot must precede it, otherwise the
        // pairwise-overlap check would see `longer.finish > zero.start`.
        order.sort_by(|&x, &y| {
            assignments[x]
                .start
                .total_cmp(&assignments[y].start)
                .then(assignments[x].finish.total_cmp(&assignments[y].finish))
                .then(assignments[x].task.cmp(&assignments[y].task))
        });
        for i in order {
            let a = &assignments[i];
            per_node[a.node.index()].push(a.task);
        }
        Schedule {
            assignments,
            per_node,
        }
    }

    /// The assignment of a task.
    #[inline]
    pub fn assignment(&self, t: TaskId) -> &Assignment {
        &self.assignments[t.index()]
    }

    /// All assignments, indexed by task id.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Tasks executed on `v`, in start-time order.
    pub fn node_tasks(&self, v: NodeId) -> &[TaskId] {
        &self.per_node[v.index()]
    }

    /// Number of nodes the schedule was built for.
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// The makespan `m(S) = max_t finish(t)`; `0` for an empty schedule.
    pub fn makespan(&self) -> f64 {
        self.assignments
            .iter()
            .map(|a| a.finish)
            .fold(0.0, f64::max)
    }

    /// Checks every validity constraint of Section II against `inst`:
    ///
    /// 1. every task of the instance is scheduled exactly once (by
    ///    construction of this type, plus a count check against the graph);
    /// 2. recorded finish times equal `start + c(t)/s(v)`;
    /// 3. tasks on one node do not overlap;
    /// 4. for every dependency `(t, t')`,
    ///    `r + c(t)/s(v) + c(t,t')/s(v,v') <= r'`.
    pub fn verify(&self, inst: &Instance) -> Result<(), ScheduleError> {
        let g = &inst.graph;
        let n = &inst.network;
        if self.assignments.len() != g.task_count() {
            let missing = TaskId(self.assignments.len() as u32);
            return Err(ScheduleError::MissingTask { task: missing });
        }
        for a in &self.assignments {
            if a.node.index() >= n.node_count() {
                return Err(ScheduleError::UnknownNode {
                    task: a.task,
                    node: a.node,
                });
            }
            if a.start.is_nan() || a.start < 0.0 {
                return Err(ScheduleError::InvalidStart {
                    task: a.task,
                    start: a.start,
                });
            }
            let expected = a.start + n.exec_time(g.cost(a.task), a.node);
            let ok = if expected.is_infinite() {
                a.finish.is_infinite()
            } else {
                (expected - a.finish).abs() <= TIME_EPS * expected.abs().max(1.0)
            };
            if !ok {
                return Err(ScheduleError::WrongFinishTime {
                    task: a.task,
                    expected,
                    actual: a.finish,
                });
            }
        }
        for (vi, tasks) in self.per_node.iter().enumerate() {
            for w in tasks.windows(2) {
                let first = self.assignment(w[0]);
                let second = self.assignment(w[1]);
                if !le_with_tol(first.finish, second.start) {
                    return Err(ScheduleError::Overlap {
                        node: NodeId(vi as u32),
                        first: w[0],
                        second: w[1],
                    });
                }
            }
        }
        for (from, to, bytes) in g.dependencies() {
            let fa = self.assignment(from);
            let ta = self.assignment(to);
            let required = fa.finish + n.comm_time(bytes, fa.node, ta.node);
            if !le_with_tol(required, ta.start) {
                return Err(ScheduleError::PrecedenceViolation {
                    from,
                    to,
                    required,
                    actual: ta.start,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, TaskGraph};

    /// The worked example of the paper's Fig. 1: 4 tasks, 3 nodes.
    fn fig1_instance() -> Instance {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("t1", 1.7);
        let t2 = g.add_task("t2", 1.2);
        let t3 = g.add_task("t3", 2.2);
        let t4 = g.add_task("t4", 0.8);
        g.add_dependency(t1, t2, 0.6).unwrap();
        g.add_dependency(t1, t3, 0.5).unwrap();
        g.add_dependency(t2, t4, 1.3).unwrap();
        g.add_dependency(t3, t4, 1.6).unwrap();
        let mut n = Network::complete(&[1.0, 1.2, 1.5], 1.0);
        n.set_link(NodeId(0), NodeId(1), 0.5);
        n.set_link(NodeId(0), NodeId(2), 1.0);
        n.set_link(NodeId(1), NodeId(2), 1.2);
        Instance::new(n, g)
    }

    /// A hand-built valid schedule resembling the paper's Fig. 1c:
    /// t1, t3, t4 on v3; t2 on v2.
    fn fig1_schedule() -> Schedule {
        let exec = |c: f64, s: f64| c / s;
        let t1f = exec(1.7, 1.5);
        let t2s = t1f + 0.6 / 1.2; // t1 on v3 -> t2 on v2
        let t2f = t2s + exec(1.2, 1.2);
        let t3s = t1f;
        let t3f = t3s + exec(2.2, 1.5);
        let t4s = (t2f + 1.3 / 1.2).max(t3f);
        let t4f = t4s + exec(0.8, 1.5);
        Schedule::from_assignments(
            3,
            vec![
                Assignment {
                    task: TaskId(0),
                    node: NodeId(2),
                    start: 0.0,
                    finish: t1f,
                },
                Assignment {
                    task: TaskId(1),
                    node: NodeId(1),
                    start: t2s,
                    finish: t2f,
                },
                Assignment {
                    task: TaskId(2),
                    node: NodeId(2),
                    start: t3s,
                    finish: t3f,
                },
                Assignment {
                    task: TaskId(3),
                    node: NodeId(2),
                    start: t4s,
                    finish: t4f,
                },
            ],
        )
    }

    #[test]
    fn fig1_schedule_is_valid() {
        let inst = fig1_instance();
        let s = fig1_schedule();
        s.verify(&inst).unwrap();
        assert!(s.makespan() > 0.0);
        assert_eq!(s.node_tasks(NodeId(2)), &[TaskId(0), TaskId(2), TaskId(3)]);
        assert_eq!(s.node_tasks(NodeId(1)), &[TaskId(1)]);
        assert!(s.node_tasks(NodeId(0)).is_empty());
    }

    #[test]
    fn verify_rejects_precedence_violation() {
        let inst = fig1_instance();
        let mut s = fig1_schedule();
        // pull t4's start before its data arrives
        s.assignments[3].start = 0.0;
        s.assignments[3].finish = 0.8 / 1.5;
        // rebuild per-node ordering
        let s = Schedule::from_assignments(3, s.assignments);
        match s.verify(&inst) {
            Err(ScheduleError::Overlap { .. }) | Err(ScheduleError::PrecedenceViolation { .. }) => {
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn verify_rejects_overlap() {
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        g.add_task("b", 1.0);
        let inst = Instance::new(Network::complete(&[1.0], 1.0), g);
        let s = Schedule::from_assignments(
            1,
            vec![
                Assignment {
                    task: TaskId(0),
                    node: NodeId(0),
                    start: 0.0,
                    finish: 1.0,
                },
                Assignment {
                    task: TaskId(1),
                    node: NodeId(0),
                    start: 0.5,
                    finish: 1.5,
                },
            ],
        );
        assert!(matches!(
            s.verify(&inst),
            Err(ScheduleError::Overlap { .. })
        ));
    }

    #[test]
    fn verify_rejects_wrong_finish_time() {
        let mut g = TaskGraph::new();
        g.add_task("a", 2.0);
        let inst = Instance::new(Network::complete(&[1.0], 1.0), g);
        let s = Schedule::from_assignments(
            1,
            vec![Assignment {
                task: TaskId(0),
                node: NodeId(0),
                start: 0.0,
                finish: 1.0,
            }],
        );
        assert!(matches!(
            s.verify(&inst),
            Err(ScheduleError::WrongFinishTime { .. })
        ));
    }

    #[test]
    fn verify_rejects_missing_task() {
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        g.add_task("b", 1.0);
        let inst = Instance::new(Network::complete(&[1.0], 1.0), g);
        let s = Schedule::from_assignments(
            1,
            vec![Assignment {
                task: TaskId(0),
                node: NodeId(0),
                start: 0.0,
                finish: 1.0,
            }],
        );
        assert!(matches!(
            s.verify(&inst),
            Err(ScheduleError::MissingTask { .. })
        ));
    }

    #[test]
    fn verify_rejects_unknown_node_and_negative_start() {
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0);
        let inst = Instance::new(Network::complete(&[1.0], 1.0), g);
        let s = Schedule::from_assignments(
            2,
            vec![Assignment {
                task: TaskId(0),
                node: NodeId(1),
                start: 0.0,
                finish: 1.0,
            }],
        );
        assert!(matches!(
            s.verify(&inst),
            Err(ScheduleError::UnknownNode { .. })
        ));
        let s = Schedule::from_assignments(
            1,
            vec![Assignment {
                task: TaskId(0),
                node: NodeId(0),
                start: -1.0,
                finish: 0.0,
            }],
        );
        assert!(matches!(
            s.verify(&inst),
            Err(ScheduleError::InvalidStart { .. })
        ));
    }

    #[test]
    fn makespan_is_max_finish() {
        let s = fig1_schedule();
        let expect = s.assignments().iter().map(|a| a.finish).fold(0.0, f64::max);
        assert_eq!(s.makespan(), expect);
    }

    #[test]
    fn zero_duration_task_at_slot_boundary_is_valid() {
        // regression: a zero-cost task inserted exactly at another slot's
        // start used to be ordered after it (by task id), tripping the
        // overlap check
        let mut g = TaskGraph::new();
        let long = g.add_task("long", 1.0);
        let zero = g.add_task("zero", 0.0);
        let inst = Instance::new(Network::complete(&[1.0], 1.0), g);
        let s = Schedule::from_assignments(
            1,
            vec![
                Assignment {
                    task: long,
                    node: NodeId(0),
                    start: 2.0,
                    finish: 3.0,
                },
                Assignment {
                    task: zero,
                    node: NodeId(0),
                    start: 2.0,
                    finish: 2.0,
                },
            ],
        );
        s.verify(&inst).unwrap();
        assert_eq!(s.node_tasks(NodeId(0)), &[zero, long]);
    }

    #[test]
    fn infinite_times_validate_consistently() {
        // zero-speed node: execution never finishes, but the schedule is
        // still internally consistent (finish = start + inf).
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_dependency(a, b, 1.0).unwrap();
        let inst = Instance::new(Network::complete(&[0.0], 1.0), g);
        let s = Schedule::from_assignments(
            1,
            vec![
                Assignment {
                    task: a,
                    node: NodeId(0),
                    start: 0.0,
                    finish: f64::INFINITY,
                },
                Assignment {
                    task: b,
                    node: NodeId(0),
                    start: f64::INFINITY,
                    finish: f64::INFINITY,
                },
            ],
        );
        s.verify(&inst).unwrap();
        assert!(s.makespan().is_infinite());
    }
}
