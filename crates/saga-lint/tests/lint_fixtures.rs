//! The fixture corpus: every rule family proven to fire on a
//! known-violation file and stay silent on a known-clean one, the
//! suppression grammar proven end-to-end, the env-registry cross-check
//! exercised on a miniature workspace, and — the gate the corpus exists
//! for — a self-check that the shipped workspace lints clean.

use saga_lint::config::Config;
use saga_lint::rules::{lint_file, FileKind, FileOutcome};
use saga_lint::scan::FileScan;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture as though it sat at `rel` in the workspace.
fn lint_as(name: &str, rel: &str, kind: FileKind) -> FileOutcome {
    let src = fixture(name);
    let scan = FileScan::new(&src, matches!(kind, FileKind::Test | FileKind::Bench));
    lint_file(rel, kind, &scan, &Config::workspace())
}

fn rules_of(out: &FileOutcome) -> Vec<&'static str> {
    out.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn nondet_fixture_fires_all_three_determinism_rules() {
    let out = lint_as(
        "nondet_bad.rs",
        "crates/saga-core/src/sampling.rs",
        FileKind::Lib,
    );
    let rules = rules_of(&out);
    assert_eq!(
        rules.iter().filter(|r| **r == "nondet-collection").count(),
        3,
        "every HashMap mention flags: {rules:?}"
    );
    assert_eq!(rules.iter().filter(|r| **r == "nondet-time").count(), 1);
    assert_eq!(
        rules.iter().filter(|r| **r == "nondet-rng").count(),
        2,
        "entropy construction and the unplumbed literal seed: {rules:?}"
    );
    assert_eq!(out.findings.len(), 6);
}

#[test]
fn nondet_clean_fixture_is_silent_including_its_test_mod() {
    let out = lint_as(
        "nondet_clean.rs",
        "crates/saga-core/src/sampling.rs",
        FileKind::Lib,
    );
    assert!(
        out.findings.is_empty(),
        "clean file must not flag (HashMap/Instant live in cfg(test)): {:?}",
        out.findings
    );
}

#[test]
fn nondet_rules_do_not_apply_outside_result_producing_code() {
    // same violating source, but in a crate outside the determinism scope
    let out = lint_as(
        "nondet_bad.rs",
        "crates/saga-datasets/src/sampling.rs",
        FileKind::Lib,
    );
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn hot_alloc_fixture_flags_every_allocation_shape() {
    let out = lint_as(
        "hot_alloc_bad.rs",
        "crates/saga-core/src/kernel.rs",
        FileKind::Lib,
    );
    let rules = rules_of(&out);
    assert_eq!(
        rules.iter().filter(|r| **r == "hot-alloc").count(),
        5,
        "Vec::new, vec!, .collect(), format!, .clone(): {:?}",
        out.findings
    );
    let messages: Vec<&str> = out.findings.iter().map(|f| f.message.as_str()).collect();
    for shape in ["Vec::new", "vec!", ".collect()", "format!", ".clone()"] {
        assert!(
            messages.iter().any(|m| m.contains(shape)),
            "missing {shape} in {messages:?}"
        );
    }
}

#[test]
fn hot_alloc_fn_scoping_spares_constructors() {
    let out = lint_as(
        "hot_alloc_clean.rs",
        "crates/saga-schedulers/src/sweep.rs",
        FileKind::Lib,
    );
    assert!(
        out.findings.is_empty(),
        "vec! in `new` is outside the run/run_recorded deny list: {:?}",
        out.findings
    );
}

#[test]
fn error_discipline_fixture_flags_unwrap_expect_panic() {
    let out = lint_as(
        "error_bad.rs",
        "crates/saga-experiments/src/engine.rs",
        FileKind::Lib,
    );
    let rules = rules_of(&out);
    assert_eq!(
        rules.iter().filter(|r| **r == "error-discipline").count(),
        3,
        "{:?}",
        out.findings
    );
}

#[test]
fn error_discipline_exempts_binaries() {
    let out = lint_as(
        "error_bad.rs",
        "crates/saga-experiments/src/bin/fig9.rs",
        FileKind::Bin,
    );
    assert!(
        out.findings.is_empty(),
        "binaries may exit loudly: {:?}",
        out.findings
    );
}

#[test]
fn error_discipline_spares_unwrap_or_else_poison_recovery() {
    let out = lint_as(
        "error_clean.rs",
        "crates/saga-experiments/src/engine.rs",
        FileKind::Lib,
    );
    assert!(
        out.findings.is_empty(),
        "`unwrap_or_else` is not `unwrap`: {:?}",
        out.findings
    );
}

#[test]
fn reasoned_suppressions_silence_without_findings() {
    let out = lint_as(
        "suppressed_ok.rs",
        "crates/saga-core/src/kernel.rs",
        FileKind::Lib,
    );
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(
        out.suppressed, 2,
        "line-above and trailing same-line suppressions both count"
    );
}

#[test]
fn bad_suppressions_are_themselves_findings() {
    let out = lint_as(
        "suppression_bad.rs",
        "crates/saga-core/src/kernel.rs",
        FileKind::Lib,
    );
    let rules = rules_of(&out);
    assert!(rules.contains(&"suppression-missing-reason"), "{rules:?}");
    assert!(rules.contains(&"suppression-unknown-rule"), "{rules:?}");
    assert!(rules.contains(&"suppression-malformed"), "{rules:?}");
    assert!(
        rules.contains(&"hot-alloc"),
        "a reason-less suppression must not earn the silence: {rules:?}"
    );
    assert_eq!(out.suppressed, 0);
}

/// Builds a throwaway mini-workspace for end-to-end `lint_root` runs.
struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    fn new(tag: &str, registry_rows: &[&str], lib_src: &str) -> Self {
        Self::build(tag, registry_rows, None, lib_src)
    }

    /// Like [`new`](Self::new) but the ARCHITECTURE.md also carries the
    /// two concurrency tables, with the given data rows.
    fn with_concurrency(
        tag: &str,
        atomic_rows: &[&str],
        lock_rows: &[&str],
        lib_src: &str,
    ) -> Self {
        Self::build(tag, &[], Some((atomic_rows, lock_rows)), lib_src)
    }

    fn build(
        tag: &str,
        registry_rows: &[&str],
        concurrency: Option<(&[&str], &[&str])>,
        lib_src: &str,
    ) -> Self {
        let root =
            std::env::temp_dir().join(format!("saga_lint_fixture_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("src")).unwrap();
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(root.join("src/lib.rs"), lib_src).unwrap();
        let mut doc = String::from("# Architecture\n\n### Env-toggle registry\n\n");
        doc.push_str("| Toggle | Read in | Effect |\n|---|---|---|\n");
        for row in registry_rows {
            doc.push_str(row);
            doc.push('\n');
        }
        if let Some((atomic_rows, lock_rows)) = concurrency {
            doc.push_str("\n#### Atomic protocol registry\n\n");
            doc.push_str("| Binding | Declared in | Protocol | Allowed ops |\n|---|---|---|---|\n");
            for row in atomic_rows {
                doc.push_str(row);
                doc.push('\n');
            }
            doc.push_str("\n#### Lock-order registry\n\n");
            doc.push_str("| Binding | Declared in | Rank | Protocol |\n|---|---|---|---|\n");
            for row in lock_rows {
                doc.push_str(row);
                doc.push('\n');
            }
        }
        std::fs::write(root.join("ARCHITECTURE.md"), doc).unwrap();
        MiniWorkspace { root }
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn env_registry_cross_check_catches_both_directions() {
    let ws = MiniWorkspace::new(
        "env",
        &[
            "| `SAGA_DECLARED` | src/lib.rs | A declared, read toggle. |",
            "| `SAGA_STALE` | nowhere | Declared but never read. |",
        ],
        "pub fn toggles() -> (bool, bool) {\n\
         \x20   let a = std::env::var(\"SAGA_DECLARED\").is_ok();\n\
         \x20   let b = std::env::var(\"SAGA_UNDECLARED\").is_ok();\n\
         \x20   (a, b)\n\
         }\n",
    );
    let report = saga_lint::lint_root(&ws.root, &Config::workspace()).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        vec!["env-registry", "env-registry"],
        "{:?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.file == "src/lib.rs" && f.message.contains("SAGA_UNDECLARED")),
        "undeclared read flags at the read site"
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.file == "ARCHITECTURE.md" && f.message.contains("SAGA_STALE")),
        "stale registry row flags at the table"
    );
}

#[test]
fn env_registry_missing_table_is_one_finding() {
    let ws = MiniWorkspace::new("notable", &[], "pub fn nothing() {}\n");
    // overwrite with a doc that has no registry heading at all
    std::fs::write(ws.root.join("ARCHITECTURE.md"), "# Architecture\n").unwrap();
    let report = saga_lint::lint_root(&ws.root, &Config::workspace()).unwrap();
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "env-registry");
    assert_eq!(report.findings[0].file, "ARCHITECTURE.md");
}

#[test]
fn atomics_discipline_catches_undeclared_out_of_protocol_and_stale() {
    let ws = MiniWorkspace::with_concurrency(
        "atomics_bad",
        &[
            "| `declared` | `src/lib.rs` | test protocol | `fetch_add(AcqRel)`, `load(Acquire)` |",
            "| `ghost` | `src/lib.rs` | stale row | `load(SeqCst)` |",
        ],
        &[],
        &fixture("atomics_bad.rs"),
    );
    let report = saga_lint::lint_root(&ws.root, &Config::workspace()).unwrap();
    let msgs: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.rule == "atomics-discipline"),
        "{msgs:?}"
    );
    assert_eq!(report.findings.len(), 4, "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("`rogue` is not declared")),
        "undeclared atomic flags at the declaration: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("fetch_add(Ordering::Relaxed)") && m.contains("outside")),
        "out-of-protocol ordering flags at the use: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("rogue.store") && m.contains("no")),
        "use of an unregistered atomic flags: {msgs:?}"
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.file == "ARCHITECTURE.md" && f.message.contains("ghost")),
        "stale registry row flags at the table: {msgs:?}"
    );
}

#[test]
fn atomics_discipline_clean_twin_is_silent() {
    let ws = MiniWorkspace::with_concurrency(
        "atomics_clean",
        &["| `declared` | `src/lib.rs` | test protocol | `fetch_add(AcqRel)`, `load(Acquire)` |"],
        &[],
        &fixture("atomics_clean.rs"),
    );
    let report = saga_lint::lint_root(&ws.root, &Config::workspace()).unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn lock_discipline_catches_undeclared_poison_inversion_and_reentry() {
    let ws = MiniWorkspace::with_concurrency(
        "lock_bad",
        &[],
        &[
            "| `low` | `src/lib.rs` | 10 | outer lock |",
            "| `high` | `src/lib.rs` | 20 | inner lock |",
        ],
        &fixture("lock_bad.rs"),
    );
    let report = saga_lint::lint_root(&ws.root, &Config::workspace()).unwrap();
    let msgs: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.iter().all(|f| f.rule == "lock-discipline"),
        "{msgs:?}"
    );
    assert_eq!(report.findings.len(), 4, "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("`rogue` is not declared")),
        "unregistered mutex flags at the declaration: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("lock-order inversion")),
        "descending-rank nesting flags: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("self-deadlock")),
        "same-lock re-acquisition flags: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("aborts on poison")),
        "`lock().unwrap()` flags: {msgs:?}"
    );
}

#[test]
fn lock_discipline_clean_twin_is_silent() {
    let ws = MiniWorkspace::with_concurrency(
        "lock_clean",
        &[],
        &[
            "| `low` | `src/lib.rs` | 10 | outer lock |",
            "| `high` | `src/lib.rs` | 20 | inner lock |",
        ],
        &fixture("lock_clean.rs"),
    );
    let report = saga_lint::lint_root(&ws.root, &Config::workspace()).unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn unsafe_discipline_flags_every_unjustified_form() {
    let out = lint_as(
        "unsafe_bad.rs",
        "crates/saga-datasets/src/simd.rs",
        FileKind::Lib,
    );
    let rules = rules_of(&out);
    assert_eq!(
        rules.iter().filter(|r| **r == "unsafe-discipline").count(),
        4,
        "block without SAFETY, undocumented unsafe fn, unjustified \
         target_feature fn, ungated call: {:?}",
        out.findings
    );
    assert_eq!(out.findings.len(), 4, "{:?}", out.findings);
    let messages: Vec<&str> = out.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("without a runtime feature gate")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("without a SAFETY justification")),
        "{messages:?}"
    );
}

#[test]
fn unsafe_discipline_clean_twin_is_silent() {
    let out = lint_as(
        "unsafe_clean.rs",
        "crates/saga-datasets/src/simd.rs",
        FileKind::Lib,
    );
    assert!(
        out.findings.is_empty(),
        "SAFETY comments, `# Safety` docs and the runtime gate must \
         satisfy the rule: {:?}",
        out.findings
    );
}

#[test]
fn unused_reasoned_suppression_is_flagged() {
    let ws = MiniWorkspace::new("sup_unused", &[], &fixture("suppression_unused.rs"));
    let report = saga_lint::lint_root(&ws.root, &Config::workspace()).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["suppression-unused"], "{:?}", report.findings);
    assert!(
        report.findings[0].message.contains("hot-alloc"),
        "{:?}",
        report.findings
    );
}

#[test]
fn shipped_workspace_is_lint_clean() {
    // CARGO_MANIFEST_DIR = crates/saga-lint; the workspace root is two up
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "expected workspace root at {}",
        root.display()
    );
    let report = saga_lint::lint_root(&root, &Config::workspace()).unwrap();
    assert!(
        report.findings.is_empty(),
        "the shipped tree must lint clean; fix or suppress (with a reason):\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "discovery must cover the whole workspace, saw {}",
        report.files_scanned
    );
}
