//! A well-formed, reasoned suppression for a known rule that silences
//! nothing: the `suppression-unused` meta-rule must flag it.

// saga-lint: allow(hot-alloc) — scratch buffer kept from an earlier revision
pub fn tidy() -> u32 {
    7
}
