// Fixture: real violations silenced by well-formed, reasoned suppressions —
// one on the line above, one trailing on the same line. Expected: 0
// findings, 2 suppressed.
pub fn place(n: usize) -> Vec<Vec<u64>> {
    let mut timelines: Vec<Vec<u64>> = Vec::with_capacity(n);
    // saga-lint: allow(hot-alloc) — warm-up growth: runs once per new node count, steady state reuses capacity
    timelines.resize_with(n, Vec::new);
    let labels: Vec<String> = (0..n).map(|i| i.to_string()).collect(); // saga-lint: allow(hot-alloc) — diagnostic labels, built only on the error path
    let _ = labels;
    timelines
}
