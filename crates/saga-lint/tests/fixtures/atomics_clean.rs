//! Atomics-discipline clean twin: one registered atomic, every literal
//! ordering inside the declared set.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Counters {
    pub declared: AtomicUsize,
}

pub fn touch(c: &Counters) -> usize {
    c.declared.fetch_add(1, Ordering::AcqRel);
    c.declared.load(Ordering::Acquire)
}
