//! Lock-discipline violations: an unregistered mutex, a poison-aborting
//! `lock().unwrap()`, a rank inversion, and a same-lock re-acquisition.

use std::sync::Mutex;

pub struct Shared {
    pub low: Mutex<Vec<u32>>,
    pub high: Mutex<Vec<u32>>,
    pub rogue: Mutex<u32>,
}

pub fn inverted(s: &Shared) {
    let g = s.high.lock().unwrap_or_else(|p| p.into_inner());
    let h = s.low.lock().unwrap_or_else(|p| p.into_inner());
    drop(h);
    drop(g);
}

pub fn reentrant(s: &Shared) {
    let g = s.low.lock().unwrap_or_else(|p| p.into_inner());
    let h = s.low.lock().unwrap_or_else(|p| p.into_inner());
    drop(h);
    drop(g);
}

pub fn impatient(s: &Shared) -> u32 {
    *s.rogue.lock().unwrap()
}
