//! Unsafe-discipline clean twin: every unsafe form justified, the
//! `#[target_feature]` call behind a runtime gate.

pub fn commented(xs: &[f64]) -> f64 {
    // SAFETY: callers assert the slice is non-empty.
    unsafe { *xs.get_unchecked(0) }
}

/// Reads the first element without a bounds check.
///
/// # Safety
///
/// `xs` must be non-empty.
pub unsafe fn documented(xs: &[f64]) -> f64 {
    // SAFETY: non-empty per the contract above.
    unsafe { *xs.get_unchecked(0) }
}

// SAFETY: callers hold the avx2 runtime gate before entering.
#[target_feature(enable = "avx2")]
unsafe fn kernel(xs: &[f64]) -> f64 {
    xs[0]
}

pub fn gated(xs: &[f64]) -> f64 {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 gate was just checked.
        unsafe { kernel(xs) }
    } else {
        xs[0]
    }
}
