//! Atomics-discipline violations: an atomic with no registry row, a use
//! of that rogue atomic, and a declared atomic used outside its
//! registered `op(Ordering)` set. Paired with a mini-registry that also
//! carries a stale row (`ghost`) for the registry→code direction.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Counters {
    pub declared: AtomicUsize,
    pub rogue: AtomicUsize,
}

pub fn touch(c: &Counters) -> usize {
    c.declared.fetch_add(1, Ordering::Relaxed); // declared set says AcqRel
    c.rogue.store(3, Ordering::Release); // no row at all
    c.declared.load(Ordering::Acquire) // allowed
}
