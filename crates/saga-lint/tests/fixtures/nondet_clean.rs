// Fixture: deterministic code in a result-producing crate — ordered
// collections, RNG streams plumbed from a configured seed, and hash
// collections confined to test-gated code. Expected: 0 findings.
use std::collections::BTreeMap;

pub fn tally(xs: &[u64], seed: u64, k: u64) -> BTreeMap<u64, usize> {
    let _rng =
        <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(derive_seed(seed, k));
    let mut out = BTreeMap::new();
    for &x in xs {
        *out.entry(x).or_insert(0) += 1;
    }
    out
}

fn derive_seed(seed: u64, k: u64) -> u64 {
    seed ^ k
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn hash_order_is_fine_in_tests() {
        let _t = Instant::now();
        let _m: HashMap<u64, u64> = HashMap::new();
    }
}
