// Fixture: every way a suppression itself can be wrong. Expected:
// 1× suppression-missing-reason (and the hot-alloc it failed to earn),
// 1× suppression-unknown-rule, 1× suppression-malformed.
pub fn place(n: usize) -> Vec<u64> {
    // saga-lint: allow(hot-alloc)
    let mut out: Vec<u64> = Vec::new();
    // saga-lint: allow(no-such-rule) — the rule name is checked too
    out.reserve(n);
    // saga-lint: disable(hot-alloc) — wrong verb, not the allow() grammar
    out
}
