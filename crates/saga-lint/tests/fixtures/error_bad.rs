// Fixture: aborts on an IO/parse path in library code (linted as
// engine.rs). Expected: 3× error-discipline — .unwrap(), .expect(), panic!.
pub fn load(path: &std::path::Path) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    let first = text.lines().next().expect("file is non-empty");
    if first.is_empty() {
        panic!("empty header line");
    }
    first.to_string()
}
