// Fixture: allocation in a whole-file hot path (linted as kernel.rs).
// Expected: 5× hot-alloc — Vec::new, vec!, .collect(), format!, .clone().
pub fn place(tasks: &[u64]) -> Vec<u64> {
    let mut timeline: Vec<u64> = Vec::new();
    let seed = vec![0u64; 4];
    let doubled: Vec<u64> = tasks.iter().map(|t| t * 2).collect();
    let label = format!("{} tasks", tasks.len());
    let copy = doubled.clone();
    timeline.extend_from_slice(&seed);
    timeline.extend_from_slice(&copy);
    let _ = label;
    timeline
}
