// Fixture: a scheduler-crate file under the fn-scoped deny list
// (`run`/`run_recorded`). Allocation in the constructor is fine; the hot
// entry points only reuse scratch buffers. Expected: 0 findings.
pub struct Sweep {
    scratch: Vec<f64>,
}

impl Sweep {
    pub fn new(n: usize) -> Self {
        // allocation is fine here: construction is not a deny-listed fn
        Sweep {
            scratch: vec![0.0; n],
        }
    }

    pub fn run(&mut self, costs: &[f64]) -> f64 {
        self.scratch.clear();
        let mut best = f64::INFINITY;
        for &c in costs {
            self.scratch.push(c);
            if c < best {
                best = c;
            }
        }
        best
    }
}
