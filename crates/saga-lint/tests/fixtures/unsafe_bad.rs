//! Unsafe-discipline violations: an unjustified unsafe block, an
//! undocumented public unsafe fn, an unjustified `#[target_feature]`
//! fn, and a call to it without a runtime feature gate.

pub fn no_comment(xs: &[f64]) -> f64 {
    unsafe { *xs.get_unchecked(0) }
}

/// Reads the first element without a bounds check.
pub unsafe fn undocumented(xs: &[f64]) -> f64 {
    *xs.get_unchecked(0)
}

#[target_feature(enable = "avx2")]
unsafe fn kernel(xs: &[f64]) -> f64 {
    xs[0]
}

pub fn ungated(xs: &[f64]) -> f64 {
    // SAFETY: slice length is checked by the caller contract.
    unsafe { kernel(xs) }
}
