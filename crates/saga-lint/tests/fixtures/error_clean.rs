// Fixture: the sanctioned error-path idioms — `?` propagation and
// poison recovery via `unwrap_or_else` (a distinct identifier the rule
// must not confuse with `unwrap`). Expected: 0 findings.
use std::sync::Mutex;

pub fn load(path: &std::path::Path) -> std::io::Result<String> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .next()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "empty file")
        })?
        .to_string())
}

pub fn record(slot: &Mutex<Vec<String>>, line: String) {
    let mut rows = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    rows.push(line);
}
