//! Lock-discipline clean twin: registered mutexes, rank-ascending
//! nesting, poison-recovery idiom throughout.

use std::sync::Mutex;

pub struct Shared {
    pub low: Mutex<Vec<u32>>,
    pub high: Mutex<Vec<u32>>,
}

pub fn ascending(s: &Shared) {
    let g = s.low.lock().unwrap_or_else(|p| p.into_inner());
    let h = s.high.lock().unwrap_or_else(|p| p.into_inner());
    drop(h);
    drop(g);
}
