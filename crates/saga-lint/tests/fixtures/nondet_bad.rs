// Fixture: every determinism-family violation, linted as if it lived in a
// result-producing crate. Expected: 3× nondet-collection, 1× nondet-time,
// 2× nondet-rng (entropy construction + unplumbed literal seed).
use std::collections::HashMap;

pub fn tally(xs: &[u64]) -> HashMap<u64, usize> {
    let started = std::time::Instant::now();
    let mut rng = rand::rngs::StdRng::from_entropy();
    let mut alt = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let _ = (started, &mut rng, &mut alt);
    let mut out = HashMap::new();
    for &x in xs {
        *out.entry(x).or_insert(0) += 1;
    }
    out
}
